#!/usr/bin/env python3
"""How optimistic is Eq. (1)? A link-contention study (beyond the paper).

The paper's cost model charges communication per endpoint resource but
lets links carry any number of simultaneous transfers. This study replays
mappings under a stricter model — one transfer per link at a time, routed
over shortest paths — and asks two questions:

1. how large is the contention slowdown on sparse platforms?
2. does optimizing the paper's analytic objective still produce mappings
   that are good under contention? (If yes, Eq. (1) is a sound proxy.)

Run:
    python examples/contention_study.py [n] [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import MappingProblem, MatchConfig, MatchMapper
from repro.graphs import generate_resource_graph, generate_tig
from repro.simulate import contention_report
from repro.utils.tables import format_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 21

    tig = generate_tig(n, seed)
    rows = []
    for p_link, label in ((1.0, "complete"), (0.5, "half links"), (0.2, "sparse")):
        topology = "complete" if p_link == 1.0 else "sparse"
        resources = generate_resource_graph(
            n, seed, topology=topology, p_link=p_link
        )
        problem = MappingProblem(tig, resources, require_square=True)

        match = MatchMapper(MatchConfig()).map(problem, seed)
        good = contention_report(problem, match.assignment)

        rng = np.random.default_rng(seed)
        rand = [
            contention_report(problem, rng.permutation(n)) for _ in range(5)
        ]
        rand_contended = float(np.mean([r.contended_makespan for r in rand]))

        rows.append([
            label,
            good.analytic_makespan,
            good.contended_makespan,
            f"{good.slowdown:.2f}x",
            rand_contended,
            f"{rand_contended / good.contended_makespan:.2f}x",
        ])

    print(format_table(
        ["platform", "ET analytic", "ET contended", "slowdown",
         "random contended", "MaTCH advantage"],
        rows,
        title=f"Link-contention study at n = {n}",
    ))
    print(
        "\nReading: 'slowdown' is how optimistic Eq. (1) was for MaTCH's own"
        "\nmapping; 'MaTCH advantage' shows the analytically-optimized mapping"
        "\nstill beats random mappings when links contend — the paper's"
        "\nobjective remains a sound proxy under a stricter network model."
    )


if __name__ == "__main__":
    main()
