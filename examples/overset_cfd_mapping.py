#!/usr/bin/env python3
"""Overset-grid CFD mapping — the paper's motivating application (§2, Fig. 1).

Synthesises an overset-grid system around an irregular 3-D body (component
grids with exact lattice point counts and pairwise overlap volumes),
extracts the Task Interaction Graph exactly as Figure 1 abstracts it, maps
the grids onto a heterogeneous platform with MaTCH, and simulates a
multi-iteration CFD solve under the produced mapping.

Run:
    python examples/overset_cfd_mapping.py [n_grids] [seed]
"""

from __future__ import annotations

import sys

from repro import (
    MappingProblem,
    MatchConfig,
    MatchMapper,
    IterativeWorkload,
    build_tig,
    generate_overset_scenario,
    generate_resource_graph,
)
from repro.baselines import GreedyConstructiveMapper
from repro.overset import scenario_report
from repro.utils.tables import format_table, render_kv_block


def main() -> None:
    n_grids = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    # 1. A synthetic overset system: boxes with uniform lattices laid
    #    along a random body curve, consecutive grids overlapping.
    scenario = generate_overset_scenario(n_grids, seed)
    print(render_kv_block("Overset system", scenario_report(scenario)))

    # 2. Figure 1's abstraction step: grids -> TIG. Node weight = grid
    #    point count, edge weight = overlapping point count. weight_scale
    #    brings raw lattice counts into the paper's numeric regime.
    tig = build_tig(scenario, weight_scale=1000.0)
    print(f"\nTIG: {tig.n_tasks} tasks, {tig.n_edges} overlaps, "
          f"CCR {tig.computation_to_communication_ratio():.3f}")

    # 3. A heterogeneous platform of the same size (the paper's setting).
    resources = generate_resource_graph(n_grids, seed, topology="sparse")
    problem = MappingProblem(tig, resources, require_square=True)

    # 4. Map with MaTCH and with the greedy constructive baseline.
    match = MatchMapper(MatchConfig()).map(problem, seed)
    greedy = GreedyConstructiveMapper().map(problem, seed)
    print(format_table(
        ["heuristic", "ET (units)", "MT (s)"],
        [
            ["MaTCH", match.execution_time, match.mapping_time],
            ["Greedy", greedy.execution_time, greedy.mapping_time],
        ],
        title="\nMapping the overset system",
    ))

    # 5. Simulate a 50-iteration CFD solve under each mapping, including a
    #    mild per-step weight drift (grid adaptation between iterations).
    for name, result in (("MaTCH", match), ("Greedy", greedy)):
        workload = IterativeWorkload(problem, n_steps=50, drift=0.02, rng=seed)
        outcome = workload.run(result.assignment)
        print(f"{name:7s}: 50-step solve takes {outcome.total_time:,.0f} units "
              f"(mean step {outcome.mean_step:,.0f})")

    # 6. Which grids ended up together? Print the mapping.
    mapping = match.mapping(problem)
    placements = [
        (f"grid-{t}", f"r{mapping.resource_of(t)}",
         f"{tig.computation_weights[t]:.1f}")
        for t in range(n_grids)
    ]
    print()
    print(format_table(["grid", "resource", "kpoints"], placements,
                       title="MaTCH placement"))


if __name__ == "__main__":
    main()
