#!/usr/bin/env python3
"""Quickstart: map a synthetic application onto a heterogeneous platform.

Generates one §5.2-style problem instance (a Task Interaction Graph and a
heterogeneous resource graph of equal size), runs MaTCH, and compares the
mapping against the FastMap-GA baseline and a random mapping — the
smallest end-to-end tour of the library's public API.

Run:
    python examples/quickstart.py [n] [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    CostModel,
    FastMapGA,
    GAConfig,
    MappingProblem,
    MatchConfig,
    MatchMapper,
    PlatformSimulator,
    generate_paper_pair,
)
from repro.utils.tables import format_table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2005

    # 1. A problem instance: |V_t| = |V_r| = n, paper §5.2 weight ranges.
    pair = generate_paper_pair(n, seed)
    problem = MappingProblem(pair.tig, pair.resources, require_square=True)
    model = CostModel(problem)
    print(f"instance: {problem}")
    print(f"  TIG edges: {pair.tig.n_edges}, CCR: "
          f"{pair.tig.computation_to_communication_ratio():.3f}")
    print(f"  platform heterogeneity (cv of proc weights): "
          f"{pair.resources.heterogeneity():.3f}\n")

    # 2. Run the heuristics.
    match = MatchMapper(MatchConfig()).map(problem, seed)
    ga = FastMapGA(GAConfig(population_size=200, generations=300)).map(problem, seed)
    random_cost = float(
        np.mean([model.evaluate(np.random.default_rng(seed + k).permutation(n))
                 for k in range(50)])
    )

    rows = [
        ["MaTCH", match.execution_time, match.mapping_time, match.n_evaluations],
        ["FastMap-GA", ga.execution_time, ga.mapping_time, ga.n_evaluations],
        ["mean random", random_cost, 0.0, 50],
    ]
    print(format_table(
        ["heuristic", "ET (units)", "MT (s)", "evaluations"], rows,
        title=f"Mapping quality at n = {n}",
    ))

    # 3. Inspect the winning mapping.
    breakdown = model.breakdown(match.assignment)
    print(f"\nMaTCH busiest resource: r{breakdown['busiest_resource']} "
          f"(compute {breakdown['busiest_compute']:.0f} + "
          f"comm {breakdown['busiest_comm']:.0f})")
    print(f"load imbalance (max/mean): {breakdown['imbalance']:.3f}")

    # 4. Validate with the discrete-event simulator: the simulated makespan
    #    of one bulk-synchronous step equals the analytic Eq. (2) cost.
    report = PlatformSimulator(problem).simulate(match.assignment)
    assert abs(report.makespan - match.execution_time) < 1e-6
    print(f"\nDES replay confirms the analytic cost: makespan = "
          f"{report.makespan:.0f} units over {report.n_events} events")


if __name__ == "__main__":
    main()
