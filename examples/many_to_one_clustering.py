#!/usr/bin/env python3
"""Many-to-one mapping with hierarchical FastMap (the full [16] scheme).

The paper's experiments fix |V_t| = |V_r|; real overset systems have far
more grids than machines. This example maps a 40-task TIG onto an
8-resource platform: heavy-edge clustering co-locates chatty tasks, the GA
places the 8 clusters, and a task-level move refinement polishes the
result. The mapping analysis report shows where the time goes.

Run:
    python examples/many_to_one_clustering.py [n_tasks] [n_resources] [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.baselines import (
    GAConfig,
    HierarchicalFastMap,
    HierarchicalFastMapConfig,
)
from repro.graphs import generate_resource_graph, generate_tig, heavy_edge_clustering
from repro.mapping import CostModel, MappingProblem, analyze_mapping
from repro.utils.tables import render_kv_block


def main() -> None:
    n_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    n_res = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 13

    # ccr_scale makes the application compute-bound. With the paper's raw
    # §5.2 ranges (communication 50-100 vs computation 1-10) the Eq. (1)
    # model prefers collapsing *everything onto one resource* once
    # many-to-one mappings are allowed — communication is free inside a
    # resource — which is exactly why the paper restricts its experiments
    # to one-to-one. Compute-heavy tasks make distribution worthwhile.
    tig = generate_tig(n_tasks, seed, ccr_scale=300.0)
    resources = generate_resource_graph(n_res, seed, topology="sparse")
    problem = MappingProblem(tig, resources)
    model = CostModel(problem)
    print(f"instance: {n_tasks} tasks -> {n_res} resources "
          f"({tig.n_edges} interactions)\n")

    # Show the clustering stage on its own first.
    clustering = heavy_edge_clustering(tig, n_res)
    print(render_kv_block("Heavy-edge clustering", {
        "clusters": clustering.n_clusters,
        "communication kept internal": f"{clustering.coverage:.1%}",
        "cut volume (becomes traffic)": clustering.cut_volume,
    }))

    # The full pipeline with and without refinement.
    for sweeps in (0, 3):
        cfg = HierarchicalFastMapConfig(
            ga=GAConfig(population_size=150, generations=250),
            refine_sweeps=sweeps,
        )
        result = HierarchicalFastMap(cfg).map(problem, seed)
        label = "clustered + GA" + (" + refine" if sweeps else "")
        print(f"\n{label}: ET = {result.execution_time:,.0f} "
              f"(MT {result.mapping_time:.2f}s, "
              f"{result.extras['refine_probes']} refine probes)")

    # Compare against naive random many-to-one assignment.
    rng = np.random.default_rng(seed)
    random_cost = np.mean(
        [model.evaluate(rng.integers(0, n_res, size=n_tasks)) for _ in range(200)]
    )
    print(f"\nmean random assignment: ET = {random_cost:,.0f}")

    # Full analysis of the refined mapping.
    cfg = HierarchicalFastMapConfig(
        ga=GAConfig(population_size=150, generations=250), refine_sweeps=3
    )
    result = HierarchicalFastMap(cfg).map(problem, seed)
    print("\n" + analyze_mapping(problem, result.assignment).render())


if __name__ == "__main__":
    main()
