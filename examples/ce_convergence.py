#!/usr/bin/env python3
"""Watch the cross-entropy method converge — a live Figure 3.

Runs MaTCH with matrix tracking and prints the stochastic matrix as ASCII
heat maps at several points of the run, together with the γ (elite
threshold) and entropy trajectories. Also demonstrates the two other
members of the CE family the paper introduces in §3: continuous
multiextremal optimization and rare-event probability estimation.

Run:
    python examples/ce_convergence.py [n] [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import MappingProblem, MatchConfig, generate_paper_pair
from repro.ce import ContinuousCEConfig, ContinuousCEOptimizer, ExponentialFamily
from repro.ce.rare_event import estimate_rare_event
from repro.core import MatchMapper, evolution_frames, render_matrix_ascii


def mapping_demo(n: int, seed: int) -> None:
    pair = generate_paper_pair(n, seed)
    problem = MappingProblem(pair.tig, pair.resources, require_square=True)
    mapper = MatchMapper(MatchConfig(track_matrices=True))
    result = mapper.map(problem, seed)
    ce = mapper.last_result.ce_result  # type: ignore[union-attr]

    print(f"MaTCH on n = {n}: ET {result.execution_time:.0f} after "
          f"{ce.n_iterations} iterations ({ce.stop_reason})\n")

    for frame in evolution_frames(ce, n_frames=3):
        print(f"-- iteration snapshot {frame['snapshot_index']}: "
              f"degeneracy {frame['degeneracy']:.3f}, "
              f"entropy {frame['entropy']:.3f} --")
        print(render_matrix_ascii(frame["matrix"]))
        print()

    print("gamma trajectory (elite threshold, every 3rd iteration):")
    gammas = ce.gamma_history[::3]
    print("  " + " -> ".join(f"{g:.0f}" for g in gammas))


def continuous_demo(seed: int) -> None:
    print("\n--- continuous CE: minimizing a multiextremal function ---")

    def rastrigin(X: np.ndarray) -> np.ndarray:
        return (X**2 - 10 * np.cos(2 * np.pi * X) + 10).sum(axis=1)

    opt = ContinuousCEOptimizer(
        rastrigin,
        mean0=np.full(3, 4.0),  # start in a far local basin
        sigma0=np.full(3, 3.0),
        config=ContinuousCEConfig(n_samples=300, rho=0.05),
        rng=seed,
    )
    res = opt.run()
    print(f"rastrigin minimum found: f = {res.best_value:.2e} at "
          f"{np.round(res.best_point, 4)} in {res.n_iterations} iterations")


def rare_event_demo(seed: int) -> None:
    print("\n--- rare-event CE: the method's original home (§3) ---")
    d, gamma = 6, 25.0
    res = estimate_rare_event(
        score=lambda x: x.sum(axis=1),
        family=ExponentialFamily(),
        u=np.ones(d),
        gamma=gamma,
        n_samples=2000,
        rng=seed,
    )
    from scipy import stats as ss

    true = ss.gamma.sf(gamma, a=d, scale=1.0)
    print(f"P(sum of {d} Exp(1) >= {gamma}):")
    print(f"  CE estimate : {res.probability:.3e} "
          f"(rel. err {res.relative_error:.2%}, "
          f"{res.n_iterations} tilting levels)")
    print(f"  exact value : {true:.3e}")
    print(f"  naive Monte Carlo would need ~{1/true:,.0f} samples per hit")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    mapping_demo(n, seed)
    continuous_demo(seed)
    rare_event_demo(seed)


if __name__ == "__main__":
    main()
