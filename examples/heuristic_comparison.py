#!/usr/bin/env python3
"""Heuristic shoot-out: every mapper in the library on one instance suite.

Extends the paper's two-heuristic comparison with the auxiliary baselines
(random search, swap local search, simulated annealing, greedy) and the
MaTCH variants (adaptive, distributed), reporting quality, mapping time
and application turnaround (ATN, Fig. 9) side by side.

Run:
    python examples/heuristic_comparison.py [n] [runs] [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import MappingProblem, generate_paper_pair
from repro.baselines import (
    FastMapGA,
    GAConfig,
    GreedyConstructiveMapper,
    LocalSearchMapper,
    RandomSearchMapper,
    SAConfig,
    SimulatedAnnealingMapper,
)
from repro.core import (
    AdaptiveMatchMapper,
    DistributedMatchMapper,
    MatchConfig,
    MatchMapper,
)
from repro.utils.rng import RngStreams
from repro.utils.tables import format_table


def mappers():
    return {
        "MaTCH": lambda: MatchMapper(MatchConfig()),
        "MaTCH-adaptive": lambda: AdaptiveMatchMapper(),
        "MaTCH-distributed": lambda: DistributedMatchMapper(),
        "FastMap-GA": lambda: FastMapGA(
            GAConfig(population_size=200, generations=300)
        ),
        "LocalSearch": lambda: LocalSearchMapper(restarts=5),
        "SimAnneal": lambda: SimulatedAnnealingMapper(SAConfig(n_steps=20_000)),
        "Random-10k": lambda: RandomSearchMapper(10_000),
        "Greedy": lambda: GreedyConstructiveMapper(),
    }


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 11

    pair = generate_paper_pair(n, seed)
    problem = MappingProblem(pair.tig, pair.resources, require_square=True)
    streams = RngStreams(seed=seed)
    print(f"instance: {problem}, {runs} runs per heuristic\n")

    rows = []
    for name, factory in mappers().items():
        ets, mts, atns = [], [], []
        for rep in range(runs):
            result = factory().map(problem, streams.seed_for(name, rep=rep))
            ets.append(result.execution_time)
            mts.append(result.mapping_time)
            atns.append(result.turnaround().turnaround)
        rows.append(
            [name, float(np.mean(ets)), float(np.min(ets)),
             float(np.mean(mts)), float(np.mean(atns))]
        )

    rows.sort(key=lambda r: r[1])
    print(format_table(
        ["heuristic", "mean ET", "best ET", "mean MT (s)", "mean ATN"],
        rows,
        title=f"All heuristics at n = {n} (sorted by mean ET)",
    ))

    best, worst = rows[0], rows[-1]
    print(f"\n{best[0]} beats {worst[0]} by "
          f"{worst[1] / best[1]:.2f}x on mean execution time.")


if __name__ == "__main__":
    main()
