#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Equivalent to ``python -m repro all`` but shown as a scripted pipeline:
the experiment registry is the public API the benchmarks and CLI share.

Run (smoke scale, a few minutes):
    python examples/reproduce_paper.py

Run at the paper's §5.2 parameters (much longer):
    REPRO_FULL_SCALE=1 python examples/reproduce_paper.py
"""

from __future__ import annotations

import sys
import time

from repro.experiments import active_profile, experiment_ids, run_experiment


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2005
    profile = active_profile()
    print(f"profile: {profile.name} (sizes {profile.sizes}, "
          f"{profile.n_pairs} pairs x {profile.runs_per_pair} runs)\n")

    for exp_id in experiment_ids():
        t0 = time.perf_counter()
        artifact = run_experiment(exp_id, profile=profile, seed=seed)
        dt = time.perf_counter() - t0
        print(artifact)
        print(f"\n[{exp_id} regenerated in {dt:.1f}s]")
        print("#" * 72 + "\n")


if __name__ == "__main__":
    main()
