"""EXP-F7 — regenerate Figure 7 (execution-time series as a bar chart)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import compute_fig7, render_series_chart


def test_fig7_regenerate(benchmark, bench_profile, bench_seed, capsys):
    series = run_once(benchmark, compute_fig7, bench_profile, seed=bench_seed)
    with capsys.disabled():
        print()
        print(
            render_series_chart(
                series, title="Figure 7 (measured): execution time (units) by size"
            )
        )

    assert set(series.values) == {"MaTCH", "FastMap-GA"}
    # ET grows with problem size for both heuristics.
    for vals in series.values.values():
        assert vals[-1] > vals[0]
