"""ABL-RHO — sweep the focus parameter ρ (paper fixes 0.01 ≤ ρ ≤ 0.1).

Quality/time trade-off of the elite fraction: small ρ converges fast but
greedily, large ρ dilutes the update signal.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablations import rho_sweep


def test_ablation_rho(benchmark, bench_seed, capsys):
    result = run_once(
        benchmark,
        rho_sweep,
        values=(0.01, 0.02, 0.05, 0.1, 0.2, 0.3),
        size=15,
        runs=3,
        seed=bench_seed,
    )
    with capsys.disabled():
        print()
        print(result.render())

    assert len(result.points) == 6
    # The paper's recommended band should not be far off the sweep's best.
    best = result.best_point().mean_et
    in_band = [p for p in result.points if 0.01 <= p.knob_value <= 0.1]
    assert min(p.mean_et for p in in_band) <= best * 1.1
