"""EXP-F9 — regenerate Figure 9 (application turnaround time, ATN = ET + MT).

The paper's closing argument: despite MaTCH's steeper mapping time, the
turnaround — mapping plus executing the application once — still favors
MaTCH because ET dominates MT.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import compute_fig9, render_series_chart


def test_fig9_regenerate(benchmark, bench_profile, bench_seed, capsys):
    series = run_once(benchmark, compute_fig9, bench_profile, seed=bench_seed)
    with capsys.disabled():
        print()
        print(
            render_series_chart(
                series,
                title="Figure 9 (measured): application turnaround time (ATN) by size",
            )
        )

    match = series.values["MaTCH"]
    ga = series.values["FastMap-GA"]
    # Figure 9's claim: MaTCH's turnaround is no worse at scale — the
    # quality advantage outweighs the mapping-time cost at the top size.
    assert match[-1] <= ga[-1] * 1.05
    # ATN grows with n for both.
    assert match[-1] > match[0] and ga[-1] > ga[0]
