"""CE hot-path benchmark — writes ``BENCH_ce_hotpath.json``.

Tracks the performance trajectory of the CE engine across PRs with three
measurement groups:

* **sampling** — GenPerm throughput (mappings/s) at ``n ∈ {10, 50}`` for
  the single-matrix sampler, the stacked multi-chain sampler, and a
  replica of the pre-optimization ("seed") sampler;
* **scoring** — batch Eq. (2) throughput, plain vs duplicate-collapsed,
  with the measured collapse rate on a near-degenerate batch;
* **end_to_end** — multi-run CE wall-clock: the fused multi-chain engine
  (:meth:`MatchMapper.map_many` with ``mode="fused"`` forced) vs a serial
  per-run loop vs the seed-path replica, plus an ``auto`` stage recording
  which path the crossover-aware default picks at this (n, R) and what it
  costs. At ``n = 10`` this is the Table 3 MaTCH replication (30 paper
  repetitions, per-rep derived seeds); the recorded acceptance ratio is
  fused vs seed path there.

The seed-path replica reproduces the hot path the repo shipped before the
multi-chain engine: the row-major GenPerm sampler with per-position
allocations and the 2-D fancy-index communication lookup, no duplicate
collapsing. Where the replica and the original differ (the surrounding
optimizer loop has since been lightly tuned too), the replica is the
*faster* of the two, so the recorded speedup is a lower bound.

Every measurement group runs once per loadable kernel backend
(:mod:`repro.kernels`: numpy always; cext/numba when this machine can
build/import them); per-backend results live under ``kernels.<name>`` and
every entry carries a ``kernel`` field. The legacy top-level groups are
the **numpy** backend's numbers, keeping the file comparable with the
committed history. The ``acceptance.kernel`` section records the compiled
backend's end-to-end gain on the n = 50 Table 3 group.

Usage::

    PYTHONPATH=src python benchmarks/bench_ce_hotpath.py [--smoke] [--out PATH] [--check]

``--smoke`` shrinks sizes and repetition counts so the whole script runs in
a few seconds while still exercising every measurement path; the test suite
runs it that way. ``--check`` exits non-zero unless the best compiled
backend clears ``TARGET_KERNEL_SPEEDUP`` end-to-end at n = 50 (full scale
only). Timings are best-of-``repeats`` to shrug off scheduler noise; the
fused and serial paths must agree on every execution time (seed-for-seed
parity) or the script aborts.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro import kernels
from repro.ce.genperm import sample_permutations, sample_permutations_stacked
from repro.core.config import MatchConfig
from repro.core.match import MatchMapper
from repro.experiments.suite import build_suite
from repro.mapping.cost_model import CostModel
from repro.mapping.problem import MappingProblem
from repro.runstore import BenchResult
from repro.utils.rng import RngStreams, as_generator

#: The acceptance bar this file exists to document: fused multi-chain vs the
#: seed-path replica on the Table 3 (n = 10, 30 runs) replication.
TARGET_SPEEDUP = 3.0

#: Gate for the compiled kernel layer: best compiled backend vs the numpy
#: reference, end-to-end on the n = 50 Table 3 group. The layer was landed
#: on a measured >= 3x; the gate sits at 2.5x to absorb scheduler noise.
TARGET_KERNEL_SPEEDUP = 2.5


# -- the pre-optimization hot path, kept as the measured baseline ---------------


def _seed_sample_permutations(P, n_samples, rng=None):
    """The GenPerm sampler as shipped in the growth seed (row-major layout,
    fresh allocations per position). Semantics match the current sampler;
    only the constant factor differs."""
    arr = np.asarray(P, dtype=np.float64)
    n_tasks, n_res = arr.shape
    gen = as_generator(rng)
    task_orders = np.argsort(gen.random((n_samples, n_tasks)), axis=1)
    X = np.full((n_samples, n_tasks), -1, dtype=np.int64)
    used = np.zeros((n_samples, n_res), dtype=bool)
    rows = np.arange(n_samples)
    for pos in range(n_tasks):
        tasks = task_orders[:, pos]
        probs = arr[tasks]
        probs = np.where(used, 0.0, probs)
        mass = probs.sum(axis=1)
        dead = mass <= 0.0
        if dead.any():
            probs[dead] = (~used[dead]).astype(np.float64)
            mass = probs.sum(axis=1)
        cdf = np.cumsum(probs, axis=1)
        u = gen.random(n_samples) * mass
        choice = (cdf <= u[:, np.newaxis]).sum(axis=1)
        np.minimum(choice, n_res - 1, out=choice)
        bad = used[rows, choice]
        if bad.any():
            choice[bad] = np.argmax(~used[bad], axis=1)
        X[rows, tasks] = choice
        used[rows, choice] = True
    return X


def _seed_batch_scorer(problem: MappingProblem) -> Callable[[np.ndarray], np.ndarray]:
    """Eq. (2) batch scorer as shipped in the seed: 2-D fancy-index
    communication lookup instead of the flat ``np.take``."""
    W = problem.task_weights
    w = problem.proc_weights
    C = problem.edge_weights
    ccm = problem.comm_costs
    eu = problem.edges[:, 0] if problem.edges.size else np.empty(0, dtype=np.int64)
    ev = problem.edges[:, 1] if problem.edges.size else np.empty(0, dtype=np.int64)
    n_r = problem.n_resources

    def evaluate_batch(X: np.ndarray) -> np.ndarray:
        N = X.shape[0]
        row_offsets = (np.arange(N, dtype=np.int64) * n_r)[:, np.newaxis]
        comp_w = W[np.newaxis, :] * w[X]
        totals = np.bincount(
            (row_offsets + X).ravel(), weights=comp_w.ravel(), minlength=N * n_r
        )
        if eu.size:
            s = X[:, eu]
            b = X[:, ev]
            link = C[np.newaxis, :] * ccm[s, b]
            totals += np.bincount(
                (row_offsets + s).ravel(), weights=link.ravel(), minlength=N * n_r
            )
            totals += np.bincount(
                (row_offsets + b).ravel(), weights=link.ravel(), minlength=N * n_r
            )
        return totals.reshape(N, n_r).max(axis=1)

    return evaluate_batch


# -- measurement helpers --------------------------------------------------------


def _best_of(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall-clock seconds, last result)."""
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _bench_sampling(n: int, repeats: int) -> dict:
    """GenPerm throughput on a uniform n×n matrix at the paper batch size."""
    n_samples = 2 * n * n
    P = np.full((n, n), 1.0 / n)
    n_chains = 8
    P_stack = np.broadcast_to(P, (n_chains, n, n)).copy()

    t_cur, _ = _best_of(lambda: sample_permutations(P, n_samples, rng=0), repeats)
    rand_orders = np.random.default_rng(0).random((n_chains, n_samples, n))
    rand_pos = np.random.default_rng(1).random((n_chains, n, n_samples))
    t_stk, _ = _best_of(
        lambda: sample_permutations_stacked(P_stack, rand_orders, rand_pos),
        repeats,
    )
    t_old, _ = _best_of(lambda: _seed_sample_permutations(P, n_samples, rng=0), repeats)
    return {
        "n": n,
        "batch_size": n_samples,
        "current_mappings_per_s": n_samples / t_cur,
        "stacked_mappings_per_s": n_chains * n_samples / t_stk,
        "seed_replica_mappings_per_s": n_samples / t_old,
        "speedup_vs_seed_sampler": t_old / t_cur,
    }


def _bench_scoring(problem: MappingProblem, repeats: int) -> dict:
    """Batch Eq. (2) throughput, plain vs dedup, on a near-degenerate batch.

    The batch tiles a handful of distinct mappings (as late CE iterations
    do once ``P`` commits), so the collapse is substantial and exact
    agreement between the two paths is checked on every repeat.
    """
    n = problem.n_tasks
    n_samples = 2 * n * n
    distinct = sample_permutations(
        np.full((n, problem.n_resources), 1.0 / problem.n_resources),
        max(1, n_samples // 8),
        rng=7,
    )
    reps = -(-n_samples // distinct.shape[0])
    batch = np.tile(distinct, (reps, 1))[:n_samples]
    np.random.default_rng(11).shuffle(batch)

    model = CostModel(problem)
    t_plain, costs_plain = _best_of(lambda: model.evaluate_batch(batch), repeats)
    t_dedup, costs_dedup = _best_of(lambda: model.evaluate_batch_dedup(batch), repeats)
    if not np.array_equal(costs_plain, costs_dedup):
        raise AssertionError("dedup scoring diverged from plain scoring")
    return {
        "n": n,
        "batch_size": n_samples,
        "plain_rows_per_s": n_samples / t_plain,
        "dedup_rows_per_s": n_samples / t_dedup,
        "dedup_speedup": t_plain / t_dedup,
        "batch_collapse_rate": 1.0 - distinct.shape[0] / n_samples,
        # Below the DEDUP_MIN_CELLS area threshold evaluate_batch_dedup
        # skips the collapse (the measured small-n regression fix); the
        # hit rate is then 0 by construction — nothing was inspected.
        "dedup_bypassed": model.dedup_stats.bypassed_calls > 0,
        "model_dedup_hit_rate": model.dedup_stats.hit_rate,
    }


def _bench_end_to_end(
    size: int,
    n_runs: int,
    repeats: int,
    *,
    with_seed_replica: bool,
    max_iterations: int,
    seed: int = 2005,
) -> dict:
    """Multi-run CE wall-clock: fused multi-chain vs serial loop vs seed path.

    Mirrors the Table 3 MaTCH group: one suite instance, ``n_runs``
    repetitions with per-rep derived seeds. The fused and serial paths must
    produce identical execution times (seed-for-seed parity). The fused
    stage forces ``mode="fused"`` so the measurement stays comparable with
    the committed history even where the crossover-aware auto-select would
    choose the serial loop; a third ``auto`` stage records what
    ``map_many``'s default now picks (and costs) at this (n, R).
    """
    instance = build_suite((size,), 1, seed=seed)[size][0]
    problem = instance.problem
    streams = RngStreams(seed=seed)
    run_seeds = [
        streams.seed_for("anova", heuristic="MaTCH", rep=rep) for rep in range(n_runs)
    ]
    config = MatchConfig(max_iterations=max_iterations)

    auto_mode: list[str] = []

    def fused() -> list[float]:
        results = MatchMapper(config).map_many(problem, run_seeds, mode="fused")
        return [r.execution_time for r in results]

    def serial() -> list[float]:
        mapper = MatchMapper(config)
        return [mapper.map(problem, s).execution_time for s in run_seeds]

    def auto() -> list[float]:
        results = MatchMapper(config).map_many(problem, run_seeds)
        auto_mode[:] = [results[0].extras["multichain_mode"]] if results else []
        return [r.execution_time for r in results]

    def seed_path() -> list[float]:
        from dataclasses import replace

        from repro.ce.optimizer import CrossEntropyOptimizer

        scorer = _seed_batch_scorer(problem)
        ce_cfg = replace(config.ce_config(problem.n_resources), dedup=False)
        ets = []
        for s in run_seeds:
            result = CrossEntropyOptimizer(
                scorer,
                problem.n_tasks,
                problem.n_resources,
                ce_cfg,
                sampler=_seed_sample_permutations,
                rng=s,
            ).run()
            ets.append(result.best_cost)
        return ets

    t_fused, ets_fused = _best_of(fused, repeats)
    t_serial, ets_serial = _best_of(serial, repeats)
    if ets_fused != ets_serial:
        raise AssertionError(
            f"fused/serial execution times diverged at n={size}: "
            f"{ets_fused} vs {ets_serial}"
        )
    t_auto, ets_auto = _best_of(auto, repeats)
    if ets_auto != ets_fused:
        raise AssertionError(
            f"auto-mode execution times diverged at n={size}: "
            f"{ets_auto} vs {ets_fused}"
        )
    out = {
        "n": size,
        "n_runs": n_runs,
        "max_iterations": max_iterations,
        "fused_seconds": t_fused,
        "serial_seconds": t_serial,
        "speedup_fused_vs_serial": t_serial / t_fused,
        # The mode map_many picks on its own for this (n, R), plus what
        # the crossover-aware auto-select actually costs relative to the
        # better of the two hand-forced paths.
        "auto_seconds": t_auto,
        "auto_mode": auto_mode[0] if auto_mode else None,
        "speedup_auto_vs_best_forced": min(t_fused, t_serial) / t_auto,
        "et_parity_fused_vs_serial": True,
        "mean_execution_time": float(np.mean(ets_fused)),
    }
    if with_seed_replica:
        t_old, _ = _best_of(seed_path, repeats)
        out["seed_path_seconds"] = t_old
        out["speedup_fused_vs_seed_path"] = t_old / t_fused
    return out


# -- driver ---------------------------------------------------------------------


def _bench_backend(name: str, smoke: bool) -> dict:
    """All three measurement groups under one pinned kernel backend."""
    if smoke:
        sizes = (10,)
        repeats = 1
        e2e = {10: 3}
    else:
        sizes = (10, 50)
        repeats = 4
        # n = 10: the Table 3 replication (30 paper repetitions); n = 50:
        # fewer runs — each is ~2 orders of magnitude heavier.
        e2e = {10: 30, 50: 4}

    group: dict = {"sampling": {}, "scoring": {}, "end_to_end": {}}
    with kernels.use_backend(name):
        for n in sizes:
            group["sampling"][str(n)] = {"kernel": name, **_bench_sampling(n, repeats)}
        for n in sizes:
            instance = build_suite((n,), 1, seed=2005)[n][0]
            group["scoring"][str(n)] = {
                "kernel": name,
                **_bench_scoring(instance.problem, repeats),
            }
        for n in sizes:
            group["end_to_end"][str(n)] = {
                "kernel": name,
                **_bench_end_to_end(
                    n,
                    e2e[n],
                    repeats if n == 10 else 1,
                    # The seed-path replica is backend-independent pure
                    # numpy; measuring it once (under the numpy backend,
                    # at the n = 10 acceptance point) is enough.
                    with_seed_replica=(n == 10 and name == "numpy"),
                    max_iterations=500,
                ),
            }
    return group


def run(
    smoke: bool = False,
    out: str | Path | None = None,
    runs_root: str | Path | None = None,
) -> dict:
    """Execute every measurement group per backend and write the JSON report."""
    backend_names = [n for n, ok in kernels.available_backends().items() if ok]
    # numpy first: it is the reference every speedup is taken against.
    backend_names.sort(key=lambda n: (n != "numpy", n))

    by_backend = {name: _bench_backend(name, smoke) for name in backend_names}
    # Legacy top-level groups = the numpy reference backend, so the file
    # stays comparable with the pre-kernel committed history.
    legacy = by_backend["numpy"]

    measured = legacy["end_to_end"]["10"]["speedup_fused_vs_seed_path"]
    acceptance: dict = {
        "criterion": (
            "fused multi-chain >= 3x faster than the serial seed path on the "
            "30-run n=10 Table 3 replication"
        ),
        "target_speedup_vs_seed_path": TARGET_SPEEDUP,
        "measured_speedup_vs_seed_path": measured,
        "met": bool(measured >= TARGET_SPEEDUP) if not smoke else None,
    }

    compiled = [n for n in backend_names if n != "numpy"]
    kernel_acc: dict = {
        "criterion": (
            "best compiled kernel backend >= 2.5x faster than the numpy "
            "reference end-to-end on the n=50 Table 3 group"
        ),
        "target_speedup": TARGET_KERNEL_SPEEDUP,
        "compiled_backends": compiled,
        "measured_speedup": None,
        "best_backend": None,
        "met": None,
    }
    if compiled and not smoke:
        ref = by_backend["numpy"]["end_to_end"]["50"]["fused_seconds"]
        best_name = min(
            compiled,
            key=lambda n: by_backend[n]["end_to_end"]["50"]["fused_seconds"],
        )
        speed = ref / by_backend[best_name]["end_to_end"]["50"]["fused_seconds"]
        kernel_acc.update(
            measured_speedup=speed,
            best_backend=best_name,
            met=bool(speed >= TARGET_KERNEL_SPEEDUP),
        )
    acceptance["kernel"] = kernel_acc

    out_path = Path(out) if out is not None else Path(__file__).parent.parent / "BENCH_ce_hotpath.json"
    return BenchResult(
        "ce_hotpath",
        smoke=smoke,
        groups={"kernels": by_backend, **legacy},
        acceptance=acceptance,
        host_extra={"kernel_backends": backend_names},
    ).write(out_path, runs_root=runs_root)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes/repeats (seconds, CI-friendly)"
    )
    parser.add_argument(
        "--out", default=None, help="output JSON path (default: repo-root BENCH_ce_hotpath.json)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero unless a compiled backend clears "
        f"{TARGET_KERNEL_SPEEDUP}x end-to-end at n=50 (full scale only)",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="run-store root for this bench's runs/{run_id}/ record",
    )
    args = parser.parse_args()
    report = run(smoke=args.smoke, out=args.out, runs_root=args.runs_dir)
    for backend, groups in report["kernels"].items():
        for n, row in groups["end_to_end"].items():
            line = (
                f"[{backend}] n={n}: fused {row['fused_seconds']:.3f}s, "
                f"serial {row['serial_seconds']:.3f}s "
                f"({row['speedup_fused_vs_serial']:.2f}x), "
                f"auto={row['auto_mode']} {row['auto_seconds']:.3f}s"
            )
            if "seed_path_seconds" in row:
                line += (
                    f", seed path {row['seed_path_seconds']:.3f}s "
                    f"({row['speedup_fused_vs_seed_path']:.2f}x)"
                )
            print(line)
    acc = report["acceptance"]
    print(
        f"acceptance: {acc['measured_speedup_vs_seed_path']:.2f}x "
        f"(target {acc['target_speedup_vs_seed_path']}x, met={acc['met']})"
    )
    kacc = acc["kernel"]
    if kacc["measured_speedup"] is not None:
        print(
            f"kernel acceptance: {kacc['best_backend']} "
            f"{kacc['measured_speedup']:.2f}x vs numpy at n=50 "
            f"(target {kacc['target_speedup']}x, met={kacc['met']})"
        )
    else:
        print("kernel acceptance: not judged (smoke run or no compiled backend)")
    if args.check and kacc["met"] is not True:
        print(
            "--check FAILED: compiled kernel path did not clear "
            f"{TARGET_KERNEL_SPEEDUP}x at n=50",
            file=sys.stderr,
        )
        raise SystemExit(1)


if __name__ == "__main__":
    main()
