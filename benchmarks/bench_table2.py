"""EXP-T2 — regenerate Table 2 (mapping-time comparison, GA vs MaTCH).

The absolute seconds are hardware-relative (the paper used a 2005
Pentium III); the reproduced claim is the shape — MaTCH's mapping time
grows much faster with n than the GA's (``N = 2n²`` samples/iteration vs
a fixed population), with the ratio rising steeply across the size sweep.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table2 import compute_table2, render_table2


def test_table2_regenerate(benchmark, bench_profile, bench_seed, capsys):
    result = run_once(benchmark, compute_table2, bench_profile, seed=bench_seed)
    with capsys.disabled():
        print()
        print(render_table2(result))

    assert all(v > 0 for v in result.mt_ga)
    assert all(v > 0 for v in result.mt_match)
    # Table 2's shape: MaTCH's relative mapping cost rises with n.
    assert result.ratio_grows_with_size
    # And rises substantially: last/first ratio of the ratio row > 2.
    assert result.ratio[-1] / result.ratio[0] > 2.0
