"""Execution-fabric benchmark — writes ``BENCH_parallel_runner.json``.

Measures suite-style dispatch traffic (many map calls of small independent
cells, the shape every table/figure regeneration produces) through four
stages of the experiment runner's history:

* **per_call** — the pre-fabric baseline: every map call constructs a fresh
  ``ProcessPoolExecutor`` and every cell pickles the full problem graphs
  (this is exactly what chaining ``parallel_map`` calls used to do);
* **warm** — one :class:`~repro.utils.parallel.WorkerPool` serves every
  call (workers fork once), cells still pickle full problems;
* **warm_shared** — warm pool plus the shared-memory problem plane: each
  instance is published once and cells carry a few-hundred-byte handle;
* **warm_shared_lpt** — the shipped configuration: warm pool, shared
  plane, and straggler-aware longest-processing-time-first scheduling.

Every stage runs the identical cell set with identical per-cell seeds, and
the script aborts unless all four stages return bit-identical execution
times — the fabric is pure overhead removal, never a results change.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_runner.py [--smoke] [--out PATH]

``--smoke`` shrinks the workload so the script finishes in seconds while
still exercising all four stages (the test suite runs it that way); the
acceptance ratio (warm+shared+LPT vs per-call at >= 4 workers) is only
recorded as met/not-met on full runs.
"""

from __future__ import annotations

import argparse
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable

from repro.experiments.suite import build_suite
from repro.runstore import BenchResult
from repro.runtime.registry import SolverSpec
from repro.utils.parallel import WorkerPool
from repro.utils.rng import RngStreams
from repro.utils.shared_plane import resolve_problem

#: The acceptance bar: shipped fabric vs the per-call baseline on
#: suite-style dispatch traffic at >= 4 workers.
TARGET_SPEEDUP = 2.0

#: Cheap registered heuristics — cells small enough that dispatch overhead,
#: not solver arithmetic, dominates (the regime the fabric exists for).
HEURISTICS = (
    SolverSpec.of("greedy"),
    SolverSpec.of("random", {"n_samples": 64, "batch_size": 64}),
    SolverSpec.of("local-search", {"restarts": 1, "max_sweeps": 2}),
)


def _run_cell(cell) -> float:
    """Top-level (picklable) worker: one (solver, problem, seed) cell's ET."""
    solver, problem_ref, seed, _size = cell
    return solver.build().map(resolve_problem(problem_ref), seed).execution_time


def _cell_weight(cell) -> float:
    """LPT weight (evaluated in the parent): cost grows with instance size."""
    return float(cell[3]) ** 3


def _build_calls(sizes, n_pairs, rounds, reps, seed):
    """Suite-style traffic: one map call per (round, heuristic).

    Each call spans every size, pair and repetition — the mixed-size cell
    list :func:`repro.experiments.runner.run_comparison` produces, where
    LPT ordering matters. Returns ``(instances, calls)``; each cell is
    ``(solver, problem, seed, size)`` with the live problem in the problem
    slot (shared-plane stages swap in the handle). Seeds are derived per
    cell up front, identically for every stage.
    """
    suite = build_suite(sizes, n_pairs, seed=seed)
    streams = RngStreams(seed=seed)
    instances = [inst for size in sizes for inst in suite[size]]
    calls = []
    for rnd in range(rounds):
        for h_index, solver in enumerate(HEURISTICS):
            calls.append(
                [
                    (
                        solver,
                        inst.problem,
                        streams.seed_for(
                            "bench-fabric",
                            round=rnd,
                            heuristic=h_index,
                            size=size,
                            pair=inst.pair_index,
                            rep=rep,
                        ),
                        size,
                    )
                    for size in sizes
                    for inst in suite[size]
                    for rep in range(reps)
                ]
            )
    return instances, calls


def _timed(fn: Callable[[], list[list[float]]]) -> tuple[float, list[list[float]]]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def stage_per_call(calls, n_workers) -> tuple[float, list[list[float]]]:
    """Fresh executor per map call, full problems pickled per cell."""

    def run():
        results = []
        for cells in calls:
            # The pre-fabric dispatch path IS the measured baseline here.
            with ProcessPoolExecutor(max_workers=n_workers) as executor:  # repro: noqa[parallel-safety]
                results.append(list(executor.map(_run_cell, cells, chunksize=1)))
        return results

    return _timed(run)


def stage_warm(calls, n_workers) -> tuple[float, list[list[float]]]:
    """One warm pool for every call; problems still pickled per cell."""

    def run():
        with WorkerPool(n_workers) as pool:
            return [pool.map(_run_cell, cells) for cells in calls]

    return _timed(run)


def _with_handles(calls, pool):
    """The same calls with each problem swapped for its shared-plane handle."""
    return [
        [
            (solver, pool.publish_problem(problem), cell_seed, size)
            for solver, problem, cell_seed, size in cells
        ]
        for cells in calls
    ]


def stage_warm_shared(calls, n_workers, *, weighted: bool) -> tuple[float, list[list[float]]]:
    """Warm pool + shared plane; ``weighted`` adds LPT scheduling."""

    def run():
        with WorkerPool(n_workers) as pool:
            shared_calls = _with_handles(calls, pool)
            weight = _cell_weight if weighted else None
            return [
                pool.map(_run_cell, cells, weight=weight) for cells in shared_calls
            ]

    return _timed(run)


def run(
    smoke: bool = False,
    out: str | Path | None = None,
    runs_root: str | Path | None = None,
) -> dict:
    """Execute all four stages and write the JSON report."""
    if smoke:
        sizes, n_pairs, rounds, reps, n_workers, repeats = (6, 8), 2, 2, 1, 2, 1
    else:
        sizes, n_pairs, rounds, reps, n_workers, repeats = (8, 10, 12), 2, 6, 2, 4, 3

    instances, calls = _build_calls(sizes, n_pairs, rounds, reps, seed=2005)
    n_cells = sum(len(c) for c in calls)

    stages: dict[str, tuple[float, list[list[float]]]] = {}
    for _ in range(repeats):  # keep the best-of timing per stage
        for name, runner in (
            ("per_call", lambda: stage_per_call(calls, n_workers)),
            ("warm", lambda: stage_warm(calls, n_workers)),
            ("warm_shared", lambda: stage_warm_shared(calls, n_workers, weighted=False)),
            ("warm_shared_lpt", lambda: stage_warm_shared(calls, n_workers, weighted=True)),
        ):
            seconds, ets = runner()
            if name not in stages or seconds < stages[name][0]:
                stages[name] = (seconds, ets)

    baseline_ets = stages["per_call"][1]
    for name, (_, ets) in stages.items():
        if ets != baseline_ets:
            raise AssertionError(
                f"stage {name!r} changed results — the fabric must be "
                "bit-identical to per-call dispatch"
            )

    per_call_s = stages["per_call"][0]
    stage_rows = {
        name: {
            "seconds": seconds,
            "cells_per_s": n_cells / seconds,
            "speedup_vs_per_call": per_call_s / seconds,
        }
        for name, (seconds, _) in stages.items()
    }

    measured = stage_rows["warm_shared_lpt"]["speedup_vs_per_call"]
    acceptance = {
        "criterion": (
            "warm pool + shared plane + LPT >= 2x faster than per-call "
            "pool dispatch on suite-style traffic at >= 4 workers"
        ),
        "target_speedup": TARGET_SPEEDUP,
        "measured_speedup": measured,
        "met": bool(measured >= TARGET_SPEEDUP) if not smoke else None,
    }

    out_path = (
        Path(out)
        if out is not None
        else Path(__file__).parent.parent / "BENCH_parallel_runner.json"
    )
    return BenchResult(
        "parallel_runner",
        smoke=smoke,
        groups={
            "workload": {
                "sizes": list(sizes),
                "n_pairs": n_pairs,
                "rounds": rounds,
                "n_instances": len(instances),
                "map_calls": len(calls),
                "cells_total": n_cells,
                "n_workers": n_workers,
                "heuristics": [str(h) for h in HEURISTICS],
                "repeats_best_of": repeats,
            },
            "stages": stage_rows,
            "results_bit_identical_across_stages": True,
        },
        acceptance=acceptance,
    ).write(out_path, runs_root=runs_root)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workload (seconds, CI-friendly)"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: repo-root BENCH_parallel_runner.json)",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="run-store root for this bench's runs/{run_id}/ record",
    )
    args = parser.parse_args()
    report = run(smoke=args.smoke, out=args.out, runs_root=args.runs_dir)
    for name, row in report["stages"].items():
        print(
            f"{name:16s} {row['seconds']:7.3f}s  "
            f"{row['cells_per_s']:8.1f} cells/s  "
            f"{row['speedup_vs_per_call']:5.2f}x vs per_call"
        )
    acc = report["acceptance"]
    print(
        f"acceptance: {acc['measured_speedup']:.2f}x "
        f"(target {acc['target_speedup']}x, met={acc['met']})"
    )


if __name__ == "__main__":
    main()
