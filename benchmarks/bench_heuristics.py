"""MICRO — head-to-head heuristic timing at one fixed size.

Times one complete run of every mapper in the library on the same n = 15
instance. Not a paper artifact; a practical guide to what each heuristic
costs and returns (the quality assertions keep the bench honest).
"""

from __future__ import annotations

import pytest

from conftest import run_once

from repro.baselines import (
    FastMapGA,
    GAConfig,
    GreedyConstructiveMapper,
    LocalSearchMapper,
    RandomSearchMapper,
    SAConfig,
    SimulatedAnnealingMapper,
)
from repro.core import (
    AdaptiveMatchMapper,
    DistributedMatchMapper,
    MatchConfig,
    MatchMapper,
)
from repro.graphs import generate_paper_pair
from repro.mapping import CostModel, MappingProblem

SIZE = 15


@pytest.fixture(scope="module")
def problem():
    pair = generate_paper_pair(SIZE, 123)
    return MappingProblem(pair.tig, pair.resources, require_square=True)


@pytest.fixture(scope="module")
def random_floor(problem):
    """Mean cost of a random mapping — every heuristic must beat this."""
    import numpy as np

    model = CostModel(problem)
    rng = np.random.default_rng(0)
    return float(
        np.mean([model.evaluate(rng.permutation(SIZE)) for _ in range(300)])
    )


MAPPERS = {
    "match": lambda: MatchMapper(MatchConfig()),
    "match_adaptive": lambda: AdaptiveMatchMapper(),
    "match_distributed": lambda: DistributedMatchMapper(),
    "fastmap_ga": lambda: FastMapGA(GAConfig(population_size=150, generations=200)),
    "random_search": lambda: RandomSearchMapper(10_000),
    "local_search": lambda: LocalSearchMapper(restarts=4),
    "simulated_annealing": lambda: SimulatedAnnealingMapper(SAConfig(n_steps=15_000)),
    "greedy": lambda: GreedyConstructiveMapper(),
}


@pytest.mark.parametrize("name", sorted(MAPPERS))
def test_heuristic_run(benchmark, problem, random_floor, name):
    result = run_once(benchmark, MAPPERS[name]().map, problem, 42)
    assert problem.is_one_to_one(result.assignment)
    assert result.execution_time < random_floor
    benchmark.extra_info["execution_time"] = result.execution_time
    benchmark.extra_info["n_evaluations"] = result.n_evaluations
