"""Extension studies — heterogeneity and CCR scaling sweeps.

Not paper artifacts; they characterise *when* the CE mapping advantage is
largest (DESIGN.md's extension row). Printed as tables like the ablations.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.scaling import ccr_sweep, heterogeneity_sweep


def test_scaling_heterogeneity(benchmark, bench_seed, capsys):
    result = run_once(
        benchmark,
        heterogeneity_sweep,
        spreads=(1, 3, 5, 10, 20),
        size=15,
        runs=2,
        seed=bench_seed,
    )
    with capsys.disabled():
        print()
        print(result.render())

    assert len(result.points) == 5
    for p in result.points:
        assert p.match_et > 0 and p.ga_et > 0


def test_scaling_ccr(benchmark, bench_seed, capsys):
    result = run_once(
        benchmark,
        ccr_sweep,
        multipliers=(0.25, 1.0, 4.0, 16.0),
        size=15,
        runs=2,
        seed=bench_seed,
    )
    with capsys.disabled():
        print()
        print(result.render())

    assert len(result.points) == 4
    for p in result.points:
        assert p.improvement > 0.5  # the GA never crushes MaTCH
