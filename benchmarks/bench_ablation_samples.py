"""ABL-N — sweep the sample-size rule ``N = m·n²`` (paper: m = 2).

The paper justifies ``N = 2·|V_r|²`` with one sentence (the matrix has
``|V_r|²`` entries); the sweep quantifies the quality/time trade-off of
that choice.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablations import samples_sweep


def test_ablation_samples(benchmark, bench_seed, capsys):
    result = run_once(
        benchmark,
        samples_sweep,
        multipliers=(0.5, 1.0, 2.0, 4.0),
        size=15,
        runs=3,
        seed=bench_seed,
    )
    with capsys.disabled():
        print()
        print(result.render())

    assert len(result.points) == 4
    # More samples per iteration costs more evaluations...
    evals = [p.mean_evaluations for p in result.points]
    assert evals[-1] > evals[0]
    # ...and the paper's m = 2 quality is within 10% of the largest budget.
    by_m = {p.knob_value: p for p in result.points}
    assert by_m[2.0].mean_et <= by_m[4.0].mean_et * 1.10
