"""EXP-F3 — regenerate Figure 3 (stochastic matrix evolution at n = 10).

Runs one tracked MaTCH run and prints ASCII heat-map snapshots of the
stochastic matrix evolving from uniform to (near-)degenerate, the exact
story the paper's Figure 3 tells.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import compute_fig3, render_fig3


def test_fig3_regenerate(benchmark, bench_seed, capsys):
    result = run_once(benchmark, compute_fig3, size=10, seed=bench_seed, n_frames=4)
    with capsys.disabled():
        print()
        print(render_fig3(result))

    # The figure's claim: the matrix starts spread out and commits.
    assert result.frames[0]["degeneracy"] < 0.6
    assert result.final_degeneracy > result.frames[0]["degeneracy"]
    assert result.frames[-1]["entropy"] < result.frames[0]["entropy"]
    assert result.frames[-1]["committed_rows"] >= result.frames[0]["committed_rows"]
