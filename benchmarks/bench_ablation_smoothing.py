"""ABL-ZETA — sweep the Eq. (13) smoothing factor (paper: ζ = 0.3).

``ζ = 1`` recovers the coarse, unsmoothed update the paper warns converges
prematurely; small ζ slows convergence (more iterations, more mapping
time) in exchange for quality.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ablations import zeta_sweep


def test_ablation_zeta(benchmark, bench_seed, capsys):
    result = run_once(
        benchmark,
        zeta_sweep,
        values=(0.1, 0.2, 0.3, 0.5, 0.8, 1.0),
        size=15,
        runs=3,
        seed=bench_seed,
    )
    with capsys.disabled():
        print()
        print(result.render())

    assert len(result.points) == 6
    by_zeta = {p.knob_value: p for p in result.points}
    # Heavier smoothing (smaller ζ) takes more iterations to commit.
    assert by_zeta[0.1].mean_iterations >= by_zeta[1.0].mean_iterations
    # The paper's ζ = 0.3 is competitive with the sweep's best quality.
    best = result.best_point().mean_et
    assert by_zeta[0.3].mean_et <= best * 1.15
