"""Mapping-gateway benchmark — writes ``BENCH_service.json``.

Drives the :mod:`repro.service` gateway with an open-loop request trace —
mixed problem sizes, Zipf-repeated jobs (a few hot (problem, seed) pairs
dominate, a long tail appears once) — and compares it against the
one-request-at-a-time baseline the gateway replaces: a sequential
``spec.build().map(problem, seed)`` per request with no cache, no
coalescing and no worker fabric.

Three measurement groups:

* **trace** — the workload's shape (request count, unique jobs, Zipf
  exponent, size mix);
* **baseline** — sequential per-request solving wall-clock;
* **service** — the gateway on the same trace at ``--workers`` workers:
  wall-clock, request throughput, cache hit rate, coalesce widths, and
  client-observed latency percentiles.

Every gateway response is checked bit-identical to the direct solve of
its job (the cache/coalesce layer must be invisible in the numbers), and
cache hits must carry ``charged == 0`` — hits are served without touching
worker time or client quota. The acceptance bar is the ISSUE 9 claim:
coalesced+cached serving >= ``TARGET_SERVICE_SPEEDUP``x the sequential
baseline's throughput on the Zipf trace at 4 workers (full scale only).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke] [--out PATH]
        [--check] [--workers N] [--runs-dir DIR]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

import numpy as np

from repro.graphs import generate_paper_pair
from repro.mapping import MappingProblem
from repro.runstore import BenchResult
from repro.runtime.registry import SolverSpec
from repro.service import MappingRequest, MappingService, ServiceConfig

#: The ISSUE 9 acceptance bar: gateway throughput vs one-at-a-time solving
#: on the Zipf trace at 4 workers.
TARGET_SERVICE_SPEEDUP = 3.0

#: Zipf popularity exponent for job repetition (rank r drawn ∝ 1/r^s).
ZIPF_EXPONENT = 1.1


# -- trace construction ---------------------------------------------------------


def _build_jobs(
    sizes: tuple[int, ...], n_jobs: int, max_iterations: int, seed: int
) -> list[tuple[MappingProblem, SolverSpec, int]]:
    """``n_jobs`` distinct (problem, spec, seed) jobs cycling the size mix."""
    spec = SolverSpec.of("match", {"max_iterations": max_iterations})
    jobs = []
    for idx in range(n_jobs):
        size = sizes[idx % len(sizes)]
        pair = generate_paper_pair(size, seed + idx // len(sizes))
        problem = MappingProblem(pair.tig, pair.resources, require_square=True)
        jobs.append((problem, spec, seed + idx))
    return jobs


def _zipf_trace(n_jobs: int, n_requests: int, seed: int) -> list[int]:
    """Job index per request: Zipf-weighted ranks, shuffled arrival order."""
    ranks = np.arange(1, n_jobs + 1, dtype=np.float64)
    weights = ranks ** -ZIPF_EXPONENT
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    # Every job appears at least once (the long tail), the rest are
    # popularity-weighted repeats of the head.
    trace = list(range(n_jobs))
    trace += rng.choice(n_jobs, size=max(0, n_requests - n_jobs), p=weights).tolist()
    rng.shuffle(trace)
    return [int(i) for i in trace]


# -- measurement ----------------------------------------------------------------


def _run_baseline(
    jobs: list[tuple[MappingProblem, SolverSpec, int]],
    trace: list[int],
    rounds: int,
) -> tuple[float, dict[int, dict]]:
    """Sequential per-request solving; returns (seconds, per-job reference).

    The reference payload (first occurrence per job) doubles as the
    bit-parity oracle for the gateway's responses.
    """
    reference: dict[int, dict] = {}
    t0 = time.perf_counter()
    for _ in range(rounds):
        for job_idx in trace:
            problem, spec, seed = jobs[job_idx]
            result = spec.build().map(problem, seed)
            if job_idx not in reference:
                reference[job_idx] = {
                    "assignment": [int(x) for x in result.assignment],
                    "execution_time": float(result.execution_time),
                }
    return time.perf_counter() - t0, reference


async def _drive_service(
    service: MappingService,
    jobs: list[tuple[MappingProblem, SolverSpec, int]],
    trace: list[int],
    rounds: int,
    gap_s: float,
) -> tuple[float, list]:
    """Open-loop replay: submit one request every ``gap_s``, gather all.

    The trace is replayed for ``rounds`` rounds with a drain between them:
    round one is the cold fill (coalesce + single-flight dedup), later
    rounds are the steady-state repeat traffic a long-lived gateway serves
    from the result cache.
    """

    async def submit(job_idx: int):
        problem, spec, seed = jobs[job_idx]
        request = MappingRequest(
            problem=problem, solver=spec, seed=seed, client="bench"
        )
        return await service.submit(request)

    t0 = time.perf_counter()
    responses: list = []
    for _ in range(rounds):
        tasks = []
        for job_idx in trace:
            tasks.append(asyncio.ensure_future(submit(job_idx)))
            await asyncio.sleep(gap_s)
        responses.extend(await asyncio.gather(*tasks))
    return time.perf_counter() - t0, responses


def _run_service(
    jobs: list[tuple[MappingProblem, SolverSpec, int]],
    trace: list[int],
    *,
    rounds: int,
    n_workers: int,
    gap_s: float,
) -> tuple[float, list, dict]:
    """Gateway pass; pool startup happens before the clock starts (the
    daemon is long-lived — trace replay measures serving, not spawn)."""

    async def main():
        config = ServiceConfig(
            n_workers=n_workers, max_batch=16, coalesce_window=0.02
        )
        async with MappingService(config) as service:
            elapsed, responses = await _drive_service(
                service, jobs, trace, rounds, gap_s
            )
            return elapsed, responses, service.stats()

    return asyncio.run(main())


def _check_parity(responses: list, trace: list[int], reference: dict[int, dict]) -> None:
    """Every gateway response must be bit-identical to the direct solve."""
    for job_idx, response in zip(trace, responses):
        if response.status != "ok":
            raise AssertionError(
                f"gateway response for job {job_idx} not ok: {response.status} "
                f"({response.error})"
            )
        expect = reference[job_idx]
        got = {
            "assignment": response.result["assignment"],
            "execution_time": response.result["execution_time"],
        }
        if got != expect:
            raise AssertionError(
                f"gateway result for job {job_idx} diverged from the direct "
                f"solve: {got} vs {expect}"
            )
        if response.cached and response.charged != 0:
            raise AssertionError(
                f"cache hit for job {job_idx} charged {response.charged} "
                "evaluations; hits must be free"
            )


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


# -- driver ---------------------------------------------------------------------


def run(
    smoke: bool = False,
    out: str | Path | None = None,
    runs_root: str | Path | None = None,
    n_workers: int = 4,
) -> dict:
    if smoke:
        sizes: tuple[int, ...] = (8, 10)
        n_jobs, n_requests = 4, 12
        max_iterations = 60
        gap_s = 0.002
        rounds = 2
        n_workers = min(n_workers, 2)
    else:
        sizes = (10, 16, 24)
        n_jobs, n_requests = 16, 80
        max_iterations = 500
        gap_s = 0.005
        rounds = 2

    jobs = _build_jobs(sizes, n_jobs, max_iterations, seed=2005)
    trace = _zipf_trace(n_jobs, n_requests, seed=7)
    total_requests = rounds * n_requests

    baseline_s, reference = _run_baseline(jobs, trace, rounds)
    service_s, responses, stats = _run_service(
        jobs, trace, rounds=rounds, n_workers=n_workers, gap_s=gap_s
    )
    _check_parity(responses, trace * rounds, reference)

    latencies = [r.latency_s for r in responses]
    hits = [r for r in responses if r.cached]
    speedup = (baseline_s / service_s) if service_s > 0 else float("inf")

    trace_group = {
        "n_requests_per_round": n_requests,
        "rounds": rounds,
        "n_requests": total_requests,
        "n_unique_jobs": n_jobs,
        "zipf_exponent": ZIPF_EXPONENT,
        "sizes": list(sizes),
        "max_iterations": max_iterations,
        "arrival_gap_s": gap_s,
    }
    baseline_group = {
        "seconds": baseline_s,
        "requests_per_s": total_requests / baseline_s,
    }
    service_group = {
        "workers": n_workers,
        "seconds": service_s,
        "requests_per_s": total_requests / service_s,
        "speedup_vs_baseline": speedup,
        "cache_hits": len(hits),
        "cache_hit_rate": len(hits) / total_requests,
        "coalesced_dedup": stats["coalesced_dedup"],
        "batches": stats["batches"],
        "coalesced_batches": stats["coalesced_batches"],
        "max_batch_width": stats["max_batch_width"],
        "mean_batch_width": stats["mean_batch_width"],
        "worker_cells": stats["worker_cells"],
        "latency_p50_s": _percentile(latencies, 50),
        "latency_p95_s": _percentile(latencies, 95),
        "hit_latency_p50_s": _percentile([r.latency_s for r in hits], 50) if hits else None,
        "evaluations_charged_on_hits": sum(r.charged for r in hits),
    }

    acceptance = {
        "criterion": (
            "coalesced+cached gateway >= 3x the sequential one-request-at-"
            "a-time throughput on the Zipf trace at 4 workers; every "
            "response bit-identical to the direct solve; cache hits "
            "charged zero worker evaluations"
        ),
        "target_speedup": TARGET_SERVICE_SPEEDUP,
        "measured_speedup": speedup,
        "parity_ok": True,
        "hits_charged_zero": service_group["evaluations_charged_on_hits"] == 0,
        "met": bool(speedup >= TARGET_SERVICE_SPEEDUP) if not smoke else None,
    }

    out_path = Path(out) if out is not None else Path(__file__).parent.parent / "BENCH_service.json"
    return BenchResult(
        "service",
        smoke=smoke,
        groups={
            "trace": trace_group,
            "baseline": baseline_group,
            "service": service_group,
        },
        acceptance=acceptance,
    ).write(out_path, runs_root=runs_root)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny trace (seconds, CI-friendly)"
    )
    parser.add_argument(
        "--out", default=None, help="output JSON path (default: repo-root BENCH_service.json)"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="gateway worker count (default: 4)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero unless the gateway clears "
        f"{TARGET_SERVICE_SPEEDUP}x vs the baseline (full scale only)",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="run-store root for this bench's runs/{run_id}/ record",
    )
    args = parser.parse_args()
    report = run(
        smoke=args.smoke,
        out=args.out,
        runs_root=args.runs_dir,
        n_workers=args.workers,
    )
    svc = report["service"]
    print(
        f"baseline: {report['baseline']['seconds']:.3f}s "
        f"({report['baseline']['requests_per_s']:.1f} req/s) | "
        f"gateway[{svc['workers']}w]: {svc['seconds']:.3f}s "
        f"({svc['requests_per_s']:.1f} req/s, {svc['speedup_vs_baseline']:.2f}x)"
    )
    print(
        f"cache: {svc['cache_hits']} hits ({svc['cache_hit_rate']:.0%}), "
        f"dedup {svc['coalesced_dedup']} | batches: {svc['batches']} "
        f"({svc['coalesced_batches']} coalesced, max width {svc['max_batch_width']}) | "
        f"latency p50 {svc['latency_p50_s']*1e3:.1f}ms p95 {svc['latency_p95_s']*1e3:.1f}ms"
    )
    acc = report["acceptance"]
    print(
        f"acceptance: {acc['measured_speedup']:.2f}x "
        f"(target {acc['target_speedup']}x, met={acc['met']}, "
        f"parity={acc['parity_ok']}, hits_free={acc['hits_charged_zero']})"
    )
    if args.check and acc["met"] is not True:
        print(
            f"--check FAILED: gateway did not clear {TARGET_SERVICE_SPEEDUP}x "
            "vs the sequential baseline",
            file=sys.stderr,
        )
        raise SystemExit(1)


if __name__ == "__main__":
    main()
