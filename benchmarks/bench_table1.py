"""EXP-T1 — regenerate Table 1 (execution-time comparison, GA vs MaTCH).

Prints the measured table next to the published one and asserts the
reproduction's shape claims: MaTCH's mapping quality is at least
competitive at the smallest size and its advantage grows with n.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table1 import compute_table1, render_table1


def test_table1_regenerate(benchmark, bench_profile, bench_seed, capsys):
    result = run_once(benchmark, compute_table1, bench_profile, seed=bench_seed)
    with capsys.disabled():
        print()
        print(render_table1(result))

    # Shape claims (DESIGN.md §5): the GA never beats MaTCH by much
    # anywhere, and the improvement factor grows with problem size.
    assert all(r > 0.9 for r in result.ratio)
    assert result.ratio_grows_with_size
    # Quality values are positive and finite.
    assert all(v > 0 for v in result.et_match)
    assert all(v > 0 for v in result.et_ga)
