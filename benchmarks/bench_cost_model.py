"""MICRO — cost-model and sampler micro-benchmarks.

These are classic pytest-benchmark timing loops (many rounds) over the two
hot paths of the library: batched Eq. (1)/(2) evaluation and GenPerm
sampling. They document the speedup of the vectorized evaluator over the
reference loops — the engineering that makes paper-scale CE iterations
(5 000 evaluations each at n = 50) affordable in Python.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ce.genperm import sample_permutations
from repro.ce.stochastic_matrix import StochasticMatrix
from repro.graphs import generate_paper_pair
from repro.mapping import CostModel, MappingProblem, evaluate_reference

N = 30  # instance size for the micro benches
BATCH = 512


@pytest.fixture(scope="module")
def instance():
    pair = generate_paper_pair(N, 77)
    problem = MappingProblem(pair.tig, pair.resources, require_square=True)
    model = CostModel(problem)
    rng = np.random.default_rng(0)
    batch = np.stack([rng.permutation(N) for _ in range(BATCH)])
    return problem, model, batch


def test_reference_single_eval(benchmark, instance):
    problem, _, batch = instance
    result = benchmark(evaluate_reference, problem, batch[0])
    assert result > 0


def test_vectorized_single_eval(benchmark, instance):
    _, model, batch = instance
    result = benchmark(model.evaluate, batch[0])
    assert result > 0


def test_vectorized_batch_eval(benchmark, instance):
    """The CE hot path: 512 mappings per call."""
    _, model, batch = instance
    costs = benchmark(model.evaluate_batch, batch)
    assert costs.shape == (BATCH,)


def test_batch_eval_agrees_with_reference(instance):
    problem, model, batch = instance
    sample = batch[:16]
    expected = [evaluate_reference(problem, x) for x in sample]
    np.testing.assert_allclose(model.evaluate_batch(sample), expected)


def test_genperm_batch_sampling(benchmark):
    """Batched GenPerm at paper scale: N = 2n² samples at n = 30."""
    P = StochasticMatrix.uniform(N, N).values
    X = benchmark(sample_permutations, P, 2 * N * N, 7)
    assert X.shape == (2 * N * N, N)


def test_incremental_swap_probe(benchmark, instance):
    """The local-search hot path: one O(deg) swap probe."""
    from repro.mapping import IncrementalEvaluator

    _, model, batch = instance
    inc = IncrementalEvaluator(model, batch[0])
    cost = benchmark(inc.swap_cost, 3, 17)
    assert cost > 0
