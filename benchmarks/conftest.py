"""Shared configuration for the benchmark suite.

Every paper artifact (tables 1-3, figures 3 and 7-9) has one bench module
that regenerates it and prints the same rows/series the paper reports.
Benchmarks default to a scaled-down profile so the whole suite finishes in
a few minutes; set ``REPRO_FULL_SCALE=1`` (or ``REPRO_SCALE=paper``) to run
the paper's §5.2 parameters verbatim.

The regeneration benches run exactly once per session
(``benchmark.pedantic(rounds=1)``): the quantity of interest is the
artifact itself plus a wall-clock reading, not a statistical timing
distribution over repeated multi-minute sweeps.

Tables 1-2 and Figures 7-9 all derive from one §5.3 suite comparison; the
runner memoizes it per (profile, seed), so within a session the first
bench that needs it pays the full cost and the rest reuse the cached
series (their timer then measures only extraction/rendering).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.spec import PAPER_PROFILE, ScaleProfile

#: Scaled-down default profile for benchmark regeneration runs.
BENCH_PROFILE = ScaleProfile(
    name="bench",
    sizes=(10, 15, 20),
    n_pairs=2,
    runs_per_pair=2,
    ga_population=150,
    ga_generations=250,
    anova_runs=10,
    anova_ga_configs=((75, 500), (250, 150)),
    match_max_iterations=400,
)


def _full_scale() -> bool:
    return (
        os.environ.get("REPRO_FULL_SCALE", "") == "1"
        or os.environ.get("REPRO_SCALE", "").lower() == "paper"
    )


@pytest.fixture(scope="session")
def bench_profile() -> ScaleProfile:
    """The active benchmark profile (bench-scale unless full scale is set)."""
    return PAPER_PROFILE if _full_scale() else BENCH_PROFILE


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """One root seed for the whole benchmark session."""
    return 2005


#: Wall-clock seconds per bench item, accumulated across the session and
#: folded into one run-store record at session end.
_SESSION_TIMINGS: dict[str, float] = {}


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer and return it."""
    import time

    t0 = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    name = getattr(benchmark, "name", None) or fn.__name__
    _SESSION_TIMINGS[name] = time.perf_counter() - t0
    return result


def pytest_sessionfinish(session, exitstatus) -> None:
    """Record the whole pytest-bench session as one run-store run.

    The artifact benches print their tables/series rather than writing
    JSON; this hook is how their timings still land in ``runs/{run_id}/``
    like every other entry point. Recording is best-effort: a run-store
    problem must not turn a green bench session red.
    """
    timings = dict(_SESSION_TIMINGS)
    try:
        # Micro-benches (classic multi-round pytest-benchmark loops) never
        # pass through run_once; pick their best-of timing off the plugin.
        for bench in getattr(
            getattr(session.config, "_benchmarksession", None), "benchmarks", []
        ):
            if bench.name not in timings and bench.stats is not None:
                timings[bench.name] = float(bench.stats.min)
    except Exception:  # pragma: no cover - plugin internals may shift
        pass
    if not timings:
        return
    try:
        from repro.runstore import BenchResult

        BenchResult(
            "pytest_suite",
            smoke=not _full_scale(),
            groups={"timings": dict(sorted(timings.items()))},
        ).write(out=None)
    except Exception as exc:  # pragma: no cover - defensive
        print(f"warning: bench session run-store record failed: {exc}")


def pytest_collection_modifyitems(items) -> None:
    """Mark every bench as ``slow``.

    Belt and braces on top of the ``python_files`` exclusion in
    ``pyproject.toml``: even when the benches are collected explicitly
    (``pytest benchmarks -o python_files='bench_*.py'``), a tier-1 run
    filtering with ``-m 'not slow'`` still skips them.
    """
    for item in items:
        item.add_marker(pytest.mark.slow)
