"""EXP-T3 — regenerate Table 3 (the ANOVA study at n = 10).

Runs MaTCH and two FastMap-GA configurations repeatedly on one n = 10
instance, prints the per-heuristic statistics and the ANOVA verdict next
to the published table.

Note (EXPERIMENTS.md): the published F = 1547 arises from a GA whose
output was far worse than MaTCH's at n = 10. A conforming elitist GA is
lower-bounded by its best initial individual and essentially solves n = 10,
so the measured groups are much closer than the paper's; the bench asserts
the *machinery* (group statistics + F + p) rather than the published
verdict's magnitude.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table3 import compute_table3, render_table3


def test_table3_regenerate(benchmark, bench_profile, bench_seed, capsys):
    result = run_once(benchmark, compute_table3, bench_profile, seed=bench_seed)
    with capsys.disabled():
        print()
        print(render_table3(result))

    assert result.size == 10
    assert len(result.summaries) == 3
    for s in result.summaries:
        assert s.n == result.runs
        assert s.ci_low <= s.mean <= s.ci_high
        assert s.std >= 0
    assert result.anova.df_between == 2
    assert 0.0 <= result.anova.p_value <= 1.0
    assert result.anova.f_value >= 0.0
