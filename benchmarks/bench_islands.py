"""Island-runtime benchmark — writes ``BENCH_islands.json``.

Measures the socket-distributed island runtime (:mod:`repro.islands`)
against the sequential agent simulation it must reproduce
(:class:`repro.core.distributed.DistributedMatchMapper`): same problem,
same seeds, loopback islands on 127.0.0.1. Three measurement groups:

* **workload** — instance size, agent/round structure, seeds;
* **sequential** — the in-process simulation's wall-clock;
* **islands** — the loopback runtime at 1, 2 and 4 islands: wall-clock,
  per-round protocol overhead, and sync/round counts.

Every distributed run is checked **bit-identical** to the sequential
simulation (assignment, execution time, evaluation count, round/sync
structure) — the loopback transport must be invisible in the numbers. On
a single host the runtime cannot be faster than the simulation (same
arithmetic plus frame traffic), so the acceptance bar is an *overhead
ceiling*: the protocol tax per agent-round must stay bounded, which is
what makes multi-node deployments worthwhile once real cores back the
islands.

Usage::

    PYTHONPATH=src python benchmarks/bench_islands.py [--smoke] [--out PATH]
        [--runs-dir DIR]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.distributed import DistributedMatchConfig, DistributedMatchMapper
from repro.graphs import generate_paper_pair
from repro.islands import run_loopback
from repro.mapping import MappingProblem
from repro.runstore import BenchResult

#: Acceptance bar: mean protocol overhead per agent-round of the 2-island
#: loopback run, in milliseconds. Loopback frames on one host cost well
#: under a millisecond; blowing through 25 ms/agent-round means the
#: lockstep protocol (not the arithmetic) dominates and multi-node scaling
#: claims would be hollow.
TARGET_OVERHEAD_MS_PER_AGENT_ROUND = 25.0

ISLAND_COUNTS = (1, 2, 4)


def _build(size: int, seed: int) -> MappingProblem:
    pair = generate_paper_pair(size, seed)
    return MappingProblem(pair.tig, pair.resources, require_square=True)


def _assert_parity(result: dict, reference, n_islands: int) -> None:
    mismatches = []
    if result["assignment"] != [int(x) for x in reference.assignment]:
        mismatches.append("assignment")
    if result["best_cost"] != reference.execution_time:
        mismatches.append("execution_time")
    if result["n_evaluations"] != reference.n_evaluations:
        mismatches.append("n_evaluations")
    if result["extras"]["rounds"] != reference.extras["rounds"]:
        mismatches.append("rounds")
    if result["extras"]["n_syncs"] != reference.extras["n_syncs"]:
        mismatches.append("n_syncs")
    if mismatches:
        raise AssertionError(
            f"{n_islands}-island run diverged from the sequential simulation "
            f"in: {', '.join(mismatches)}"
        )


def run(
    smoke: bool = False,
    out: str | Path | None = None,
    runs_root: str | Path | None = None,
) -> dict:
    if smoke:
        size, seed = 8, 7
        config = DistributedMatchConfig(
            n_agents=4, sync_every=5, total_samples=64, max_rounds=30
        )
    else:
        size, seed = 16, 2005
        config = DistributedMatchConfig(
            n_agents=4, sync_every=5, total_samples=512, max_rounds=120
        )

    problem = _build(size, seed)

    t0 = time.perf_counter()
    reference = DistributedMatchMapper(config).map(problem, seed)
    sequential_s = time.perf_counter() - t0

    agent_rounds = reference.extras["rounds"] * config.n_agents
    island_groups: dict[str, dict] = {}
    overhead_two_islands_ms = None
    for n_islands in ISLAND_COUNTS:
        t0 = time.perf_counter()
        result = run_loopback(problem, config, seed=seed, n_islands=n_islands)
        elapsed = time.perf_counter() - t0
        _assert_parity(result, reference, n_islands)
        overhead_ms = max(0.0, elapsed - sequential_s) * 1000.0 / agent_rounds
        if n_islands == 2:
            overhead_two_islands_ms = overhead_ms
        island_groups[f"islands_{n_islands}"] = {
            "n_islands": n_islands,
            "seconds": elapsed,
            "slowdown_vs_sequential": elapsed / sequential_s if sequential_s else None,
            "protocol_overhead_ms_per_agent_round": overhead_ms,
            "rounds": result["extras"]["rounds"],
            "n_syncs": result["extras"]["n_syncs"],
            "node_failures": result["extras"]["node_failures"],
            "parity_ok": True,
        }

    workload = {
        "size": size,
        "seed": seed,
        "n_agents": config.n_agents,
        "sync_every": config.sync_every,
        "total_samples_per_round": config.total_samples,
        "rounds": reference.extras["rounds"],
        "agent_rounds": agent_rounds,
        "n_evaluations": reference.n_evaluations,
    }
    sequential_group = {
        "seconds": sequential_s,
        "agent_rounds_per_s": agent_rounds / sequential_s if sequential_s else None,
    }

    acceptance = {
        "criterion": (
            "every loopback island run bit-identical to the sequential "
            "simulation (assignment, ET, evaluations, round/sync structure); "
            "2-island protocol overhead per agent-round under "
            f"{TARGET_OVERHEAD_MS_PER_AGENT_ROUND} ms"
        ),
        "target_overhead_ms_per_agent_round": TARGET_OVERHEAD_MS_PER_AGENT_ROUND,
        "measured_overhead_ms_per_agent_round": overhead_two_islands_ms,
        "parity_ok": True,
        "met": (
            bool(overhead_two_islands_ms <= TARGET_OVERHEAD_MS_PER_AGENT_ROUND)
            if not smoke
            else None
        ),
    }

    out_path = (
        Path(out)
        if out is not None
        else Path(__file__).parent.parent / "BENCH_islands.json"
    )
    return BenchResult(
        "islands",
        smoke=smoke,
        groups={
            "workload": workload,
            "sequential": sequential_group,
            **island_groups,
        },
        acceptance=acceptance,
    ).write(out_path, runs_root=runs_root)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny instance (seconds, CI-friendly)"
    )
    parser.add_argument("--out", default=None, help="report path (default ./BENCH_islands.json)")
    parser.add_argument(
        "--runs-dir", default=None, metavar="DIR", help="run-store root for the bench run"
    )
    args = parser.parse_args()
    report = run(smoke=args.smoke, out=args.out, runs_root=args.runs_dir)
    two = report["islands_2"]
    print(
        f"sequential {report['sequential']['seconds']:.3f}s; "
        f"2 islands {two['seconds']:.3f}s "
        f"({two['protocol_overhead_ms_per_agent_round']:.3f} ms/agent-round "
        "protocol overhead); parity ok",
        file=sys.stderr,
    )


if __name__ == "__main__":
    main()
