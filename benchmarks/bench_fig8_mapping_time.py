"""EXP-F8 — regenerate Figure 8 (mapping-time series as a bar chart)."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import compute_fig8, render_series_chart


def test_fig8_regenerate(benchmark, bench_profile, bench_seed, capsys):
    series = run_once(benchmark, compute_fig8, bench_profile, seed=bench_seed)
    with capsys.disabled():
        print()
        print(
            render_series_chart(
                series, title="Figure 8 (measured): mapping time (seconds) by size"
            )
        )

    # Figure 8's story: MaTCH's MT curve rises much more steeply.
    match = series.values["MaTCH"]
    ga = series.values["FastMap-GA"]
    match_growth = match[-1] / match[0]
    ga_growth = ga[-1] / ga[0]
    assert match_growth > ga_growth
