"""Deterministic random-number-generator management.

Every stochastic component in the library (graph generators, GenPerm
sampling, GA operators, simulated annealing, ...) takes a *seed-like* value
and converts it with :func:`as_generator`. Experiments that need several
independent streams — e.g. one per heuristic per repetition — derive them
from a single root seed with :func:`spawn_generators` or the convenience
:class:`RngStreams` wrapper, so a whole paper table is reproducible from one
integer.

The implementation builds on :class:`numpy.random.SeedSequence` spawning,
the recommended mechanism for statistically independent substreams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import SeedLike

__all__ = [
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "generator_state",
    "generator_from_state",
    "RngStreams",
]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    ``None`` gives OS entropy; an ``int`` or ``SeedSequence`` seeds a fresh
    PCG64 generator; an existing ``Generator`` is returned unchanged (so
    callers can thread one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``.

    Unlike ``[default_rng(seed + i) for i in range(n)]`` — which numpy's
    documentation warns against — spawned ``SeedSequence`` children are
    guaranteed non-overlapping.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's own bit generator seed sequence.
        children = seed.bit_generator.seed_seq.spawn(n)  # type: ignore[union-attr]
    else:
        root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        children = root.spawn(n)
    return [np.random.default_rng(c) for c in children]


def derive_seed(seed: SeedLike, *labels: object) -> int:
    """Derive a stable 63-bit integer sub-seed from ``seed`` and labels.

    Useful when an API only accepts integer seeds (e.g. recording the seed
    in a JSON result file). The same ``(seed, labels)`` always yields the
    same value; different labels yield (with overwhelming probability)
    different values.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError("derive_seed needs a reproducible seed, not a live Generator")
    base = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    # Mix the labels into the entropy via their hash of a stable repr.
    import zlib

    label_entropy = [zlib.crc32(repr(lab).encode("utf-8")) for lab in labels]
    mixed = np.random.SeedSequence(
        entropy=base.entropy, spawn_key=tuple(label_entropy)
    )
    return int(mixed.generate_state(1, dtype=np.uint64)[0] >> np.uint64(1))


def generator_state(gen: np.random.Generator) -> dict:
    """JSON-able snapshot of a generator's exact stream position.

    Numpy's ``bit_generator.state`` is a nested dict of strings and
    (arbitrarily large) Python ints, which serializes losslessly to JSON.
    Restoring it with :func:`generator_from_state` resumes the stream at
    the *same position* — the next draw after a save/restore round-trip is
    bit-identical to the draw an uninterrupted run would have made, which
    is what makes checkpoint/resume seed-for-seed exact.
    """
    return _jsonable_rng_state(gen.bit_generator.state)


def generator_from_state(state: dict) -> np.random.Generator:
    """Rebuild a generator positioned exactly where :func:`generator_state` left it."""
    name = state.get("bit_generator")
    if not isinstance(name, str) or not hasattr(np.random, name):
        raise ValueError(f"unknown bit generator in rng state: {name!r}")
    bit_gen = getattr(np.random, name)()
    bit_gen.state = state
    return np.random.Generator(bit_gen)


def _jsonable_rng_state(state: object) -> dict:
    """Recursively coerce numpy scalars/arrays in a bit-generator state to ints."""
    if isinstance(state, dict):
        return {k: _jsonable_rng_state(v) for k, v in state.items()}
    if isinstance(state, np.ndarray):
        return [int(v) for v in state.tolist()]  # type: ignore[return-value]
    if isinstance(state, np.integer):
        return int(state)  # type: ignore[return-value]
    return state  # type: ignore[return-value]


@dataclass
class RngStreams:
    """A root seed plus a lazily-grown family of named independent streams.

    Example
    -------
    >>> streams = RngStreams(seed=42)
    >>> g1 = streams.get("match", rep=0)
    >>> g2 = streams.get("ga", rep=0)

    The same name/kwargs always return a *fresh* generator seeded
    identically, so a stream can be replayed.
    """

    seed: int
    _cache: dict[tuple, int] = field(default_factory=dict, repr=False)

    def seed_for(self, name: str, **labels: object) -> int:
        """Integer sub-seed for the stream ``(name, labels)``."""
        key = (name, tuple(sorted(labels.items())))
        if key not in self._cache:
            self._cache[key] = derive_seed(self.seed, name, tuple(sorted(labels.items())))
        return self._cache[key]

    def get(self, name: str, **labels: object) -> np.random.Generator:
        """A fresh generator for the stream ``(name, labels)``."""
        return np.random.default_rng(self.seed_for(name, **labels))
