"""The shared-memory problem plane: publish instances once, attach zero-copy.

Suite-scale dispatch used to pickle every :class:`MappingProblem` — graphs,
edge lists and the dense O(n²) communication-cost matrix — into **every**
cell task shipped to a worker. The plane inverts that: the parent publishes
each instance's numeric arrays into one ``multiprocessing.shared_memory``
segment, workers attach by name and rebuild the problem as read-only views
over the same physical pages, and a cell task shrinks to a
``(problem handle, solver spec, seed)`` tuple a few hundred bytes long.

Lifecycle guarantees (the leak tests in ``tests/utils`` pin all three):

* segments are unlinked when the owning :class:`ProblemPlane` (usually via
  :class:`repro.utils.parallel.WorkerPool`) is closed — on normal exit,
  on exceptions, and on SIGINT (``KeyboardInterrupt`` unwinds the ``with``
  block like any exception);
* a plane that is garbage-collected or still alive at interpreter exit is
  cleaned up by its ``weakref.finalize`` guard, so no segment survives the
  owning process;
* worker-side attachments are unregistered from the ``resource_tracker``
  (see :func:`_attach_segment`), so a worker's exit neither unlinks a
  segment the parent still serves nor warns about "leaked" memory.

Workers cache attachments per segment name: the first cell touching an
instance pays one ``shm_open`` + array-header rebuild, every later cell on
the same instance is a dict lookup.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Union

import numpy as np

from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapping.problem import MappingProblem

__all__ = [
    "SharedProblemHandle",
    "ProblemPlane",
    "ProblemRef",
    "resolve_problem",
]

#: Byte alignment for array starts inside a segment (numpy is happiest on
#: 16-byte boundaries; also keeps dtypes naturally aligned).
_ALIGN = 16


@dataclass(frozen=True)
class SharedProblemHandle:
    """Picklable zero-copy reference to one published problem.

    ``fields`` is the segment's wire manifest: one
    ``(name, dtype, shape, offset)`` row per array, in publication order.
    The handle is a value object — hashable, comparable, and a few hundred
    bytes on the wire regardless of instance size.
    """

    key: str
    shm_name: str
    fields: tuple[tuple[str, str, tuple[int, ...], int], ...]
    tig_name: str = ""
    res_name: str = ""


#: What experiment cells carry: a live problem (serial path — same process,
#: nothing to share) or a shared-memory handle (process-pool path).
ProblemRef = Union["MappingProblem", SharedProblemHandle]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting cleanup duty.

    On Python < 3.13 attaching registers the segment with a
    ``resource_tracker`` exactly as creating does (bpo-39959). For a
    *standalone* attacher — a process with its own tracker — that tracker
    would unlink the owner's segment when the attacher exits, so we
    unregister immediately. Pool workers, however, **share** the parent's
    tracker (the fd is inherited), where re-registering an existing name
    is a no-op; unregistering there would strip the parent's own entry
    and make the final unlink complain. 3.13+ has ``track=False`` for
    exactly this.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        import multiprocessing

        shm = shared_memory.SharedMemory(name=name)
        if multiprocessing.parent_process() is None:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - best-effort, platform-specific
                pass
        return shm


def _unlink_segments(segments: dict[str, shared_memory.SharedMemory]) -> None:
    """Close and unlink every segment; idempotent and exception-proof.

    Module-level so a ``weakref.finalize`` can call it after the owning
    plane object is gone.
    """
    for shm in segments.values():
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
    segments.clear()


class ProblemPlane:
    """Registry of problems published to shared memory by this process.

    One plane is owned per :class:`~repro.utils.parallel.WorkerPool`;
    :meth:`publish` is idempotent per problem object, so enqueuing many
    cells over the same instance publishes its arrays exactly once.
    """

    _seq = 0  # process-wide publication counter (keys must never collide)

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._handles: dict[int, SharedProblemHandle] = {}
        self._pinned: list[Any] = []  # keep published problems alive so id() keys stay valid
        self._closed = False
        self._finalizer = weakref.finalize(self, _unlink_segments, self._segments)

    # -- publication -------------------------------------------------------
    def publish(self, problem: "MappingProblem") -> SharedProblemHandle:
        """Copy ``problem``'s arrays into one segment; return its handle."""
        if self._closed:
            raise ValidationError("cannot publish to a closed ProblemPlane")
        cached = self._handles.get(id(problem))
        if cached is not None:
            return cached

        arrays = problem.plane_arrays()
        fields: list[tuple[str, str, tuple[int, ...], int]] = []
        offset = 0
        for name, arr in arrays.items():
            offset = _aligned(offset)
            fields.append((name, arr.dtype.str, tuple(arr.shape), offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        for (name, dtype, shape, off), arr in zip(fields, arrays.values()):
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
            view[...] = arr

        ProblemPlane._seq += 1
        handle = SharedProblemHandle(
            key=f"plane-{os.getpid()}-{ProblemPlane._seq}",
            shm_name=shm.name,
            fields=tuple(fields),
            tig_name=problem.tig.name,
            res_name=problem.resources.name,
        )
        self._segments[handle.key] = shm
        self._handles[id(problem)] = handle
        self._pinned.append(problem)
        return handle

    # -- lifecycle ---------------------------------------------------------
    @property
    def n_published(self) -> int:
        """Number of live segments this plane owns."""
        return len(self._segments)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unlink every owned segment. Idempotent."""
        self._closed = True
        self._handles.clear()
        self._pinned.clear()
        self._finalizer()  # runs _unlink_segments exactly once

    def __enter__(self) -> "ProblemPlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- worker side ------------------------------------------------------------

#: Per-process attachment cache: segment key -> (segment, rebuilt problem).
#: The SharedMemory object must stay referenced or its mapping is freed.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, "MappingProblem"]] = {}


def resolve_problem(ref: ProblemRef) -> "MappingProblem":
    """The problem behind a cell's reference, attaching if it is a handle.

    Live problems pass through untouched (the serial path ships the object
    itself). Handles are attached once per process and cached, so repeated
    cells on one instance share a single zero-copy reconstruction.
    """
    from repro.mapping.problem import MappingProblem

    if isinstance(ref, MappingProblem):
        return ref
    if not isinstance(ref, SharedProblemHandle):
        raise ValidationError(
            f"problem ref must be a MappingProblem or SharedProblemHandle, "
            f"got {type(ref).__name__}"
        )
    cached = _ATTACHED.get(ref.key)
    if cached is not None:
        return cached[1]
    shm = _attach_segment(ref.shm_name)
    arrays: dict[str, np.ndarray] = {}
    for name, dtype, shape, offset in ref.fields:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        view.setflags(write=False)
        arrays[name] = view
    problem = MappingProblem.from_plane_arrays(
        arrays, tig_name=ref.tig_name, res_name=ref.res_name
    )
    _ATTACHED[ref.key] = (shm, problem)
    return problem
