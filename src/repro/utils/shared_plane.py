"""The shared-memory problem plane: publish instances once, attach zero-copy.

Suite-scale dispatch used to pickle every :class:`MappingProblem` — graphs,
edge lists and the dense O(n²) communication-cost matrix — into **every**
cell task shipped to a worker. The plane inverts that: the parent publishes
each instance's numeric arrays into one ``multiprocessing.shared_memory``
segment, workers attach by name and rebuild the problem as read-only views
over the same physical pages, and a cell task shrinks to a
``(problem handle, solver spec, seed)`` tuple a few hundred bytes long.

Lifecycle guarantees (the leak tests in ``tests/utils`` pin all three):

* segments are unlinked when the owning :class:`ProblemPlane` (usually via
  :class:`repro.utils.parallel.WorkerPool`) is closed — on normal exit,
  on exceptions, and on SIGINT (``KeyboardInterrupt`` unwinds the ``with``
  block like any exception);
* a plane that is garbage-collected or still alive at interpreter exit is
  cleaned up by its ``weakref.finalize`` guard, so no segment survives the
  owning process;
* worker-side attachments are unregistered from the ``resource_tracker``
  (see :func:`_attach_segment`), so a worker's exit neither unlinks a
  segment the parent still serves nor warns about "leaked" memory.

Workers cache attachments per segment name: the first cell touching an
instance pays one ``shm_open`` + array-header rebuild, every later cell on
the same instance is a dict lookup.
"""

from __future__ import annotations

import os
import time
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Union

import numpy as np

from repro.exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapping.problem import MappingProblem

__all__ = [
    "SharedProblemHandle",
    "ProblemPlane",
    "ProblemRef",
    "resolve_problem",
    "HeartbeatBoard",
    "mark_heartbeat",
]

#: Byte alignment for array starts inside a segment (numpy is happiest on
#: 16-byte boundaries; also keeps dtypes naturally aligned).
_ALIGN = 16


@dataclass(frozen=True)
class SharedProblemHandle:
    """Picklable zero-copy reference to one published problem.

    ``fields`` is the segment's wire manifest: one
    ``(name, dtype, shape, offset)`` row per array, in publication order.
    The handle is a value object — hashable, comparable, and a few hundred
    bytes on the wire regardless of instance size.
    """

    key: str
    shm_name: str
    fields: tuple[tuple[str, str, tuple[int, ...], int], ...]
    tig_name: str = ""
    res_name: str = ""


#: What experiment cells carry: a live problem (serial path — same process,
#: nothing to share) or a shared-memory handle (process-pool path).
ProblemRef = Union["MappingProblem", SharedProblemHandle]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


#: Segment names this process created and still owns. The serial tail of
#: a degraded dispatch makes the *owner* attach its own segments through
#: handles; it must keep its tracker entry or the final unlink would
#: unregister a second time (tracker-side KeyError noise).
_OWNED_NAMES: set[str] = set()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting cleanup duty.

    On Python < 3.13 attaching registers the segment with a
    ``resource_tracker`` exactly as creating does (bpo-39959). For a
    *standalone* attacher — a process with its own tracker — that tracker
    would unlink the owner's segment when the attacher exits, so we
    unregister immediately. Pool workers, however, **share** the parent's
    tracker (the fd is inherited), where re-registering an existing name
    is a no-op; unregistering there would strip the parent's own entry
    and make the final unlink complain. The same applies when the owner
    itself re-attaches by name (serial-tail dispatch): its single tracker
    entry must survive until unlink. 3.13+ has ``track=False`` for
    exactly this.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        import multiprocessing

        shm = shared_memory.SharedMemory(name=name)
        if (
            multiprocessing.parent_process() is None
            and name not in _OWNED_NAMES
        ):
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(_tracker_name(shm), "shared_memory")
            except Exception:  # pragma: no cover - best-effort, platform-specific
                pass
        return shm


def _tracker_name(shm: shared_memory.SharedMemory) -> str:
    """The key ``resource_tracker`` knows ``shm`` by, from public attributes.

    On POSIX the segment registers under its slash-prefixed OS name while
    the public :attr:`~multiprocessing.shared_memory.SharedMemory.name`
    property strips the slash; unregistering by the stripped form is a
    silent no-op (the tracker's cache ``discard`` misses) and the bpo-39959
    misbehaviour comes back. Re-derive the registered form instead of
    reaching into the private ``_name`` attribute.
    """
    name = shm.name
    if os.name == "posix" and not name.startswith("/"):
        return "/" + name
    return name


def _unlink_segments(segments: dict[str, shared_memory.SharedMemory]) -> None:
    """Close and unlink every segment; idempotent and exception-proof.

    Module-level so a ``weakref.finalize`` can call it after the owning
    plane object is gone.
    """
    for shm in segments.values():
        _OWNED_NAMES.discard(shm.name)
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
    segments.clear()


class ProblemPlane:
    """Registry of problems published to shared memory by this process.

    One plane is owned per :class:`~repro.utils.parallel.WorkerPool`;
    :meth:`publish` is idempotent per problem object, so enqueuing many
    cells over the same instance publishes its arrays exactly once.
    """

    _seq = 0  # process-wide publication counter (keys must never collide)

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._handles: dict[int, SharedProblemHandle] = {}
        self._pinned: list[Any] = []  # keep published problems alive so id() keys stay valid
        self._closed = False
        self._finalizer = weakref.finalize(self, _unlink_segments, self._segments)

    # -- publication -------------------------------------------------------
    def publish(self, problem: "MappingProblem") -> SharedProblemHandle:
        """Copy ``problem``'s arrays into one segment; return its handle."""
        if self._closed:
            raise ValidationError("cannot publish to a closed ProblemPlane")
        cached = self._handles.get(id(problem))
        if cached is not None:
            return cached

        arrays = problem.plane_arrays()
        fields: list[tuple[str, str, tuple[int, ...], int]] = []
        offset = 0
        for name, arr in arrays.items():
            offset = _aligned(offset)
            fields.append((name, arr.dtype.str, tuple(arr.shape), offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        _OWNED_NAMES.add(shm.name)
        for (name, dtype, shape, off), arr in zip(fields, arrays.values()):
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
            view[...] = arr

        ProblemPlane._seq += 1
        handle = SharedProblemHandle(
            key=f"plane-{os.getpid()}-{ProblemPlane._seq}",
            shm_name=shm.name,
            fields=tuple(fields),
            tig_name=problem.tig.name,
            res_name=problem.resources.name,
        )
        self._segments[handle.key] = shm
        self._handles[id(problem)] = handle
        self._pinned.append(problem)
        return handle

    # -- lifecycle ---------------------------------------------------------
    @property
    def n_published(self) -> int:
        """Number of live segments this plane owns."""
        return len(self._segments)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unlink every owned segment. Idempotent."""
        self._closed = True
        self._handles.clear()
        self._pinned.clear()
        self._finalizer()  # runs _unlink_segments exactly once

    def __enter__(self) -> "ProblemPlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- the heartbeat board ------------------------------------------------------


class HeartbeatBoard:
    """Shared per-cell liveness board for fault-tolerant dispatch.

    One ``(n_cells, 3)`` float64 array in shared memory — columns are
    ``[monotonic start time, worker pid, attempt index]`` per cell. A
    worker stamps its row when it *begins* a cell attempt; the parent's
    deadline monitor reads the board to (a) find cells that started but
    never finished (they died with their worker and deserve a retry, while
    still-queued cells did not consume an attempt) and (b) kill the worker
    whose cell ran past its deadline. ``CLOCK_MONOTONIC`` is system-wide on
    the platforms the fabric forks on, so parent/worker stamps compare
    directly. These timestamps steer scheduling only — they can never reach
    a result record.

    The parent creates and unlinks the board per dispatch; workers attach
    by name through :func:`mark_heartbeat`'s per-process cache.
    """

    _SLOTS = 3  # monotonic start, worker pid, attempt index

    def __init__(
        self, shm: shared_memory.SharedMemory, n_cells: int, *, owner: bool
    ) -> None:
        self.n_cells = n_cells
        self._shm = shm
        self._owner = owner
        self._board = np.ndarray((n_cells, self._SLOTS), dtype=np.float64, buffer=shm.buf)
        if owner:
            self._board[...] = 0.0

    @classmethod
    def create(cls, n_cells: int) -> "HeartbeatBoard":
        """Allocate a zeroed board for ``n_cells`` (parent side)."""
        if n_cells < 1:
            raise ValidationError(f"heartbeat board needs >= 1 cell, got {n_cells}")
        nbytes = n_cells * cls._SLOTS * 8
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        _OWNED_NAMES.add(shm.name)
        return cls(shm, n_cells, owner=True)

    @classmethod
    def attach(cls, name: str, n_cells: int) -> "HeartbeatBoard":
        """Attach to an existing board by segment name (worker side)."""
        return cls(_attach_segment(name), n_cells, owner=False)

    @property
    def name(self) -> str:
        """The shared-memory segment name workers attach by."""
        return self._shm.name

    # -- worker side -------------------------------------------------------
    def mark(self, index: int, attempt: int) -> None:
        """Stamp cell ``index`` as started by this process for ``attempt``.

        The start time is written last: a non-zero start is the parent's
        signal that pid and attempt are already valid for this row.
        """
        row = self._board[index]
        row[1] = float(os.getpid())
        row[2] = float(attempt)
        row[0] = time.monotonic()  # repro: noqa[wallclock] -- liveness stamp for deadline monitoring; never reaches results

    # -- parent side -------------------------------------------------------
    def started_at(self, index: int, attempt: int) -> float:
        """Monotonic start time of ``attempt`` on cell ``index`` (0.0 if unstarted).

        A stale stamp from an earlier attempt reads as "not started": the
        row must carry the queried attempt index to count.
        """
        row = self._board[index]
        if row[0] > 0.0 and int(row[2]) == attempt:
            return float(row[0])
        return 0.0

    def pid(self, index: int) -> int:
        """The pid that last stamped cell ``index`` (0 if none)."""
        return int(self._board[index, 1])

    def close(self) -> None:
        """Release the mapping; the owner also unlinks the segment."""
        board = self.__dict__.pop("_board", None)
        if board is None:
            return
        del board
        if self._owner:
            _OWNED_NAMES.discard(self._shm.name)
        try:
            self._shm.close()
            if self._owner:
                self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


#: Per-process heartbeat attachment cache: segment name -> board.
_HB_ATTACHED: dict[str, HeartbeatBoard] = {}


def mark_heartbeat(name: str, n_cells: int, index: int, attempt: int) -> None:
    """Worker-side entry: stamp a cell attempt on the named board.

    Attaches on first use and caches per process, so every later stamp is
    one ndarray write. Best-effort by design: a board the parent already
    tore down (or a platform without shared memory) must degrade to "no
    heartbeat", never break the cell itself.
    """
    try:
        board = _HB_ATTACHED.get(name)
        if board is None:
            board = _HB_ATTACHED[name] = HeartbeatBoard.attach(name, n_cells)
        board.mark(index, attempt)
    except Exception:  # pragma: no cover - platform-specific degradation
        pass


# -- worker side ------------------------------------------------------------

#: Per-process attachment cache: segment key -> (segment, rebuilt problem).
#: The SharedMemory object must stay referenced or its mapping is freed.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, "MappingProblem"]] = {}


def resolve_problem(ref: ProblemRef) -> "MappingProblem":
    """The problem behind a cell's reference, attaching if it is a handle.

    Live problems pass through untouched (the serial path ships the object
    itself). Handles are attached once per process and cached, so repeated
    cells on one instance share a single zero-copy reconstruction.
    """
    from repro.mapping.problem import MappingProblem

    if isinstance(ref, MappingProblem):
        return ref
    if not isinstance(ref, SharedProblemHandle):
        raise ValidationError(
            f"problem ref must be a MappingProblem or SharedProblemHandle, "
            f"got {type(ref).__name__}"
        )
    cached = _ATTACHED.get(ref.key)
    if cached is not None:
        return cached[1]
    shm = _attach_segment(ref.shm_name)
    arrays: dict[str, np.ndarray] = {}
    for name, dtype, shape, offset in ref.fields:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        view.setflags(write=False)
        arrays[name] = view
    problem = MappingProblem.from_plane_arrays(
        arrays, tig_name=ref.tig_name, res_name=ref.res_name
    )
    _ATTACHED[ref.key] = (shm, problem)
    return problem
