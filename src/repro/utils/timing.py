"""Wall-clock timing used to measure *mapping time* (the paper's MT column).

The paper reports two costs per heuristic: the quality of the produced
mapping (ET, in abstract units) and the wall-clock seconds the heuristic
itself took (MT). :class:`Stopwatch` provides the measurement;
:class:`TimingRecord` is the value object carried through result tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Callable, TypeVar

__all__ = ["Stopwatch", "TimingRecord", "time_call", "utc_stamp"]

T = TypeVar("T")


def utc_stamp() -> str:
    """The one sanctioned wall-clock *timestamp* in the library.

    Every ``generated`` field and run timestamp (run-store manifests,
    benchmark reports, perf-history samples) routes through this helper so
    provenance stamps are uniform (UTC, second precision, ISO 8601 with a
    ``Z`` suffix) and the wallclock lint debt stays at exactly one call
    site. Timestamps are provenance only — they must never feed back into
    a reported result.
    """
    now = datetime.now(timezone.utc)  # repro: noqa[wallclock] sole provenance stamp; results only carry Stopwatch durations
    return now.strftime("%Y-%m-%dT%H:%M:%SZ")


@dataclass(frozen=True)
class TimingRecord:
    """Elapsed wall-clock seconds for one labelled measurement."""

    label: str
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"elapsed seconds must be >= 0, got {self.seconds}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.label}: {self.seconds:.3f}s"


class Stopwatch:
    """Start/stop/lap stopwatch on :func:`time.perf_counter`.

    Can be used as a context manager::

        with Stopwatch() as sw:
            run_heuristic()
        print(sw.elapsed)

    or manually with :meth:`start` / :meth:`stop`. :meth:`lap` records named
    intermediate durations (since the previous lap) for phase breakdowns.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0
        self._last_lap: float | None = None
        self.laps: list[TimingRecord] = []

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "Stopwatch":
        """Start (or resume) timing. Idempotent while running."""
        if self._start is None:
            self._start = time.perf_counter()
            if self._last_lap is None:
                self._last_lap = self._start
        return self

    def stop(self) -> float:
        """Stop timing and return total accumulated elapsed seconds."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def reset(self) -> None:
        """Forget all accumulated time and laps."""
        self._start = None
        self._elapsed = 0.0
        self._last_lap = None
        self.laps.clear()

    # -- measurement -------------------------------------------------------
    @property
    def running(self) -> bool:
        """True while the stopwatch is accumulating time."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Accumulated seconds, including the in-flight interval if running."""
        extra = (time.perf_counter() - self._start) if self._start is not None else 0.0
        return self._elapsed + extra

    def lap(self, label: str) -> TimingRecord:
        """Record the time since the previous lap (or start) under ``label``."""
        now = time.perf_counter()
        ref = self._last_lap if self._last_lap is not None else now
        rec = TimingRecord(label=label, seconds=max(0.0, now - ref))
        self._last_lap = now
        self.laps.append(rec)
        return rec

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def time_call(fn: Callable[..., T], *args: Any, **kwargs: Any) -> tuple[T, float]:
    """Call ``fn(*args, **kwargs)`` and return ``(result, elapsed_seconds)``."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0
