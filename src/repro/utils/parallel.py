"""The persistent execution fabric for embarrassingly parallel sweeps.

Suite runs (sizes × pairs × heuristics × repetitions) are independent of
each other, so they parallelise trivially across processes. Historically
every dispatch spun up a fresh ``ProcessPoolExecutor`` and pickled the full
problem graphs into each task; at suite scale the fork/warm-up and
serialization overhead dominates wall-clock long before the solvers do.
This module replaces that with :class:`WorkerPool` — a warm, reusable pool
that serves many map calls per lifetime, owns a shared-memory problem plane
(:mod:`repro.utils.shared_plane`) so instances are published once instead
of pickled per cell, and schedules straggler-prone cells first
(cost-weighted longest-processing-time-first with per-cell futures).

:func:`parallel_map` remains as the one-shot convenience wrapper — exact
same public signature and serial-fallback semantics as before, now a thin
shim over a single-use :class:`WorkerPool`.

Tasks must be picklable top-level callables; per-task arguments should
carry their own seeds (see :class:`repro.utils.rng.RngStreams`) so results
are identical regardless of worker count — a property the tests assert.
This module is the only place in the library allowed to construct a raw
``ProcessPoolExecutor`` (the ``parallel-safety`` lint rule enforces it).
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro.exceptions import ConfigurationError, ValidationError, WorkerPoolError
from repro.utils.shared_plane import ProblemPlane, ProblemRef

__all__ = ["WorkerPool", "parallel_map", "default_worker_count"]

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count() -> int:
    """The fabric-wide worker count: ``REPRO_WORKERS`` if set, else CPUs - 1.

    The environment override lets one shell line repin every sweep in a
    session (CI pins ``REPRO_WORKERS=2`` for determinism-under-parallelism
    tests; a dedicated box can claim every core). Always at least 1.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WORKERS must be a positive integer, got {raw!r}"
            ) from None
        if value < 1:
            raise ConfigurationError(f"REPRO_WORKERS must be >= 1, got {value}")
        return value
    return max(1, (os.cpu_count() or 1) - 1)


def _shutdown_executor(executor: ProcessPoolExecutor | None) -> None:
    """Module-level shutdown helper usable by a ``weakref.finalize`` guard."""
    if executor is not None:
        executor.shutdown(wait=True, cancel_futures=True)


class WorkerPool:
    """A warm process pool plus shared-memory problem plane.

    One pool serves arbitrarily many :meth:`map` calls; workers fork once
    and stay warm, so successive dispatches pay queue latency instead of
    executor construction. ``n_workers <= 1`` turns every operation into
    its in-process serial equivalent — no forks, no pickling, no shared
    memory — which keeps single-CPU hosts and debug sessions exactly as
    deterministic and steppable as before.

    Use as a context manager (or call :meth:`close`); either way the plane's
    segments are unlinked on normal exit, on exceptions and on SIGINT, and a
    ``weakref.finalize`` guard covers pools abandoned without closing.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = default_worker_count() if n_workers is None else int(n_workers)
        self._executor: ProcessPoolExecutor | None = None
        self._plane = ProblemPlane()
        self._closed = False

    # -- introspection -----------------------------------------------------
    @property
    def is_parallel(self) -> bool:
        """True when map calls actually cross process boundaries."""
        return self.n_workers > 1

    @property
    def closed(self) -> bool:
        return self._closed

    def worker_pids(self) -> list[int]:
        """PIDs of live worker processes (empty before the first dispatch)."""
        if self._executor is None:
            return []
        return list(self._executor._processes)

    # -- the problem plane -------------------------------------------------
    def publish_problem(self, problem) -> ProblemRef:
        """Publish a problem for zero-copy worker access; returns the cell ref.

        On the serial path the problem itself is returned — the "workers"
        are this process, so sharing memory with them is a no-op. Parallel
        pools return a :class:`~repro.utils.shared_plane.SharedProblemHandle`
        (idempotent per problem object: the arrays are written once no
        matter how many cells reference them).
        """
        if self._closed:
            raise WorkerPoolError("cannot publish on a closed WorkerPool")
        if not self.is_parallel:
            return problem
        return self._plane.publish(problem)

    # -- dispatch ----------------------------------------------------------
    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        chunksize: int = 1,
        weight: Callable[[T], float] | None = None,
    ) -> list[R]:
        """Map ``fn`` over ``items``; results always in input order.

        With ``weight`` the pool runs straggler-aware LPT scheduling: one
        future per item, submitted heaviest-first, so the longest cells
        start immediately and the tail of a mixed-size sweep collapses
        (FIFO chunking leaves workers idle behind whichever chunk drew the
        big-``n`` cells last). Weights order execution only — results are
        reordered to input order, so they cannot influence any value.

        Without ``weight`` the call is a plain FIFO ``Executor.map`` with
        ``chunksize``. Exceptions from ``fn`` propagate to the caller (the
        first failing item in input order, as with ``Executor.map``); dead
        workers surface as :class:`WorkerPoolError` rather than a hang.
        """
        if chunksize < 1:
            raise ValidationError(f"chunksize must be >= 1, got {chunksize}")
        if self._closed:
            raise WorkerPoolError("cannot map on a closed WorkerPool")
        item_list: Sequence[T] = list(items)
        if not self.is_parallel or len(item_list) <= 1:
            return [fn(item) for item in item_list]
        executor = self._ensure_executor()
        try:
            if weight is None:
                return list(executor.map(fn, item_list, chunksize=chunksize))
            return self._map_lpt(executor, fn, item_list, weight)
        except BrokenProcessPool as exc:
            raise WorkerPoolError(
                f"worker pool died mid-dispatch ({self.n_workers} workers): "
                f"{exc}; results for this call are lost — rerun, or use "
                "n_workers=1 to diagnose in-process"
            ) from exc

    @staticmethod
    def _map_lpt(
        executor: ProcessPoolExecutor,
        fn: Callable[[T], R],
        item_list: Sequence[T],
        weight: Callable[[T], float],
    ) -> list[R]:
        """Per-item futures, heaviest submitted first, gathered in input order."""
        order = sorted(
            range(len(item_list)),
            key=lambda i: (-float(weight(item_list[i])), i),
        )
        futures: dict[int, Future] = {i: executor.submit(fn, item_list[i]) for i in order}
        results: list[R] = []
        try:
            for i in range(len(item_list)):
                results.append(futures[i].result())
        except BaseException:
            for fut in futures.values():
                fut.cancel()
            raise
        return results

    # -- lifecycle ---------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Start the parent's resource tracker *before* forking workers.
            # Workers must inherit its fd: a worker whose first shared-memory
            # attach finds no tracker spawns a private one that never hears
            # the parent's unlink and cries "leaked" at shutdown. The first
            # publish starts it implicitly, but this pool may well dispatch
            # plane-free work (suite generation) before anything is published.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - platform-specific
                pass
            self._executor = ProcessPoolExecutor(max_workers=self.n_workers)
            self._exec_finalizer = weakref.finalize(
                self, _shutdown_executor, self._executor
            )
        return self._executor

    def close(self) -> None:
        """Shut workers down, then unlink every published segment. Idempotent.

        Ordered so no worker can outlive the segments it may be reading.
        """
        if self._closed:
            return
        self._closed = True
        try:
            _shutdown_executor(self._executor)
        finally:
            self._executor = None
            self._plane.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "warm" if self._executor else "cold"
        return (
            f"WorkerPool(n_workers={self.n_workers}, {state}, "
            f"published={self._plane.n_published})"
        )


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    n_workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    Results are returned in input order. ``n_workers=None`` uses
    :func:`default_worker_count`; ``n_workers <= 1`` runs serially in this
    process (no pickling requirements, exact same semantics) — the default
    on single-CPU hosts, keeping behaviour deterministic and debuggable.

    Exceptions raised by ``fn`` propagate to the caller (the first failing
    item's exception, as with ``Executor.map``). This is the one-shot
    convenience form; callers dispatching more than once should hold a
    :class:`WorkerPool` open and amortize the worker warm-up.
    """
    if chunksize < 1:
        raise ValidationError(f"chunksize must be >= 1, got {chunksize}")
    workers = default_worker_count() if n_workers is None else n_workers
    item_list: Sequence[T] = list(items)
    if workers <= 1 or len(item_list) <= 1:
        return [fn(item) for item in item_list]
    with WorkerPool(workers) as pool:
        return pool.map(fn, item_list, chunksize=chunksize)
