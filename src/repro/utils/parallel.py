"""Parallel map utilities for embarrassingly parallel experiment sweeps.

Suite runs (sizes × pairs × heuristics × repetitions) are independent of
each other, so they parallelise trivially across processes. This module
provides :func:`parallel_map` — a ``ProcessPoolExecutor`` map with ordered
results, a serial fallback (``n_workers <= 1`` or single-CPU hosts), and
chunking — following the HPC guidance of preferring coarse-grained process
parallelism for CPU-bound numpy work (the GIL rules out threads here).

Tasks must be picklable top-level callables; per-task arguments should
carry their own seeds (see :class:`repro.utils.rng.RngStreams`) so results
are identical regardless of worker count — a property the tests assert.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.exceptions import ValidationError

__all__ = ["parallel_map", "default_worker_count"]

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count() -> int:
    """A sensible worker count: CPUs - 1, at least 1."""
    return max(1, (os.cpu_count() or 1) - 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    n_workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    Results are returned in input order. ``n_workers=None`` uses
    :func:`default_worker_count`; ``n_workers <= 1`` runs serially in this
    process (no pickling requirements, exact same semantics) — the default
    on single-CPU hosts, keeping behaviour deterministic and debuggable.

    Exceptions raised by ``fn`` propagate to the caller (the first failing
    item's exception, as with ``Executor.map``).
    """
    if chunksize < 1:
        raise ValidationError(f"chunksize must be >= 1, got {chunksize}")
    workers = default_worker_count() if n_workers is None else n_workers
    item_list: Sequence[T] = list(items)
    if workers <= 1 or len(item_list) <= 1:
        return [fn(item) for item in item_list]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, item_list, chunksize=chunksize))
