"""The persistent execution fabric for embarrassingly parallel sweeps.

Suite runs (sizes × pairs × heuristics × repetitions) are independent of
each other, so they parallelise trivially across processes. Historically
every dispatch spun up a fresh ``ProcessPoolExecutor`` and pickled the full
problem graphs into each task; at suite scale the fork/warm-up and
serialization overhead dominates wall-clock long before the solvers do.
This module replaces that with :class:`WorkerPool` — a warm, reusable pool
that serves many map calls per lifetime, owns a shared-memory problem plane
(:mod:`repro.utils.shared_plane`) so instances are published once instead
of pickled per cell, and schedules straggler-prone cells first
(cost-weighted longest-processing-time-first with per-cell futures).

:func:`parallel_map` remains as the one-shot convenience wrapper — exact
same public signature and serial-fallback semantics as before, now a thin
shim over a single-use :class:`WorkerPool`.

Tasks must be picklable top-level callables; per-task arguments should
carry their own seeds (see :class:`repro.utils.rng.RngStreams`) so results
are identical regardless of worker count — a property the tests assert.
This module is the only place in the library allowed to construct a raw
``ProcessPoolExecutor`` (the ``parallel-safety`` lint rule enforces it).
"""

from __future__ import annotations

import os
import signal
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.exceptions import ConfigurationError, ValidationError, WorkerPoolError
from repro.utils.faults import inject_fault
from repro.utils.shared_plane import (
    HeartbeatBoard,
    ProblemPlane,
    ProblemRef,
    mark_heartbeat,
)

__all__ = [
    "WorkerPool",
    "parallel_map",
    "default_worker_count",
    "RetryPolicy",
    "CellFailure",
    "SalvageReport",
]

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count() -> int:
    """The fabric-wide worker count: ``REPRO_WORKERS`` if set, else CPUs - 1.

    The environment override lets one shell line repin every sweep in a
    session (CI pins ``REPRO_WORKERS=2`` for determinism-under-parallelism
    tests; a dedicated box can claim every core). Always at least 1.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WORKERS must be a positive integer, got {raw!r}"
            ) from None
        if value < 1:
            raise ConfigurationError(f"REPRO_WORKERS must be >= 1, got {value}")
        return value
    return max(1, (os.cpu_count() or 1) - 1)


def _shutdown_executor(executor: ProcessPoolExecutor | None) -> None:
    """Module-level shutdown helper usable by a ``weakref.finalize`` guard."""
    if executor is not None:
        executor.shutdown(wait=True, cancel_futures=True)


# -- fault tolerance ---------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How :meth:`WorkerPool.map_salvage` survives failing cells and workers.

    ``max_retries`` bounds the re-dispatches of any one cell beyond its
    first attempt — cells are pure ``(handle, spec, seed)`` functions, so a
    replay after a worker death is bit-identical to the lost attempt.
    ``cell_timeout`` is a per-attempt deadline in seconds (``None`` means no
    deadline): a cell whose heartbeat says it started more than this long
    ago gets its worker SIGKILLed and is treated as a consumed attempt.
    ``backoff_base`` seconds doubles per failed attempt before a retry is
    resubmitted. ``respawn_cap`` bounds executor rebuilds per pool size
    before the dispatcher degrades: halve the worker count, and below two
    workers finish the remaining cells serially in-process.
    """

    max_retries: int = 2
    cell_timeout: float | None = None
    backoff_base: float = 0.05
    respawn_cap: int = 3

    def __post_init__(self) -> None:
        if isinstance(self.max_retries, bool) or not isinstance(self.max_retries, int):
            raise ConfigurationError(
                f"max_retries must be an integer >= 0, got {self.max_retries!r}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.cell_timeout is not None and not self.cell_timeout > 0:
            raise ConfigurationError(
                f"cell_timeout must be > 0 seconds or None, got {self.cell_timeout}"
            )
        if self.backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.respawn_cap < 1:
            raise ConfigurationError(f"respawn_cap must be >= 1, got {self.respawn_cap}")

    @classmethod
    def default(cls) -> "RetryPolicy":
        """The built-in policy, with ``REPRO_MAX_RETRIES`` / ``REPRO_CELL_TIMEOUT``
        environment overrides applied when set."""
        kwargs: dict[str, Any] = {}
        raw = os.environ.get("REPRO_MAX_RETRIES", "").strip()
        if raw:
            try:
                kwargs["max_retries"] = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_MAX_RETRIES must be an integer, got {raw!r}"
                ) from None
        raw = os.environ.get("REPRO_CELL_TIMEOUT", "").strip()
        if raw:
            try:
                kwargs["cell_timeout"] = float(raw)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_CELL_TIMEOUT must be a number of seconds, got {raw!r}"
                ) from None
        return cls(**kwargs)

    def with_overrides(
        self,
        *,
        max_retries: int | None = None,
        cell_timeout: float | None = None,
    ) -> "RetryPolicy":
        """This policy with any non-``None`` override applied (CLI plumbing)."""
        policy = self
        if max_retries is not None:
            policy = replace(policy, max_retries=max_retries)
        if cell_timeout is not None:
            policy = replace(policy, cell_timeout=cell_timeout)
        return policy


@dataclass(frozen=True)
class CellFailure:
    """One cell the dispatcher could not complete, after all retries.

    ``kind`` is ``"exception"`` (the cell function raised), ``"worker-death"``
    (the worker died mid-cell, e.g. OOM-killed) or ``"timeout"`` (the cell
    ran past :attr:`RetryPolicy.cell_timeout` and its worker was killed).
    ``attempts`` counts attempts that actually started.
    """

    index: int
    kind: str
    attempts: int
    message: str


@dataclass
class SalvageReport:
    """Everything :meth:`WorkerPool.map_salvage` managed to complete.

    ``results[i]`` holds cell ``i``'s result, or ``None`` for the indices
    named in ``failures`` — the structured manifest callers attach to their
    experiment artifacts so a partially-failed sweep is still a usable,
    honestly-labelled dataset instead of a crash.
    """

    results: list
    failures: tuple[CellFailure, ...] = ()
    n_retries: int = 0
    n_respawns: int = 0
    final_workers: int = 1
    degraded_to_serial: bool = False

    @property
    def ok(self) -> bool:
        """True when every cell completed."""
        return not self.failures

    def completed(self) -> "list[tuple[int, Any]]":
        """``(index, result)`` pairs for the cells that did complete."""
        failed = {f.index for f in self.failures}
        return [(i, r) for i, r in enumerate(self.results) if i not in failed]


def _resilient_cell(task: tuple) -> Any:
    """Worker-side envelope for fault-tolerant dispatch.

    Stamps the heartbeat board (so the parent can tell started-and-died
    from never-started after a pool death, and can enforce deadlines), then
    fires any configured injected fault, then runs the real cell.
    """
    fn, item, index, attempt, board_name, n_cells = task
    mark_heartbeat(board_name, n_cells, index, attempt)
    inject_fault(index, attempt)
    return fn(item)


class WorkerPool:
    """A warm process pool plus shared-memory problem plane.

    One pool serves arbitrarily many :meth:`map` calls; workers fork once
    and stay warm, so successive dispatches pay queue latency instead of
    executor construction. ``n_workers <= 1`` turns every operation into
    its in-process serial equivalent — no forks, no pickling, no shared
    memory — which keeps single-CPU hosts and debug sessions exactly as
    deterministic and steppable as before.

    Use as a context manager (or call :meth:`close`); either way the plane's
    segments are unlinked on normal exit, on exceptions and on SIGINT, and a
    ``weakref.finalize`` guard covers pools abandoned without closing.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = default_worker_count() if n_workers is None else int(n_workers)
        self._executor: ProcessPoolExecutor | None = None
        self._plane = ProblemPlane()
        self._closed = False

    # -- introspection -----------------------------------------------------
    @property
    def is_parallel(self) -> bool:
        """True when map calls actually cross process boundaries."""
        return self.n_workers > 1

    @property
    def closed(self) -> bool:
        return self._closed

    def worker_pids(self) -> list[int]:
        """PIDs of live worker processes (empty before the first dispatch)."""
        if self._executor is None:
            return []
        return list(self._executor._processes)

    # -- the problem plane -------------------------------------------------
    def publish_problem(self, problem) -> ProblemRef:
        """Publish a problem for zero-copy worker access; returns the cell ref.

        On the serial path the problem itself is returned — the "workers"
        are this process, so sharing memory with them is a no-op. Parallel
        pools return a :class:`~repro.utils.shared_plane.SharedProblemHandle`
        (idempotent per problem object: the arrays are written once no
        matter how many cells reference them).
        """
        if self._closed:
            raise WorkerPoolError("cannot publish on a closed WorkerPool")
        if not self.is_parallel:
            return problem
        return self._plane.publish(problem)

    # -- dispatch ----------------------------------------------------------
    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        chunksize: int = 1,
        weight: Callable[[T], float] | None = None,
    ) -> list[R]:
        """Map ``fn`` over ``items``; results always in input order.

        With ``weight`` the pool runs straggler-aware LPT scheduling: one
        future per item, submitted heaviest-first, so the longest cells
        start immediately and the tail of a mixed-size sweep collapses
        (FIFO chunking leaves workers idle behind whichever chunk drew the
        big-``n`` cells last). Weights order execution only — results are
        reordered to input order, so they cannot influence any value.

        Without ``weight`` the call is a plain FIFO ``Executor.map`` with
        ``chunksize``. Exceptions from ``fn`` propagate to the caller (the
        first failing item in input order, as with ``Executor.map``); dead
        workers surface as :class:`WorkerPoolError` rather than a hang.
        """
        if chunksize < 1:
            raise ValidationError(f"chunksize must be >= 1, got {chunksize}")
        if self._closed:
            raise WorkerPoolError("cannot map on a closed WorkerPool")
        item_list: Sequence[T] = list(items)
        if not self.is_parallel or len(item_list) <= 1:
            return [fn(item) for item in item_list]
        executor = self._ensure_executor()
        try:
            if weight is None:
                return list(executor.map(fn, item_list, chunksize=chunksize))
            return self._map_lpt(executor, fn, item_list, weight)
        except BrokenProcessPool as exc:
            raise WorkerPoolError(
                f"worker pool died mid-dispatch ({self.n_workers} workers): "
                f"{exc}; results for this call are lost — rerun, or use "
                "n_workers=1 to diagnose in-process"
            ) from exc

    @staticmethod
    def _map_lpt(
        executor: ProcessPoolExecutor,
        fn: Callable[[T], R],
        item_list: Sequence[T],
        weight: Callable[[T], float],
    ) -> list[R]:
        """Per-item futures, heaviest submitted first, gathered in input order."""
        order = sorted(
            range(len(item_list)),
            key=lambda i: (-float(weight(item_list[i])), i),
        )
        futures: dict[int, Future] = {i: executor.submit(fn, item_list[i]) for i in order}
        results: list[R] = []
        try:
            for i in range(len(item_list)):
                results.append(futures[i].result())
        except BaseException:
            for fut in futures.values():
                fut.cancel()
            raise
        return results

    # -- fault-tolerant dispatch -------------------------------------------
    def map_salvage(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        weight: Callable[[T], float] | None = None,
        policy: RetryPolicy | None = None,
    ) -> SalvageReport:
        """Like :meth:`map`, but failures cost cells, not the sweep.

        Every cell gets bounded retries with exponential backoff (cells are
        pure functions of their task tuple, so a replay is bit-identical to
        the attempt that was lost); a dead worker pool is respawned instead
        of aborting the call, degrading to fewer workers and finally to
        serial in-process execution if deaths persist; a cell that runs past
        ``policy.cell_timeout`` has its worker killed and its deadline
        recorded rather than hanging the sweep. The returned
        :class:`SalvageReport` carries completed results in input order plus
        a manifest of the cells that permanently failed.

        ``policy=None`` uses :meth:`RetryPolicy.default` (environment
        overrides included). ``weight`` orders submission heaviest-first
        exactly as in :meth:`map`, and cannot influence any result value.
        """
        if self._closed:
            raise WorkerPoolError("cannot map on a closed WorkerPool")
        resolved = policy if policy is not None else RetryPolicy.default()
        item_list: Sequence[T] = list(items)
        if not self.is_parallel or len(item_list) <= 1:
            return self._salvage_serial(fn, item_list)
        return _ResilientDispatch(self, fn, item_list, weight, resolved).run()

    def _salvage_serial(
        self, fn: Callable[[T], R], item_list: Sequence[T]
    ) -> SalvageReport:
        """In-process salvage: one attempt per cell, exceptions become manifest
        entries. Retrying a pure function in the same process cannot change
        its outcome, so retries would only hide nondeterminism."""
        results: list = [None] * len(item_list)
        failures: list[CellFailure] = []
        for i, item in enumerate(item_list):
            try:
                results[i] = fn(item)
            except Exception as exc:
                failures.append(
                    CellFailure(
                        index=i,
                        kind="exception",
                        attempts=1,
                        message=f"{type(exc).__name__}: {exc}",
                    )
                )
        return SalvageReport(
            results=results, failures=tuple(failures), final_workers=self.n_workers
        )

    # -- lifecycle ---------------------------------------------------------
    def _discard_executor(self) -> None:
        """Drop a (typically broken) executor so the next dispatch forks fresh.

        The finalizer guard is detached first — it references the old
        executor and would otherwise block interpreter exit waiting on
        processes that are already gone.
        """
        if self._executor is None:
            return
        finalizer = getattr(self, "_exec_finalizer", None)
        if finalizer is not None:
            finalizer.detach()
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Start the parent's resource tracker *before* forking workers.
            # Workers must inherit its fd: a worker whose first shared-memory
            # attach finds no tracker spawns a private one that never hears
            # the parent's unlink and cries "leaked" at shutdown. The first
            # publish starts it implicitly, but this pool may well dispatch
            # plane-free work (suite generation) before anything is published.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - platform-specific
                pass
            self._executor = ProcessPoolExecutor(max_workers=self.n_workers)
            self._exec_finalizer = weakref.finalize(
                self, _shutdown_executor, self._executor
            )
        return self._executor

    def close(self) -> None:
        """Shut workers down, then unlink every published segment. Idempotent.

        Ordered so no worker can outlive the segments it may be reading.
        """
        if self._closed:
            return
        self._closed = True
        try:
            _shutdown_executor(self._executor)
        finally:
            self._executor = None
            self._plane.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "warm" if self._executor else "cold"
        return (
            f"WorkerPool(n_workers={self.n_workers}, {state}, "
            f"published={self._plane.n_published})"
        )


class _ResilientDispatch:
    """One :meth:`WorkerPool.map_salvage` call: submit, monitor, retry, heal.

    The dispatcher drives *generations* of a process pool. Within a
    generation it submits unresolved cells (heaviest first when weighted),
    gathers completions, schedules bounded backoff retries for cells that
    raised, and SIGKILLs workers whose cells overran their deadline. When
    the pool itself breaks — an injected kill, an OOM, a deadline kill —
    it classifies every in-flight cell through the heartbeat board
    (started-and-died consumes an attempt; still-queued does not), then
    heals: respawn the executor up to ``respawn_cap`` times per size, halve
    the worker count when a size keeps dying, and finish the tail serially
    in-process once fewer than two workers remain. Failure is per-cell and
    recorded, never an aborted sweep.
    """

    def __init__(
        self,
        pool: WorkerPool,
        fn: Callable[..., Any],
        items: Sequence[Any],
        weight: Callable[[Any], float] | None,
        policy: RetryPolicy,
    ) -> None:
        self.pool = pool
        self.fn = fn
        self.items = items
        self.policy = policy
        n = len(items)
        self.n = n
        if weight is None:
            self.order = list(range(n))
        else:
            self.order = sorted(range(n), key=lambda i: (-float(weight(items[i])), i))
        self.board = HeartbeatBoard.create(n)
        self.results: list = [None] * n
        self.done = [False] * n
        self.attempts = [0] * n  # attempts that actually started, per cell
        self.failures: dict[int, CellFailure] = {}
        self.timed_out: set[int] = set()  # cells whose current attempt we killed
        self.inflight: dict[Future, int] = {}
        self.n_retries = 0
        self.n_respawns = 0
        self.respawns_at_size = 0
        self.degraded_to_serial = False

    # -- top level ---------------------------------------------------------
    def run(self) -> SalvageReport:
        try:
            while not self._resolved_all():
                try:
                    self._drive_generation()
                except BrokenProcessPool:
                    self._classify_after_death()
                    if self._resolved_all():
                        break
                    if not self._heal():
                        self._serial_tail()
        finally:
            self.board.close()
        return SalvageReport(
            results=self.results,
            failures=tuple(self.failures[i] for i in sorted(self.failures)),
            n_retries=self.n_retries,
            n_respawns=self.n_respawns,
            final_workers=self.pool.n_workers,
            degraded_to_serial=self.degraded_to_serial,
        )

    def _resolved_all(self) -> bool:
        return all(self.done[i] or i in self.failures for i in range(self.n))

    def _unresolved(self) -> list[int]:
        """Unresolved cells in submission (LPT) order."""
        return [i for i in self.order if not self.done[i] and i not in self.failures]

    # -- one executor generation -------------------------------------------
    def _submit(self, executor: ProcessPoolExecutor, i: int) -> None:
        task = (self.fn, self.items[i], i, self.attempts[i], self.board.name, self.n)
        self.inflight[executor.submit(_resilient_cell, task)] = i

    def _drive_generation(self) -> None:
        """Dispatch every unresolved cell on a fresh/healthy executor.

        Returns when all are resolved; raises ``BrokenProcessPool`` when the
        executor dies, leaving ``self.inflight`` populated for
        classification.
        """
        executor = self.pool._ensure_executor()
        self.inflight = {}
        for i in self._unresolved():
            self._submit(executor, i)
        retry_due: dict[int, float] = {}  # cell -> monotonic resubmission time
        while self.inflight or retry_due:
            now = time.monotonic()  # repro: noqa[wallclock] -- retry/deadline scheduling only
            for i in sorted(retry_due):
                if now >= retry_due[i]:
                    del retry_due[i]
                    self._submit(executor, i)
            done, _ = wait(
                list(self.inflight),
                timeout=self._poll_timeout(retry_due),
                return_when=FIRST_COMPLETED,
            )
            for fut in done:
                i = self.inflight[fut]
                try:
                    result = fut.result()
                except BrokenProcessPool:
                    raise  # inflight still holds every unprocessed future
                except Exception as exc:
                    del self.inflight[fut]
                    self._attempt_failed(
                        i, "exception", f"{type(exc).__name__}: {exc}", retry_due
                    )
                else:
                    del self.inflight[fut]
                    self._attempt_succeeded(i, result)
            self._enforce_deadlines()

    def _attempt_succeeded(self, i: int, result: Any) -> None:
        self.results[i] = result
        self.done[i] = True
        self.attempts[i] += 1
        self.timed_out.discard(i)

    def _attempt_failed(
        self, i: int, kind: str, message: str, retry_due: dict[int, float] | None
    ) -> None:
        """Consume one attempt; queue a backoff retry or record the failure."""
        self.attempts[i] += 1
        self.timed_out.discard(i)
        if self.attempts[i] <= self.policy.max_retries:
            self.n_retries += 1
            if retry_due is not None:
                delay = self.policy.backoff_base * (2 ** (self.attempts[i] - 1))
                retry_due[i] = time.monotonic() + delay  # repro: noqa[wallclock] -- backoff scheduling only
        else:
            self.failures[i] = CellFailure(
                index=i, kind=kind, attempts=self.attempts[i], message=message
            )

    def _poll_timeout(self, retry_due: dict[int, float]) -> float | None:
        """How long to block in ``wait``: forever when nothing needs polling."""
        candidates: list[float] = []
        if self.policy.cell_timeout is not None and self.inflight:
            candidates.append(max(0.05, min(1.0, self.policy.cell_timeout / 4.0)))
        if retry_due:
            now = time.monotonic()  # repro: noqa[wallclock] -- backoff scheduling only
            candidates.append(max(0.01, min(retry_due.values()) - now))
        return min(candidates) if candidates else None

    def _enforce_deadlines(self) -> None:
        """SIGKILL the worker of any cell past its per-attempt deadline.

        The kill breaks the pool (fork workers share a result queue), which
        routes the cell through the death-classification path as a consumed
        ``"timeout"`` attempt.
        """
        deadline = self.policy.cell_timeout
        if deadline is None:
            return
        now = time.monotonic()  # repro: noqa[wallclock] -- deadline enforcement only
        for fut, i in list(self.inflight.items()):
            if fut.done() or i in self.timed_out:
                continue
            started = self.board.started_at(i, self.attempts[i])
            if started and now - started > deadline:
                self.timed_out.add(i)
                pid = self.board.pid(i)
                if pid > 0:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except (ProcessLookupError, PermissionError):  # pragma: no cover
                        pass

    # -- pool death and healing --------------------------------------------
    def _classify_after_death(self) -> None:
        """Settle every in-flight future of a dead pool via the heartbeat.

        A future may hold a real result or a real cell exception delivered
        before the break — honour those. Otherwise the heartbeat decides:
        a row stamped with the current attempt means the cell started and
        died with its worker (a consumed ``"worker-death"`` — or
        ``"timeout"`` if we killed it — attempt); an unstamped cell was
        still queued and is resubmitted for free.
        """
        inflight, self.inflight = self.inflight, {}
        for fut, i in inflight.items():
            if self.done[i] or i in self.failures:
                continue
            try:
                result = fut.result(timeout=0)
            except FutureTimeoutError:  # pragma: no cover - defensive
                continue  # never started; resubmit without consuming an attempt
            except BrokenProcessPool as exc:
                # still queued when the pool died: free resubmit
                if self.board.started_at(i, self.attempts[i]) == 0.0:  # repro: noqa[float-equality] -- 0.0 is the board's exact "never stamped" sentinel
                    continue
                if i in self.timed_out:
                    kind = "timeout"
                    message = (
                        f"cell exceeded its {self.policy.cell_timeout}s deadline "
                        f"and its worker was killed"
                    )
                else:
                    kind = "worker-death"
                    message = f"worker died mid-cell: {exc}"
                self._attempt_failed(i, kind, message, None)
            except Exception as exc:
                self._attempt_failed(
                    i, "exception", f"{type(exc).__name__}: {exc}", None
                )
            else:
                self._attempt_succeeded(i, result)

    def _heal(self) -> bool:
        """Rebuild the executor; ``False`` means go serial instead.

        Up to ``respawn_cap`` respawns at the current size; past that the
        size is halved (deaths at a size are evidence the host cannot
        sustain it — e.g. the OOM killer culling the largest cohort), and
        below two workers parallelism has nothing left to offer.
        """
        self.pool._discard_executor()
        self.n_respawns += 1
        self.respawns_at_size += 1
        if self.respawns_at_size > self.policy.respawn_cap:
            smaller = self.pool.n_workers // 2
            if smaller < 2:
                return False
            self.pool.n_workers = smaller
            self.respawns_at_size = 0
        return True

    def _serial_tail(self) -> None:
        """Finish unresolved cells in-process: the final degradation rung.

        No fault injection fires here (the harness is worker-only), so a
        chaos plan cannot livelock the parent; pure cells still produce the
        exact results their worker attempts would have.
        """
        self.degraded_to_serial = True
        for i in range(self.n):
            if self.done[i] or i in self.failures:
                continue
            self.attempts[i] += 1
            try:
                result = self.fn(self.items[i])
            except Exception as exc:
                self.failures[i] = CellFailure(
                    index=i,
                    kind="exception",
                    attempts=self.attempts[i],
                    message=f"{type(exc).__name__}: {exc}",
                )
            else:
                self.results[i] = result
                self.done[i] = True


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    n_workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally across processes.

    Results are returned in input order. ``n_workers=None`` uses
    :func:`default_worker_count`; ``n_workers <= 1`` runs serially in this
    process (no pickling requirements, exact same semantics) — the default
    on single-CPU hosts, keeping behaviour deterministic and debuggable.

    Exceptions raised by ``fn`` propagate to the caller (the first failing
    item's exception, as with ``Executor.map``). This is the one-shot
    convenience form; callers dispatching more than once should hold a
    :class:`WorkerPool` open and amortize the worker warm-up.
    """
    if chunksize < 1:
        raise ValidationError(f"chunksize must be >= 1, got {chunksize}")
    workers = default_worker_count() if n_workers is None else n_workers
    item_list: Sequence[T] = list(items)
    if workers <= 1 or len(item_list) <= 1:
        return [fn(item) for item in item_list]
    with WorkerPool(workers) as pool:
        return pool.map(fn, item_list, chunksize=chunksize)
