"""Deterministic fault injection for the execution fabric (``REPRO_FAULTS``).

The fault-tolerance machinery in :mod:`repro.utils.parallel` — per-cell
deadlines, bounded retries, pool self-healing — is only trustworthy if its
failure paths are *exercised deterministically*. This module provides the
harness: an environment spec names exactly which dispatch cells fail, how,
and on how many attempts, so a chaos test (or the CI chaos job) can kill a
worker under cell 3, watch the pool respawn, and assert the salvaged
results are bit-identical to a fault-free run.

Spec grammar (whitespace ignored)::

    REPRO_FAULTS := clause (";" clause)*
    clause      := action "@" index ("," index)* ["*" times]
    action      := "kill" | "hang" | "raise"

Examples::

    REPRO_FAULTS="kill@3"          # SIGKILL the worker running cell 3
    REPRO_FAULTS="kill@1,5"        # ...cells 1 and 5 (two worker deaths)
    REPRO_FAULTS="hang@2"          # cell 2 sleeps past any deadline
    REPRO_FAULTS="raise@0*3"       # cell 0 raises on its first 3 attempts

Semantics, chosen so retry bit-parity is provable rather than probabilistic:

* indices refer to a cell's position in its ``map_salvage`` dispatch (the
  input order, not the LPT submission order);
* a fault fires only while ``attempt < times`` (default ``times = 1``), so
  the default retry of a killed cell deterministically succeeds — and
  because cells are pure ``(handle, spec, seed)`` functions, the retried
  result is bit-identical to the fault-free one;
* faults fire **only inside pool workers** (``multiprocessing``'s parent
  check): the serial path and the dispatcher's in-process degradation tail
  never execute a fault, so ``kill`` cannot take down the parent.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.exceptions import ConfigurationError, FaultInjectionError

__all__ = ["Fault", "FaultPlan", "inject_fault", "FAULTS_ENV", "FAULT_ACTIONS"]

#: The environment variable the harness reads.
FAULTS_ENV = "REPRO_FAULTS"

#: Recognized fault actions.
FAULT_ACTIONS = ("kill", "hang", "raise")

#: How long a "hang" fault sleeps — far past any sane cell deadline, short
#: enough that a leaked hung worker cannot outlive a CI job by much.
_HANG_SECONDS = 600.0


@dataclass(frozen=True)
class Fault:
    """One injected fault: ``action`` at dispatch cell ``index``.

    ``times`` is the number of attempts that fail: the fault fires while
    ``attempt < times`` and is silent afterwards, which makes retry
    behaviour a pure function of the spec.
    """

    index: int
    action: str
    times: int = 1


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULTS`` spec; empty plans are falsy."""

    faults: tuple[Fault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the spec grammar; raises :class:`ConfigurationError` on typos."""
        faults: list[Fault] = []
        for raw_clause in spec.split(";"):
            clause = raw_clause.strip()
            if not clause:
                continue
            action, sep, rest = clause.partition("@")
            action = action.strip()
            if not sep or action not in FAULT_ACTIONS:
                raise ConfigurationError(
                    f"bad REPRO_FAULTS clause {clause!r}: expected "
                    f"'<action>@<index>[,<index>...][*<times>]' with action in "
                    f"{FAULT_ACTIONS}"
                )
            rest, star, times_part = rest.partition("*")
            times = 1
            if star:
                try:
                    times = int(times_part.strip())
                except ValueError:
                    raise ConfigurationError(
                        f"bad REPRO_FAULTS repeat count {times_part!r} in {clause!r}"
                    ) from None
                if times < 1:
                    raise ConfigurationError(
                        f"REPRO_FAULTS repeat count must be >= 1, got {times}"
                    )
            for token in rest.split(","):
                token = token.strip()
                try:
                    index = int(token)
                except ValueError:
                    raise ConfigurationError(
                        f"bad REPRO_FAULTS cell index {token!r} in {clause!r}"
                    ) from None
                if index < 0:
                    raise ConfigurationError(
                        f"REPRO_FAULTS cell index must be >= 0, got {index}"
                    )
                faults.append(Fault(index=index, action=action, times=times))
        return cls(faults=tuple(faults))

    @classmethod
    def from_env(cls) -> "FaultPlan":
        """The plan configured in this process's environment (may be empty)."""
        return cls.parse(os.environ.get(FAULTS_ENV, ""))

    def action_for(self, index: int, attempt: int) -> str | None:
        """The action to fire for ``(cell index, attempt number)``, if any.

        The first matching clause wins, mirroring how an operator reads the
        spec left to right.
        """
        for fault in self.faults:
            if fault.index == index and attempt < fault.times:
                return fault.action
        return None


#: Parsed-plan cache keyed by the raw spec string: workers inject per cell,
#: and re-parsing an unchanged environment spec every time would be waste.
_PLAN_CACHE: dict[str, FaultPlan] = {}


def inject_fault(index: int, attempt: int) -> None:
    """Fire the configured fault for this cell attempt, if any (worker-only).

    Called by the fabric's dispatch envelope before the cell function runs.
    No-op when ``REPRO_FAULTS`` is unset, when no clause matches, or when
    this process is not a pool worker (``kill`` must never hit the parent;
    the serial degradation tail must stay fault-free so salvage always
    terminates).
    """
    spec = os.environ.get(FAULTS_ENV, "")
    if not spec:
        return
    import multiprocessing

    if multiprocessing.parent_process() is None:
        return
    plan = _PLAN_CACHE.get(spec)
    if plan is None:
        plan = _PLAN_CACHE[spec] = FaultPlan.parse(spec)
    action = plan.action_for(index, attempt)
    if action is None:
        return
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "hang":
        deadline = _HANG_SECONDS
        while deadline > 0:  # sleep in slices so SIGTERM tests stay responsive
            time.sleep(min(deadline, 1.0))
            deadline -= 1.0
    else:  # "raise"
        raise FaultInjectionError(
            f"injected fault: cell {index} raised on attempt {attempt}"
        )
