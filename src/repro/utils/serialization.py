"""JSON (de)serialization helpers for graphs, configs and experiment results.

All persistent artifacts in the library are plain JSON: human-diffable,
dependency-free, and stable across Python versions. Numpy scalars/arrays are
converted to native lists on the way out; loaders validate the payloads and
raise :class:`~repro.exceptions.SerializationError` with context on failure.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import SerializationError

__all__ = ["to_jsonable", "dump_json", "load_json"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable primitives.

    Handles numpy scalars and arrays, dataclasses, paths, sets (sorted to a
    list for determinism), and nested containers. Raises
    :class:`SerializationError` for types with no sensible JSON form.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, Path):
        return str(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        try:
            return [to_jsonable(v) for v in sorted(obj)]
        except TypeError:
            return [to_jsonable(v) for v in obj]
    raise SerializationError(f"cannot serialize object of type {type(obj).__name__}")


def dump_json(obj: Any, path: str | Path, *, indent: int = 2) -> Path:
    """Serialize ``obj`` to ``path`` as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        payload = json.dumps(to_jsonable(obj), indent=indent, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"failed to encode JSON for {path}: {exc}") from exc
    path.write_text(payload + "\n", encoding="utf-8")
    return path


def load_json(path: str | Path) -> Any:
    """Load JSON from ``path``; wraps I/O and parse errors with context."""
    path = Path(path)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise SerializationError(f"no such file: {path}") from exc
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
