"""Plain-text table rendering for the experiment harness.

The paper's deliverables are tables (Tables 1-3) and figure *series*
(Figures 7-9 are bar/line charts over the same data). The harness prints
them as aligned ASCII tables so a terminal run of ``python -m repro table1``
visually matches the paper's layout.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "render_kv_block", "format_number"]


def format_number(value: Any, *, digits: int = 3) -> str:
    """Format a cell: ints plainly, floats with ``digits`` decimals, rest via str.

    Large floats (>= 1000) are rendered with thousands grouping and no
    decimals, matching how the paper quotes execution-time units.
    """
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10000 else str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{digits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
    digits: int = 3,
    align_first_left: bool = True,
) -> str:
    """Render an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row cell values; formatted with :func:`format_number`.
    title:
        Optional title line printed above the table.
    digits:
        Decimal places for float cells.
    align_first_left:
        Left-align the first column (row labels), right-align the rest —
        the conventional layout for numeric comparison tables.
    """
    str_rows = [[format_number(c, digits=digits) for c in row] for row in rows]
    ncols = len(headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(f"row {r!r} has {len(r)} cells, expected {ncols}")
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows)) if str_rows else len(headers[j])
        for j in range(ncols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        out = []
        for j, cell in enumerate(cells):
            if j == 0 and align_first_left:
                out.append(cell.ljust(widths[j]))
            else:
                out.append(cell.rjust(widths[j]))
        return "  ".join(out).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def render_kv_block(title: str, items: dict[str, Any], *, digits: int = 3) -> str:
    """Render a ``key: value`` block (used for ANOVA summaries and configs)."""
    width = max((len(k) for k in items), default=0)
    lines = [title, "-" * max(len(title), 1)]
    for key, value in items.items():
        lines.append(f"{key.ljust(width)} : {format_number(value, digits=digits)}")
    return "\n".join(lines)
