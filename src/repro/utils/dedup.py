"""Exact duplicate-row collapsing for batched scoring.

CE iterations re-draw many identical candidate mappings once the
stochastic matrix sharpens — scoring each copy repeats the same bincount
scatter-adds. :func:`collapse_duplicate_rows` finds the unique rows of an
integer assignment batch and the inverse map that reinflates per-unique
costs back to the full batch. Because every objective in this repo is a
pure row-wise function, scoring the unique rows and gathering through the
inverse is *exact* — bit-identical to scoring the full batch.

When the row alphabet fits in 63 bits (``n_cols · log2(n_symbols) ≤ 63``)
each row is packed into a single int64 key by Horner's rule and deduped
with a 1-D :func:`numpy.unique` — roughly an order of magnitude faster
than ``np.unique(X, axis=0)``, which is kept as the general fallback.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["pack_rows", "collapse_duplicate_rows", "DedupStats"]


def pack_rows(X: np.ndarray, n_symbols: int) -> np.ndarray | None:
    """Horner-pack each row of ``X`` into one int64 key, or None.

    Keys are collision-free and ordered lexicographically when
    ``n_cols · log2(n_symbols) ≤ 63``; returns None when the alphabet
    overflows int64 (callers must fall back to row-wise comparison).
    """
    n_cols = X.shape[1]
    if n_symbols < 2 or n_cols * math.log2(n_symbols) > 63:
        return None
    key = X[:, 0].astype(np.int64, copy=True)
    for c in range(1, n_cols):
        key *= n_symbols
        key += X[:, c]
    return key


def collapse_duplicate_rows(
    X: np.ndarray, n_symbols: int
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse duplicate rows of an integer batch.

    Parameters
    ----------
    X:
        ``(N, n_cols)`` integer batch with entries in ``[0, n_symbols)``.
    n_symbols:
        Alphabet size (number of resources); bounds the per-entry values
        and decides whether the packed-key fast path is applicable.

    Returns
    -------
    ``(unique_rows, inverse)`` where ``unique_rows`` is ``(U, n_cols)``
    and ``inverse`` is ``(N,)`` with ``unique_rows[inverse] == X``
    row-for-row. ``U == N`` when all rows are distinct.
    """
    key = pack_rows(X, n_symbols)
    if key is not None:
        _, first, inverse = np.unique(key, return_index=True, return_inverse=True)
        return X[first], inverse
    unique_rows, inverse = np.unique(X, axis=0, return_inverse=True)
    return unique_rows, inverse.reshape(-1)


@dataclass
class DedupStats:
    """Running counters for a dedup-aware scoring path.

    ``hit_rate`` is the fraction of scored rows that were duplicates of an
    earlier row in their batch — the work the collapse avoided.
    """

    calls: int = 0
    total_rows: int = 0
    unique_rows: int = 0
    _history: list[float] = field(default_factory=list, repr=False)

    def record(self, n_rows: int, n_unique: int) -> None:
        """Account one collapsed batch of ``n_rows`` rows, ``n_unique`` kept."""
        self.calls += 1
        self.total_rows += int(n_rows)
        self.unique_rows += int(n_unique)
        self._history.append(1.0 - n_unique / n_rows if n_rows else 0.0)

    @property
    def hit_rate(self) -> float:
        """Overall duplicate fraction across every recorded batch."""
        if self.total_rows == 0:
            return 0.0
        return 1.0 - self.unique_rows / self.total_rows

    @property
    def per_call_rates(self) -> list[float]:
        """Collapse rate of each recorded batch, in call order."""
        return list(self._history)
