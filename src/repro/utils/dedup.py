"""Exact duplicate-row collapsing for batched scoring.

CE iterations re-draw many identical candidate mappings once the
stochastic matrix sharpens — scoring each copy repeats the same bincount
scatter-adds. :func:`collapse_duplicate_rows` finds the unique rows of an
integer assignment batch and the inverse map that reinflates per-unique
costs back to the full batch. Because every objective in this repo is a
pure row-wise function, scoring the unique rows and gathering through the
inverse is *exact* — bit-identical to scoring the full batch.

When the row alphabet fits in 63 bits (``n_cols · log2(n_symbols) ≤ 63``)
each row is packed into a single int64 key by Horner's rule and deduped
with a 1-D :func:`numpy.unique` — roughly an order of magnitude faster
than ``np.unique(X, axis=0)``. Wider alphabets split the row into a few
int64 *words* (:func:`pack_rows_words`) and dedup with one stable
:func:`numpy.lexsort` over the word columns; both paths return the
unique rows in numeric-lexicographic row order. The void-view
``np.unique(X, axis=0)`` fallback was retired: at ``n = 50`` its
byte-comparison argsort dominated the whole CE iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["pack_rows", "pack_rows_words", "collapse_duplicate_rows", "DedupStats"]


def pack_rows(X: np.ndarray, n_symbols: int) -> np.ndarray | None:
    """Horner-pack each row of ``X`` into one int64 key, or None.

    Keys are collision-free and ordered lexicographically when
    ``n_cols · log2(n_symbols) ≤ 63``; returns None when the alphabet
    overflows int64 (callers must fall back to row-wise comparison).
    """
    n_cols = X.shape[1]
    if n_symbols < 2 or n_cols * math.log2(n_symbols) > 63:
        return None
    key = X[:, 0].astype(np.int64, copy=True)
    for c in range(1, n_cols):
        key *= n_symbols
        key += X[:, c]
    return key


def pack_rows_words(X: np.ndarray, n_symbols: int) -> np.ndarray:
    """Horner-pack each row of ``X`` into as few int64 words as fit.

    Splits the columns into contiguous chunks of ``d`` symbols where ``d``
    is the largest count with ``n_symbols**d`` still inside int64, and
    packs each chunk exactly like :func:`pack_rows`. The resulting
    ``(N, n_words)`` key matrix is collision-free, and comparing key rows
    lexicographically equals comparing the original rows lexicographically
    (each word is an order-preserving encoding of its column chunk).
    """
    n_cols = X.shape[1]
    if n_symbols < 2:
        raise ValueError(f"alphabet must have >= 2 symbols, got {n_symbols}")
    cap = (1 << 63) - 1
    digits = 1
    while n_symbols ** (digits + 1) <= cap:
        digits += 1
    n_words = -(-n_cols // digits)
    keys = np.empty((X.shape[0], n_words), dtype=np.int64)
    for word in range(n_words):
        lo = word * digits
        hi = min(lo + digits, n_cols)
        key = X[:, lo].astype(np.int64, copy=True)
        for c in range(lo + 1, hi):
            key *= n_symbols
            key += X[:, c]
        keys[:, word] = key
    return keys


def collapse_duplicate_rows(
    X: np.ndarray, n_symbols: int
) -> tuple[np.ndarray, np.ndarray]:
    """Collapse duplicate rows of an integer batch.

    Parameters
    ----------
    X:
        ``(N, n_cols)`` integer batch with entries in ``[0, n_symbols)``.
    n_symbols:
        Alphabet size (number of resources); bounds the per-entry values
        and decides whether the packed-key fast path is applicable.

    Returns
    -------
    ``(unique_rows, inverse)`` where ``unique_rows`` is ``(U, n_cols)``
    and ``inverse`` is ``(N,)`` with ``unique_rows[inverse] == X``
    row-for-row; the unique rows come out in lexicographic row order.
    ``U == N`` when all rows are distinct.
    """
    key = pack_rows(X, n_symbols)
    if key is not None:
        _, first, inverse = np.unique(key, return_index=True, return_inverse=True)
        return X[first], inverse
    N = X.shape[0]
    if N == 0:
        return X.copy(), np.empty(0, dtype=np.int64)
    keys = pack_rows_words(X, n_symbols)
    # lexsort's last key is primary, so feed the word columns reversed;
    # the sort is stable, making order[flag] the first occurrence of each
    # distinct row just as np.unique's stable path would pick.
    order = np.lexsort(tuple(keys[:, w] for w in range(keys.shape[1] - 1, -1, -1)))
    sorted_keys = keys[order]
    flag = np.empty(N, dtype=bool)
    flag[0] = True
    np.any(sorted_keys[1:] != sorted_keys[:-1], axis=1, out=flag[1:])
    inverse = np.empty(N, dtype=np.int64)
    inverse[order] = np.cumsum(flag) - 1
    return X[order[flag]], inverse


@dataclass
class DedupStats:
    """Running counters for a dedup-aware scoring path.

    ``hit_rate`` is the fraction of scored rows that were duplicates of an
    earlier row in their batch — the work the collapse avoided.
    """

    calls: int = 0
    total_rows: int = 0
    unique_rows: int = 0
    #: Batches that skipped the collapse because they were too small for
    #: packing to pay (see ``CostModel.DEDUP_MIN_CELLS``). Kept separate
    #: from the collapse counters so ``hit_rate`` keeps meaning "fraction
    #: of *inspected* rows that were duplicates".
    bypassed_calls: int = 0
    bypassed_rows: int = 0
    _history: list[float] = field(default_factory=list, repr=False)

    def record(self, n_rows: int, n_unique: int) -> None:
        """Account one collapsed batch of ``n_rows`` rows, ``n_unique`` kept."""
        self.calls += 1
        self.total_rows += int(n_rows)
        self.unique_rows += int(n_unique)
        self._history.append(1.0 - n_unique / n_rows if n_rows else 0.0)

    def record_bypass(self, n_rows: int) -> None:
        """Account one batch scored without looking for duplicates."""
        self.bypassed_calls += 1
        self.bypassed_rows += int(n_rows)

    @property
    def hit_rate(self) -> float:
        """Overall duplicate fraction across every recorded batch."""
        if self.total_rows == 0:
            return 0.0
        return 1.0 - self.unique_rows / self.total_rows

    @property
    def per_call_rates(self) -> list[float]:
        """Collapse rate of each recorded batch, in call order."""
        return list(self._history)
