"""Utility substrate: RNG streams, validation, timing, tables, serialization.

These helpers are deliberately dependency-light (numpy + stdlib only) and are
shared by every other subpackage.
"""

from repro.utils.dedup import DedupStats, collapse_duplicate_rows, pack_rows
from repro.utils.rng import (
    RngStreams,
    as_generator,
    derive_seed,
    spawn_generators,
)
from repro.utils.parallel import WorkerPool, default_worker_count, parallel_map
from repro.utils.shared_plane import (
    ProblemPlane,
    SharedProblemHandle,
    resolve_problem,
)
from repro.utils.timing import Stopwatch, TimingRecord, time_call
from repro.utils.tables import format_table, render_kv_block
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_probability_matrix,
    check_permutation,
)

__all__ = [
    "DedupStats",
    "collapse_duplicate_rows",
    "pack_rows",
    "RngStreams",
    "as_generator",
    "derive_seed",
    "spawn_generators",
    "parallel_map",
    "default_worker_count",
    "WorkerPool",
    "ProblemPlane",
    "SharedProblemHandle",
    "resolve_problem",
    "Stopwatch",
    "TimingRecord",
    "time_call",
    "format_table",
    "render_kv_block",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_probability_matrix",
    "check_permutation",
]
