"""Argument-validation helpers raising :class:`~repro.exceptions.ValidationError`.

These helpers concentrate the library's precondition checks so that error
messages are uniform and the hot paths can call a single well-tested
function instead of re-implementing checks ad hoc.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "check_positive",
    "check_in_range",
    "check_probability",
    "check_probability_matrix",
    "check_permutation",
    "is_permutation",
]


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (``> 0``, or ``>= 0`` if not strict)."""
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    if strict and value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    inclusive: tuple[bool, bool] = (True, True),
) -> float:
    """Validate ``lo <?= value <?= hi`` with configurable endpoint inclusivity."""
    lo_ok = value >= lo if inclusive[0] else value > lo
    hi_ok = value <= hi if inclusive[1] else value < hi
    if not (np.isfinite(value) and lo_ok and hi_ok):
        lo_b = "[" if inclusive[0] else "("
        hi_b = "]" if inclusive[1] else ")"
        raise ValidationError(f"{name} must be in {lo_b}{lo}, {hi}{hi_b}, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``."""
    return check_in_range(name, value, 0.0, 1.0)


def check_probability_matrix(matrix: Any, *, atol: float = 1e-8) -> np.ndarray:
    """Validate a row-stochastic matrix and return it as ``float64``.

    Checks: 2-D, non-negative entries, each row sums to 1 within ``atol``.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValidationError(f"probability matrix must be 2-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError("probability matrix must be non-empty")
    if np.any(arr < -atol):
        raise ValidationError("probability matrix has negative entries")
    row_sums = arr.sum(axis=1)
    bad = np.flatnonzero(np.abs(row_sums - 1.0) > atol)
    if bad.size:
        raise ValidationError(
            f"rows {bad[:5].tolist()} of probability matrix do not sum to 1 "
            f"(sums {row_sums[bad[:5]].tolist()})"
        )
    return arr


def is_permutation(x: Any, n: int | None = None) -> bool:
    """True iff ``x`` is a permutation of ``0..len(x)-1`` (and of length ``n``)."""
    arr = np.asarray(x)
    if arr.ndim != 1:
        return False
    if n is not None and arr.shape[0] != n:
        return False
    m = arr.shape[0]
    if m == 0:
        return n in (None, 0)
    if not np.issubdtype(arr.dtype, np.integer):
        if not np.all(arr == np.floor(arr)):
            return False
        arr = arr.astype(np.int64)
    if arr.min() != 0 or arr.max() != m - 1:
        return False
    seen = np.zeros(m, dtype=bool)
    seen[arr] = True
    return bool(seen.all())


def check_permutation(name: str, x: Any, n: int | None = None) -> np.ndarray:
    """Validate that ``x`` is a permutation vector; return it as ``int64``."""
    if not is_permutation(x, n):
        raise ValidationError(
            f"{name} must be a permutation of 0..{(n or len(np.atleast_1d(x))) - 1}, got {x!r}"
        )
    return np.asarray(x, dtype=np.int64)
