"""Shared type aliases and protocols used across the :mod:`repro` library.

The library passes around a small set of recurring shapes:

* an *assignment vector* — an integer array ``x`` of length ``n_tasks``
  where ``x[t]`` is the resource index task ``t`` is mapped to;
* a *batch* of assignment vectors — an ``(N, n_tasks)`` integer array;
* a *stochastic matrix* — an ``(n_tasks, n_resources)`` float array whose
  rows sum to one;
* a *cost vector* — float array of per-sample objective values.

Centralising the aliases keeps signatures short and greppable.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, Union

import numpy as np
import numpy.typing as npt

#: Integer assignment vector of shape ``(n_tasks,)``.
AssignmentVector = npt.NDArray[np.int64]

#: Batch of assignment vectors, shape ``(N, n_tasks)``.
AssignmentBatch = npt.NDArray[np.int64]

#: Row-stochastic probability matrix, shape ``(n_tasks, n_resources)``.
ProbabilityMatrix = npt.NDArray[np.float64]

#: Objective values for a batch of samples, shape ``(N,)``.
CostVector = npt.NDArray[np.float64]

#: Anything acceptable as a seed for :func:`numpy.random.default_rng`.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

#: A scalar objective function over a single assignment vector.
ObjectiveFn = Callable[[AssignmentVector], float]

#: A vectorized objective over a batch, returning one cost per row.
BatchObjectiveFn = Callable[[AssignmentBatch], CostVector]


class SupportsEvaluate(Protocol):
    """Protocol for objects that can score a single mapping."""

    def evaluate(self, assignment: AssignmentVector) -> float:
        """Return the scalar cost of ``assignment`` (lower is better)."""
        ...


class SupportsEvaluateBatch(Protocol):
    """Protocol for objects that can score a batch of mappings at once."""

    def evaluate_batch(self, assignments: AssignmentBatch) -> CostVector:
        """Return one cost per row of ``assignments`` (lower is better)."""
        ...


def as_assignment(x: Any) -> AssignmentVector:
    """Coerce ``x`` to a 1-D ``int64`` assignment vector (copying if needed)."""
    arr = np.asarray(x, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"assignment must be 1-D, got shape {arr.shape}")
    return arr


def as_assignment_batch(x: Any) -> AssignmentBatch:
    """Coerce ``x`` to a 2-D ``int64`` batch; a single vector becomes one row."""
    arr = np.asarray(x, dtype=np.int64)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise ValueError(f"assignment batch must be 2-D, got shape {arr.shape}")
    return arr
