"""Exception hierarchy for the MaTCH reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` from misuse of numpy, etc.)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument or data structure failed validation.

    Subclasses ``ValueError`` so idiomatic ``except ValueError`` call sites
    keep working.
    """


class GraphError(ReproError):
    """A graph is malformed or an operation received an incompatible graph."""


class MappingError(ReproError):
    """A task-to-resource mapping is invalid for the given problem instance."""


class ConvergenceError(ReproError):
    """An iterative optimizer failed to converge within its iteration budget."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm configuration contains out-of-range or inconsistent values."""


class SimulationError(ReproError):
    """The discrete-event platform simulator reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment specification is unknown or failed to run."""


class SerializationError(ReproError):
    """An object could not be serialized to, or deserialized from, disk."""


class WorkerPoolError(ReproError):
    """The process-pool execution fabric failed.

    Raised when a :class:`repro.utils.parallel.WorkerPool` is used after
    :meth:`close`, or when its worker processes die mid-dispatch (e.g.
    OOM-killed) — surfaced as a clean error instead of a hang.
    """


class FaultInjectionError(ReproError):
    """A deterministic injected fault fired (``REPRO_FAULTS`` harness).

    Raised inside a pool worker when the fault plan says the current cell
    attempt must fail with an exception. Tests and the CI chaos job use it
    to distinguish injected failures from genuine bugs; it never escapes a
    production run because ``REPRO_FAULTS`` is unset there.
    """


class CellTimeoutError(ReproError):
    """A dispatched cell exceeded its per-attempt deadline.

    Recorded in the salvage manifest when the fault-tolerant dispatcher
    kills a worker whose cell ran past ``RetryPolicy.cell_timeout`` and the
    cell has no retries left.
    """


class IslandError(ReproError):
    """The multi-node island runtime failed beyond what healing can absorb.

    Raised by the coordinator when a run cannot continue (no islands ever
    joined, the listener died) and by an island worker when the coordinator
    breaks protocol. Node *loss* is not an error — the coordinator heals it
    by re-sharding chains onto survivors.
    """


class FrameError(IslandError):
    """A length-prefixed wire frame is malformed.

    Carries a structured ``kind`` — ``"truncated"`` (peer closed mid-frame),
    ``"oversized"`` (length prefix exceeds the frame cap) or ``"malformed"``
    (body is not valid JSON / not an object) — so transports can distinguish
    a dead peer from a protocol bug.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


class CheckpointError(ReproError):
    """A solver checkpoint is missing, malformed, or incompatible.

    Raised when resuming from a checkpoint whose format/solver does not
    match the running code, or when a solver cannot export live state
    (e.g. the fused multi-chain CE path, which interleaves chains and has
    no per-run resumable position).
    """
