"""Axis-aligned 3-D geometry primitives for the synthetic overset-grid substrate.

Overset-grid CFD (§2, Fig. 1) covers the space around an irregular body
with overlapping regularly-shaped grids. We model each component grid's
bounding region as an axis-aligned box; pairwise box intersections define
which grids overlap and how strongly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["Box", "boxes_overlap"]


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned box ``[lo, hi]`` in 3-D space."""

    lo: tuple[float, float, float]
    hi: tuple[float, float, float]

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        if lo.shape != (3,) or hi.shape != (3,):
            raise ValidationError("Box corners must be 3-vectors")
        if not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
            raise ValidationError("Box corners must be finite")
        if np.any(hi < lo):
            raise ValidationError(f"Box has hi < lo: lo={self.lo}, hi={self.hi}")
        # Normalise to plain tuples of floats for hashability/JSON friendliness.
        object.__setattr__(self, "lo", tuple(float(x) for x in lo))
        object.__setattr__(self, "hi", tuple(float(x) for x in hi))

    # -- measures -----------------------------------------------------------
    @property
    def extents(self) -> np.ndarray:
        """Side lengths per axis, ``hi - lo``."""
        return np.asarray(self.hi) - np.asarray(self.lo)

    @property
    def center(self) -> np.ndarray:
        """Geometric center of the box."""
        return (np.asarray(self.hi) + np.asarray(self.lo)) / 2.0

    def volume(self) -> float:
        """Box volume (0 for degenerate boxes)."""
        return float(np.prod(self.extents))

    def contains_point(self, point) -> bool:
        """True iff ``point`` lies inside or on the boundary."""
        p = np.asarray(point, dtype=np.float64)
        return bool(np.all(p >= np.asarray(self.lo)) and np.all(p <= np.asarray(self.hi)))

    # -- set operations ------------------------------------------------------
    def intersection(self, other: "Box") -> "Box | None":
        """The overlap box with ``other``, or ``None`` when they are disjoint.

        Boxes touching only on a face/edge/corner (zero-volume overlap)
        return that degenerate box — overset grids need *volumetric*
        overlap to exchange data, which callers check via ``volume() > 0``.
        """
        lo = np.maximum(np.asarray(self.lo), np.asarray(other.lo))
        hi = np.minimum(np.asarray(self.hi), np.asarray(other.hi))
        if np.any(hi < lo):
            return None
        return Box(tuple(lo), tuple(hi))

    def union_bounds(self, other: "Box") -> "Box":
        """The smallest box containing both (bounding-box union)."""
        lo = np.minimum(np.asarray(self.lo), np.asarray(other.lo))
        hi = np.maximum(np.asarray(self.hi), np.asarray(other.hi))
        return Box(tuple(lo), tuple(hi))

    def expanded(self, margin: float) -> "Box":
        """Box grown by ``margin`` on every side (negative shrinks, clamped)."""
        lo = np.asarray(self.lo) - margin
        hi = np.asarray(self.hi) + margin
        mid = (lo + hi) / 2.0
        lo = np.minimum(lo, mid)
        hi = np.maximum(hi, mid)
        return Box(tuple(lo), tuple(hi))


def boxes_overlap(a: Box, b: Box) -> bool:
    """True iff the two boxes share positive volume (not just a boundary)."""
    inter = a.intersection(b)
    return inter is not None and inter.volume() > 0.0
