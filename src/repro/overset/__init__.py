"""Synthetic overset-grid CFD substrate (the application domain of §2/Fig. 1)."""

from repro.overset.geometry import Box, boxes_overlap
from repro.overset.grids import ComponentGrid
from repro.overset.scenario import OversetScenario, generate_overset_scenario
from repro.overset.tig_builder import build_tig, scenario_report

__all__ = [
    "Box",
    "boxes_overlap",
    "ComponentGrid",
    "OversetScenario",
    "generate_overset_scenario",
    "build_tig",
    "scenario_report",
]
