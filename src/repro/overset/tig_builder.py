"""Extraction of a Task Interaction Graph from an overset system (Fig. 1).

Each component grid becomes one TIG vertex whose computational weight is
its grid-point count; each volumetric overlap becomes an undirected edge
whose communication weight is the number of overlapping grid points —
precisely the abstraction step the paper illustrates in Figure 1.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.task_graph import TaskInteractionGraph
from repro.overset.scenario import OversetScenario

__all__ = ["build_tig", "scenario_report"]


def build_tig(
    scenario: OversetScenario,
    *,
    weight_scale: float = 1.0,
    name: str = "overset-tig",
) -> TaskInteractionGraph:
    """Convert an overset scenario to a :class:`TaskInteractionGraph`.

    ``weight_scale`` divides all point counts (computation and
    communication alike), handy to bring very fine grids into the same
    numeric regime as the §5.2 synthetic suites without changing the
    optimization problem (the optimum mapping is scale-invariant).
    """
    if weight_scale <= 0:
        raise ValueError(f"weight_scale must be > 0, got {weight_scale}")
    node_w = np.array([g.n_points() for g in scenario.grids], dtype=np.float64) / weight_scale
    pairs = scenario.overlap_pairs()
    if pairs:
        edges = np.array([(i, j) for i, j, _ in pairs], dtype=np.int64)
        edge_w = np.array([w for _, _, w in pairs], dtype=np.float64) / weight_scale
    else:
        edges = np.empty((0, 2), dtype=np.int64)
        edge_w = np.empty(0, dtype=np.float64)
    return TaskInteractionGraph(node_w, edges, edge_w, name=name)


def scenario_report(scenario: OversetScenario) -> dict:
    """Human-readable summary of an overset system for example scripts."""
    tig = build_tig(scenario)
    points = [g.n_points() for g in scenario.grids]
    return {
        "n_grids": scenario.n_grids,
        "total_grid_points": scenario.total_points(),
        "min_grid_points": min(points),
        "max_grid_points": max(points),
        "n_overlaps": tig.n_edges,
        "tig_connected": tig.is_connected(),
        "ccr": tig.computation_to_communication_ratio(),
    }
