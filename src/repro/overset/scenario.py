"""Synthetic overset-grid scenario generator.

**Substitution note (see DESIGN.md §2):** the paper motivates MaTCH with
real overset-grid CFD systems (viscous drag of an irregular body) that we
do not have. This module synthesises geometrically faithful stand-ins: an
irregular *body curve* through 3-D space is sampled, and component grids
(boxes with random extents and spacings) are placed along it so that
consecutive grids overlap — exactly the structure Fig. 1 abstracts. The
generated system exercises the identical downstream code path
(overlap detection → TIG → mapping) as a real CFD dataset would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.overset.geometry import Box, boxes_overlap
from repro.overset.grids import ComponentGrid
from repro.types import SeedLike
from repro.utils.rng import as_generator

__all__ = ["OversetScenario", "generate_overset_scenario"]


@dataclass(frozen=True)
class OversetScenario:
    """A synthetic overset system: the component grids covering a body."""

    grids: tuple[ComponentGrid, ...]
    body_points: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.grids) == 0:
            raise ValidationError("scenario must contain at least one grid")

    @property
    def n_grids(self) -> int:
        """Number of component grids."""
        return len(self.grids)

    def overlap_pairs(self) -> list[tuple[int, int, int]]:
        """All ``(i, j, overlap_points)`` triples with positive overlap, i < j."""
        out: list[tuple[int, int, int]] = []
        for i in range(self.n_grids):
            for j in range(i + 1, self.n_grids):
                if boxes_overlap(self.grids[i].region, self.grids[j].region):
                    w = self.grids[i].overlap_points(self.grids[j])
                    if w > 0:
                        out.append((i, j, w))
        return out

    def total_points(self) -> int:
        """Total grid points in the system (sum over component grids)."""
        return sum(g.n_points() for g in self.grids)


def _body_curve(gen: np.random.Generator, n: int, scale: float) -> np.ndarray:
    """Sample an irregular smooth-ish 3-D curve: a random walk with momentum."""
    pts = np.zeros((n, 3))
    velocity = gen.normal(size=3)
    velocity /= np.linalg.norm(velocity) + 1e-12
    step = scale / max(n, 1)
    for i in range(1, n):
        velocity = 0.7 * velocity + 0.3 * gen.normal(size=3)
        velocity /= np.linalg.norm(velocity) + 1e-12
        pts[i] = pts[i - 1] + velocity * step * gen.uniform(0.8, 1.2)
    return pts


def generate_overset_scenario(
    n_grids: int,
    rng: SeedLike = None,
    *,
    body_scale: float = 10.0,
    grid_extent_range: tuple[float, float] = (1.0, 2.5),
    spacing_range: tuple[float, float] = (0.08, 0.2),
    overlap_margin: float = 0.35,
) -> OversetScenario:
    """Generate a connected synthetic overset system along a random body.

    Parameters
    ----------
    n_grids:
        Number of component grids (TIG size after extraction).
    rng:
        Seed or generator.
    body_scale:
        Length of the body curve the grids follow.
    grid_extent_range:
        Uniform range for each box's half-extent per axis.
    spacing_range:
        Uniform range for lattice spacing (smaller = more grid points,
        i.e. heavier tasks).
    overlap_margin:
        Extra expansion applied to every box; guarantees consecutive boxes
        along the body overlap volumetrically (the Fig. 1 chain structure),
        while non-consecutive overlaps arise naturally where the body curve
        folds back on itself.
    """
    if n_grids < 1:
        raise ValidationError(f"n_grids must be >= 1, got {n_grids}")
    if grid_extent_range[0] <= 0 or grid_extent_range[0] > grid_extent_range[1]:
        raise ValidationError(f"invalid grid_extent_range {grid_extent_range}")
    if spacing_range[0] <= 0 or spacing_range[0] > spacing_range[1]:
        raise ValidationError(f"invalid spacing_range {spacing_range}")
    gen = as_generator(rng)

    body = _body_curve(gen, n_grids, body_scale)
    grids: list[ComponentGrid] = []
    for i, center in enumerate(body):
        half = gen.uniform(*grid_extent_range, size=3)
        lo = center - half
        hi = center + half
        box = Box(tuple(lo), tuple(hi)).expanded(overlap_margin)
        # Ensure chain connectivity: grow the box to reach the previous center.
        if i > 0:
            prev = body[i - 1]
            lo = np.minimum(np.asarray(box.lo), prev - overlap_margin)
            hi = np.maximum(np.asarray(box.hi), prev + overlap_margin)
            box = Box(tuple(lo), tuple(hi))
        spacing = tuple(gen.uniform(*spacing_range, size=3))
        grids.append(ComponentGrid(region=box, spacing=spacing, name=f"grid-{i}"))
    return OversetScenario(grids=tuple(grids), body_points=body)
