"""Component grids: regular lattices of grid points inside an axis-aligned box.

A :class:`ComponentGrid` is one regularly-shaped grid of the overset system
(§2): a box region discretised with uniform spacing ``h`` per axis. Its
computational weight is its exact lattice point count; the communication
weight between two overlapping grids is the exact number of this grid's
lattice points falling inside the geometric intersection — "the number of
grid points that overlap" in the paper's words.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.overset.geometry import Box

__all__ = ["ComponentGrid"]


@dataclass(frozen=True)
class ComponentGrid:
    """A uniform lattice over ``region`` with spacing ``spacing`` per axis.

    Lattice points sit at ``lo + k * h`` for integer ``k >= 0`` while inside
    the region (endpoints included), independently per axis.
    """

    region: Box
    spacing: tuple[float, float, float]
    name: str = ""

    def __post_init__(self) -> None:
        h = np.asarray(self.spacing, dtype=np.float64)
        if h.shape != (3,):
            raise ValidationError("spacing must be a 3-vector")
        if not np.all(np.isfinite(h)) or np.any(h <= 0):
            raise ValidationError(f"spacing must be positive and finite, got {self.spacing}")
        object.__setattr__(self, "spacing", tuple(float(x) for x in h))

    # -- lattice counting -----------------------------------------------------
    def points_per_axis(self) -> np.ndarray:
        """Number of lattice points along each axis (``>= 1``)."""
        h = np.asarray(self.spacing)
        ext = self.region.extents
        # Guard against float fuzz at exact multiples of the spacing.
        return np.floor(ext / h + 1e-9).astype(np.int64) + 1

    def n_points(self) -> int:
        """Total lattice point count (product over axes)."""
        return int(np.prod(self.points_per_axis()))

    def points_in_box(self, box: Box) -> int:
        """Exact count of this grid's lattice points inside ``box``.

        Per axis, the lattice indices ``k`` with
        ``box.lo <= lo + k*h <= box.hi`` (clipped to the grid's own index
        range) form a contiguous interval; the count is the product of the
        interval lengths.
        """
        lo_g = np.asarray(self.region.lo)
        h = np.asarray(self.spacing)
        n_axis = self.points_per_axis()
        lo_b = np.asarray(box.lo)
        hi_b = np.asarray(box.hi)

        k_min = np.ceil((lo_b - lo_g) / h - 1e-9)
        k_max = np.floor((hi_b - lo_g) / h + 1e-9)
        k_min = np.maximum(k_min, 0)
        k_max = np.minimum(k_max, n_axis - 1)
        counts = np.maximum(k_max - k_min + 1, 0).astype(np.int64)
        return int(np.prod(counts))

    def overlap_points(self, other: "ComponentGrid") -> int:
        """Symmetric overlap weight with ``other``.

        The intersection region is computed once; each grid counts its own
        lattice points inside it and the weight is the average (rounded up,
        so any genuine overlap yields weight >= 1). Returns 0 when regions
        are disjoint or share no interior volume.
        """
        inter = self.region.intersection(other.region)
        if inter is None or inter.volume() == 0.0:  # repro: noqa[float-equality] -- touching boxes yield an exact 0.0 max(0,·) product
            return 0
        mine = self.points_in_box(inter)
        theirs = other.points_in_box(inter)
        if mine == 0 and theirs == 0:
            return 0
        return int(np.ceil((mine + theirs) / 2))
