"""The numba kernel backend: ``_loops`` bodies under ``@njit(cache=True)``.

numba is an *optional* dependency (``pip install .[fast]``); this module
is the only place in the tree allowed to import it (enforced by the
``kernel-discipline`` lint rule). Loading compiles the exact loop bodies
of :mod:`repro.kernels._loops` in ``nopython`` mode with the default
``fastmath=False`` — IEEE-strict, no contraction, no reassociation — so
the compiled functions inherit the spec's bit-exactness verbatim. A
one-element warmup call per kernel runs at load time: JIT failures
(unsupported numba/numpy pairing, broken cache dir, LLVM issues) surface
as :class:`~repro.kernels.impl_cext.KernelUnavailable` and the
dispatcher falls back instead of exploding mid-run.

``cache=True`` persists the compiled machine code next to ``_loops.py``
(or in ``$NUMBA_CACHE_DIR``), so repeat processes skip the multi-second
compile — this is what the CI kernel-matrix job caches between runs.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import _loops
from repro.kernels.csr import ProblemPack
from repro.kernels.impl_cext import KernelUnavailable

__all__ = ["load"]


class _NumbaKernels:
    """Backend function table over the jitted loop bodies."""

    def __init__(self, jitted: dict) -> None:
        self._times = jitted["times_batch_loops"]
        self._eval = jitted["eval_batch_loops"]
        self._genperm = jitted["genperm_loops"]
        self._move = jitted["move_cost_loops"]
        self._swap = jitted["swap_cost_loops"]
        self._swaps = jitted["swap_costs_loops"]

    def times_batch(self, pack: ProblemPack, X: np.ndarray) -> np.ndarray:
        return self._times(
            np.ascontiguousarray(X, dtype=np.int64),
            pack.task_weights, pack.proc_weights, pack.comm_flat,
            pack.eu, pack.ev, pack.edge_vol, pack.n_resources,
        )

    def eval_batch(self, pack: ProblemPack, X: np.ndarray) -> np.ndarray:
        return self._eval(
            np.ascontiguousarray(X, dtype=np.int64),
            pack.task_weights, pack.proc_weights, pack.comm_flat,
            pack.eu, pack.ev, pack.edge_vol, pack.n_resources,
        )

    def genperm(
        self,
        P_rows: np.ndarray,
        row_offsets: np.ndarray | None,
        task_orders: np.ndarray,
        rand_pos: np.ndarray,
        n_res: int,
    ) -> np.ndarray:
        if row_offsets is None:
            row_offsets = np.zeros(task_orders.shape[0], dtype=np.int64)
        return self._genperm(
            np.ascontiguousarray(P_rows, dtype=np.float64),
            np.ascontiguousarray(row_offsets, dtype=np.int64),
            np.ascontiguousarray(task_orders, dtype=np.int64),
            np.ascontiguousarray(rand_pos, dtype=np.float64),
            n_res,
        )

    def move_cost(
        self, pack: ProblemPack, exec_s: np.ndarray, x: np.ndarray,
        task: int, dest: int,
    ) -> float:
        return float(
            self._move(
                exec_s, x, task, dest,
                pack.task_weights, pack.proc_weights, pack.comm_flat,
                pack.n_resources, pack.off, pack.nbr, pack.nbr_vol,
            )
        )

    def swap_cost(
        self, pack: ProblemPack, exec_s: np.ndarray, x: np.ndarray,
        t1: int, t2: int,
    ) -> float:
        return float(
            self._swap(
                exec_s, x, t1, t2,
                pack.task_weights, pack.proc_weights, pack.comm_flat,
                pack.n_resources, pack.off, pack.nbr, pack.nbr_vol,
            )
        )

    def swap_costs(
        self, pack: ProblemPack, exec_s: np.ndarray, x: np.ndarray,
        pairs: np.ndarray,
    ) -> np.ndarray:
        return self._swaps(
            exec_s, x, np.ascontiguousarray(pairs, dtype=np.int64),
            pack.task_weights, pack.proc_weights, pack.comm_flat,
            pack.n_resources, pack.off, pack.nbr, pack.nbr_vol,
        )


def _warmup(kernels: "_NumbaKernels") -> None:
    """Force one compile per kernel on a two-task toy so JIT errors surface now."""
    pack = ProblemPack(
        n_tasks=2,
        n_resources=2,
        task_weights=np.array([1.0, 2.0]),
        proc_weights=np.array([1.0, 1.0]),
        comm=np.array([[0.0, 1.0], [1.0, 0.0]]),
        eu=np.array([0], dtype=np.int64),
        ev=np.array([1], dtype=np.int64),
        edge_vol=np.array([1.0]),
        off=np.array([0, 1, 2], dtype=np.int64),
        nbr=np.array([1, 0], dtype=np.int64),
        nbr_vol=np.array([1.0, 1.0]),
    )
    X = np.array([[0, 1]], dtype=np.int64)
    kernels.times_batch(pack, X)
    kernels.eval_batch(pack, X)
    kernels.genperm(
        np.full((2, 2), 0.5),
        None,
        np.array([[0, 1]], dtype=np.int64),
        np.full((2, 1), 0.25),
        2,
    )
    exec_s = np.array([1.0, 3.0])
    x = np.array([0, 1], dtype=np.int64)
    kernels.move_cost(pack, exec_s, x, 0, 1)
    kernels.swap_cost(pack, exec_s, x, 0, 1)
    kernels.swap_costs(pack, exec_s, x, np.array([[0, 1]], dtype=np.int64))


def load() -> _NumbaKernels:
    """Import numba, jit the spec loops, warm them up; raise if any step fails."""
    try:
        from numba import njit
    except ImportError as exc:
        raise KernelUnavailable(f"numba not installed: {exc}") from exc
    try:
        jitted = {
            name: njit(cache=True)(getattr(_loops, name))
            for name in _loops.__all__
        }
        kernels = _NumbaKernels(jitted)
        _warmup(kernels)
    except Exception as exc:  # JIT failures are environmental, not bugs here
        raise KernelUnavailable(f"numba JIT compilation failed: {exc}") from exc
    return kernels
