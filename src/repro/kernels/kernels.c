/* Compiled hot-loop kernels for the MaTCH reproduction.
 *
 * Value-for-value translation of repro/kernels/_loops.py — see that
 * module's docstring for the bit-exactness contract. Loop structure may
 * differ where it buys instruction-level parallelism (the GenPerm
 * position loop interleaves four samples), but every per-sample float
 * operation sequence matches the reference exactly. The build
 * (driven by impl_cext.py) uses `-O3 -ffp-contract=off` and no
 * -ffast-math: every float add/multiply must round exactly like the
 * numpy reference, so fused multiply-adds and reassociation are off the
 * table. Accumulation orders (tasks ascending, edges ascending, the
 * `(proc + acc_s) + acc_b` combine) are load-bearing.
 *
 * No Python.h: the library is plain C called through ctypes, so one
 * shared object serves every interpreter version. All functions return
 * 0 on success and -1 on allocation failure (scalar-valued probes
 * return the cost through an out-pointer for the same reason).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;

/* ---------------- Eq. (1)/(2) batch scoring ---------------- */

static void times_row(const i64 *xrow, i64 n_t, i64 n_r,
                      const double *W, const double *w, const double *ccm,
                      const i64 *eu, const i64 *ev, const double *C, i64 n_e,
                      double *proc, double *acc_s, double *acc_b)
{
    i64 r, t, e;
    for (r = 0; r < n_r; r++) {
        proc[r] = 0.0;
        acc_s[r] = 0.0;
        acc_b[r] = 0.0;
    }
    for (t = 0; t < n_t; t++) {
        i64 s = xrow[t];
        proc[s] += W[t] * w[s];
    }
    for (e = 0; e < n_e; e++) {
        i64 s = xrow[eu[e]];
        i64 b = xrow[ev[e]];
        double link = C[e] * ccm[s * n_r + b];
        acc_s[s] += link;
        acc_b[b] += link;
    }
}

int repro_times_batch(const i64 *X, i64 N, i64 n_t, i64 n_r,
                      const double *W, const double *w, const double *ccm,
                      const i64 *eu, const i64 *ev, const double *C, i64 n_e,
                      double *out)
{
    double *scratch = malloc((size_t)(3 * n_r) * sizeof(double));
    double *proc, *acc_s, *acc_b;
    i64 j, r;
    if (scratch == NULL)
        return -1;
    proc = scratch;
    acc_s = scratch + n_r;
    acc_b = scratch + 2 * n_r;
    for (j = 0; j < N; j++) {
        times_row(X + j * n_t, n_t, n_r, W, w, ccm, eu, ev, C, n_e,
                  proc, acc_s, acc_b);
        for (r = 0; r < n_r; r++)
            out[j * n_r + r] = (proc[r] + acc_s[r]) + acc_b[r];
    }
    free(scratch);
    return 0;
}

int repro_eval_batch(const i64 *X, i64 N, i64 n_t, i64 n_r,
                     const double *W, const double *w, const double *ccm,
                     const i64 *eu, const i64 *ev, const double *C, i64 n_e,
                     double *out)
{
    double *scratch = malloc((size_t)(3 * n_r) * sizeof(double));
    double *proc, *acc_s, *acc_b;
    i64 j, r;
    if (scratch == NULL)
        return -1;
    proc = scratch;
    acc_s = scratch + n_r;
    acc_b = scratch + 2 * n_r;
    for (j = 0; j < N; j++) {
        double best, v;
        times_row(X + j * n_t, n_t, n_r, W, w, ccm, eu, ev, C, n_e,
                  proc, acc_s, acc_b);
        best = (proc[0] + acc_s[0]) + acc_b[0];
        for (r = 1; r < n_r; r++) {
            v = (proc[r] + acc_s[r]) + acc_b[r];
            if (v > best)
                best = v;
        }
        out[j] = best;
    }
    free(scratch);
    return 0;
}

/* ---------------- GenPerm position loop ---------------- */

/* The reference loop walks ALL n_res resources per (sample, position)
 * cell, multiplying each row entry by a 0/1 mask. Two observations make
 * a compressed walk over only the still-unused resources value-identical:
 *
 *   1. A masked entry contributes row[i]*0.0 == +0.0, and acc + 0.0 is a
 *      bitwise no-op (acc starts at +0.0 and only ever accumulates
 *      non-negative finite terms, so it is never -0.0). Dropping masked
 *      terms leaves every accumulator value — including the final mass —
 *      bit-identical. An unmasked entry contributes row[i]*1.0 == row[i]
 *      exactly.
 *   2. The reference picks the first index i with cdf[i] > u. The cdf
 *      only changes value at unused positions (masked positions replicate
 *      the previous value, and the all-masked prefix holds +0.0 <= u), so
 *      that first index is always an unused position: scanning the
 *      compressed cdf finds the identical choice.
 *
 * The dead-row fallback (uniform over unused: 1.0 increments at unused
 * positions) and the overflow clamp (resource n_res-1 if still unused,
 * else the first unused) translate the same way. Each sample therefore
 * keeps an ascending list of its unused resources; position `pos` walks
 * K = n_res - pos entries instead of n_res, halving the serial FP-add
 * chain work over the whole run. */

/* Everything after the compressed cumulative sum for one sample:
 * dead-row fallback, inverse-CDF scan, overflow clamp, and removal of
 * the chosen resource from the sample's unused list. Returns the chosen
 * resource id. */
static i64 genperm_pick(double *cdf, int32_t *idx, i64 K, i64 n_res,
                        double u01)
{
    double mass = cdf[K - 1];
    double u;
    i64 k, choice;
    if (mass <= 0.0) {
        /* Dead row: uniform over the unused resources. */
        double acc = 0.0;
        for (k = 0; k < K; k++) {
            acc = acc + 1.0;
            cdf[k] = acc;
        }
        mass = cdf[K - 1];
    }
    u = u01 * mass;
    /* First index with cdf > u. The cdf is non-decreasing (non-negative
     * increments), so a branchless upper-bound bisection lands on the
     * same index as the reference's linear scan in log2(K) compare steps
     * with no data-dependent branch to mispredict. */
    {
        i64 lo = 0, len = K;
        while (len > 1) {
            i64 half = len >> 1;
            if (cdf[lo + half - 1] <= u)
                lo += half;
            len -= half;
        }
        k = lo + (cdf[lo] <= u);
    }
    if (k == K) {
        /* Overflow clamp; resource n_res-1 when still unused, else the
         * first unused resource. */
        k = (idx[K - 1] == (int32_t)(n_res - 1)) ? K - 1 : 0;
    }
    choice = idx[k];
    memmove(idx + k, idx + k + 1, (size_t)(K - 1 - k) * sizeof(int32_t));
    return choice;
}

int repro_genperm(const double *P_rows, const i64 *row_offsets,
                  const i64 *task_orders, const double *rand_pos,
                  i64 B, i64 n_t, i64 n_res, i64 *X)
{
    int32_t *avail = malloc((size_t)(B * n_res) * sizeof(int32_t));
    double *cdf = malloc((size_t)(4 * n_res) * sizeof(double));
    i64 j, pos, i;
    if (avail == NULL || cdf == NULL) {
        free(avail);
        free(cdf);
        return -1;
    }
    for (j = 0; j < B; j++)
        for (i = 0; i < n_res; i++)
            avail[j * n_res + i] = (int32_t)i;
    for (pos = 0; pos < n_t; pos++) {
        const i64 K = n_res - pos;
        const double *u_pos = rand_pos + pos * B;
        if (K == 1) {
            /* Square case, last position: the one unused resource is
             * forced (the reference's rem-sum shortcut). */
            for (j = 0; j < B; j++)
                X[j * n_t + task_orders[j * n_t + pos]] = avail[j * n_res];
            break;
        }
        /* The compressed cumulative sum is a loop-carried float
         * dependency chain (K serial adds per sample) and is what bounds
         * this kernel. Samples are independent, so four run interleaved:
         * four accumulator chains in flight hide the FP add latency while
         * each sample's own adds stay in reference order. */
        j = 0;
        for (; j + 4 <= B; j += 4) {
            i64 t0 = task_orders[(j + 0) * n_t + pos];
            i64 t1 = task_orders[(j + 1) * n_t + pos];
            i64 t2 = task_orders[(j + 2) * n_t + pos];
            i64 t3 = task_orders[(j + 3) * n_t + pos];
            const double *r0 = P_rows + (row_offsets[j + 0] + t0) * n_res;
            const double *r1 = P_rows + (row_offsets[j + 1] + t1) * n_res;
            const double *r2 = P_rows + (row_offsets[j + 2] + t2) * n_res;
            const double *r3 = P_rows + (row_offsets[j + 3] + t3) * n_res;
            int32_t *i0 = avail + (j + 0) * n_res;
            int32_t *i1 = avail + (j + 1) * n_res;
            int32_t *i2 = avail + (j + 2) * n_res;
            int32_t *i3 = avail + (j + 3) * n_res;
            double *c0 = cdf;
            double *c1 = cdf + n_res;
            double *c2 = cdf + 2 * n_res;
            double *c3 = cdf + 3 * n_res;
            double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
            i64 k;
            for (k = 0; k < K; k++) {
                a0 = a0 + r0[i0[k]];
                c0[k] = a0;
                a1 = a1 + r1[i1[k]];
                c1[k] = a1;
                a2 = a2 + r2[i2[k]];
                c2[k] = a2;
                a3 = a3 + r3[i3[k]];
                c3[k] = a3;
            }
            X[(j + 0) * n_t + t0] = genperm_pick(c0, i0, K, n_res, u_pos[j + 0]);
            X[(j + 1) * n_t + t1] = genperm_pick(c1, i1, K, n_res, u_pos[j + 1]);
            X[(j + 2) * n_t + t2] = genperm_pick(c2, i2, K, n_res, u_pos[j + 2]);
            X[(j + 3) * n_t + t3] = genperm_pick(c3, i3, K, n_res, u_pos[j + 3]);
        }
        for (; j < B; j++) {
            i64 task = task_orders[j * n_t + pos];
            const double *row = P_rows + (row_offsets[j] + task) * n_res;
            int32_t *idx = avail + j * n_res;
            double acc = 0.0;
            i64 k;
            for (k = 0; k < K; k++) {
                acc = acc + row[idx[k]];
                cdf[k] = acc;
            }
            X[j * n_t + task] = genperm_pick(cdf, idx, K, n_res, u_pos[j]);
        }
    }
    free(avail);
    free(cdf);
    return 0;
}

/* ---------------- O(deg) delta probes ---------------- */

static void apply_move(double *ex, i64 *xs, i64 task, i64 dest,
                       const double *W, const double *w, const double *ccm,
                       i64 n_r, const i64 *off, const i64 *nbr,
                       const double *vol)
{
    i64 src = xs[task];
    i64 k;
    if (src == dest)
        return;
    ex[src] -= W[task] * w[src];
    ex[dest] += W[task] * w[dest];
    for (k = off[task]; k < off[task + 1]; k++) {
        i64 m = xs[nbr[k]];
        double cv = vol[k];
        if (m != src) {
            ex[src] -= cv * ccm[src * n_r + m];
            ex[m] -= cv * ccm[m * n_r + src];
        }
        if (m != dest) {
            ex[dest] += cv * ccm[dest * n_r + m];
            ex[m] += cv * ccm[m * n_r + dest];
        }
    }
    xs[task] = dest;
}

static double max_of(const double *ex, i64 n_r)
{
    double best = ex[0];
    i64 r;
    for (r = 1; r < n_r; r++)
        if (ex[r] > best)
            best = ex[r];
    return best;
}

int repro_move_cost(const double *exec_s, const i64 *x, i64 n_t, i64 n_r,
                    const double *W, const double *w, const double *ccm,
                    const i64 *off, const i64 *nbr, const double *vol,
                    i64 task, i64 dest, double *out)
{
    double *ex = malloc((size_t)n_r * sizeof(double));
    i64 *xs = malloc((size_t)n_t * sizeof(i64));
    if (ex == NULL || xs == NULL) {
        free(ex);
        free(xs);
        return -1;
    }
    memcpy(ex, exec_s, (size_t)n_r * sizeof(double));
    memcpy(xs, x, (size_t)n_t * sizeof(i64));
    apply_move(ex, xs, task, dest, W, w, ccm, n_r, off, nbr, vol);
    *out = max_of(ex, n_r);
    free(ex);
    free(xs);
    return 0;
}

int repro_swap_cost(const double *exec_s, const i64 *x, i64 n_t, i64 n_r,
                    const double *W, const double *w, const double *ccm,
                    const i64 *off, const i64 *nbr, const double *vol,
                    i64 t1, i64 t2, double *out)
{
    double *ex = malloc((size_t)n_r * sizeof(double));
    i64 *xs = malloc((size_t)n_t * sizeof(i64));
    i64 s1, s2;
    if (ex == NULL || xs == NULL) {
        free(ex);
        free(xs);
        return -1;
    }
    memcpy(ex, exec_s, (size_t)n_r * sizeof(double));
    memcpy(xs, x, (size_t)n_t * sizeof(i64));
    s1 = xs[t1];
    s2 = xs[t2];
    apply_move(ex, xs, t1, s2, W, w, ccm, n_r, off, nbr, vol);
    apply_move(ex, xs, t2, s1, W, w, ccm, n_r, off, nbr, vol);
    *out = max_of(ex, n_r);
    free(ex);
    free(xs);
    return 0;
}

int repro_swap_costs(const double *exec_s, const i64 *x, i64 n_t, i64 n_r,
                     const double *W, const double *w, const double *ccm,
                     const i64 *off, const i64 *nbr, const double *vol,
                     const i64 *pairs, i64 K, double *out)
{
    double *ex = malloc((size_t)n_r * sizeof(double));
    i64 *xs = malloc((size_t)n_t * sizeof(i64));
    i64 p, s1, s2;
    if (ex == NULL || xs == NULL) {
        free(ex);
        free(xs);
        return -1;
    }
    for (p = 0; p < K; p++) {
        memcpy(ex, exec_s, (size_t)n_r * sizeof(double));
        memcpy(xs, x, (size_t)n_t * sizeof(i64));
        s1 = xs[pairs[p * 2]];
        s2 = xs[pairs[p * 2 + 1]];
        apply_move(ex, xs, pairs[p * 2], s2, W, w, ccm, n_r, off, nbr, vol);
        apply_move(ex, xs, pairs[p * 2 + 1], s1, W, w, ccm, n_r, off, nbr, vol);
        out[p] = max_of(ex, n_r);
    }
    free(ex);
    free(xs);
    return 0;
}
