"""Compiled kernel backends for the hot loops (DESIGN.md §11).

Three interchangeable, bit-identical implementations of the library's
three hot kernels — batched Eq. (1)/(2) scoring, the GenPerm position
loop, and the O(deg) delta probes — behind one dispatch point:

* ``numba``: the spec loops under ``@njit(cache=True)`` (optional
  dependency, ``pip install .[fast]``);
* ``cext``: the same loops translated to C and compiled on demand with
  the system C compiler (no extra Python dependency);
* ``numpy``: the vectorized reference, always available.

Select with ``REPRO_KERNEL={auto,numba,cext,numpy}`` or ``--kernel``;
``auto`` falls back silently because every backend produces identical
bytes (the cross-backend parity suite in ``tests/kernels/`` enforces
this, and the golden fixtures run under each available backend).
"""

from repro.kernels.csr import ProblemPack, build_adjacency, build_pack
from repro.kernels.dispatch import (
    KERNEL_CHOICES,
    KernelBackend,
    available_backends,
    get_backend,
    load_error,
    reset_kernel_state,
    set_backend,
    use_backend,
)

__all__ = [
    "ProblemPack",
    "build_adjacency",
    "build_pack",
    "KernelBackend",
    "KERNEL_CHOICES",
    "available_backends",
    "get_backend",
    "load_error",
    "reset_kernel_state",
    "set_backend",
    "use_backend",
]
