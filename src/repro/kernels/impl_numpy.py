"""The pure-numpy kernel backend — always available, the parity anchor.

These are the vectorized implementations that previously lived inline in
``mapping/cost_model.py`` (``bincount`` scatter-add batch scoring) and
``ce/genperm.py`` (the column-major GenPerm position loop), moved behind
the backend API unchanged so ``REPRO_KERNEL=numpy`` reproduces every
historical result bit-for-bit. The compiled backends are tested against
this module, not the other way around.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.csr import ProblemPack

__all__ = [
    "times_batch",
    "eval_batch",
    "genperm",
    "move_cost",
    "swap_cost",
    "swap_costs",
]


# -- Eq. (1)/(2) batch scoring -----------------------------------------------

def _times_block(pack: ProblemPack, X: np.ndarray) -> np.ndarray:
    """Eq. (1) for one block of rows: returns ``(N, n_resources)`` times.

    Strategy: flatten the (row, resource) bucket space to
    ``row * n_r + resource`` and use a single ``bincount`` scatter-add
    per term — no Python-level loop over samples.
    """
    N = X.shape[0]
    n_r = pack.n_resources
    row_offsets = (np.arange(N, dtype=np.int64) * n_r)[:, np.newaxis]

    # Processing term.
    comp_w = pack.task_weights[np.newaxis, :] * pack.proc_weights[X]  # (N, n_t)
    flat_proc = (row_offsets + X).ravel()
    totals = np.bincount(flat_proc, weights=comp_w.ravel(), minlength=N * n_r)

    # Communication term (both endpoint resources pay). The cost matrix
    # lookup goes through a flat 1-D take (``s·n_r + b``) rather than a
    # 2-D fancy index — same values, substantially cheaper per element.
    if pack.eu.size:
        s = X[:, pack.eu]  # (N, E)
        b = X[:, pack.ev]  # (N, E)
        link = pack.edge_vol[np.newaxis, :] * np.take(
            pack.comm_flat, s * n_r + b, mode="clip"
        )
        totals += np.bincount(
            (row_offsets + s).ravel(), weights=link.ravel(), minlength=N * n_r
        )
        totals += np.bincount(
            (row_offsets + b).ravel(), weights=link.ravel(), minlength=N * n_r
        )
    return totals.reshape(N, n_r)


def times_batch(pack: ProblemPack, X: np.ndarray) -> np.ndarray:
    """Eq. (1) for a whole batch: returns ``(N, n_resources)`` times.

    Large batches are processed in row blocks sized so the ``(N, E)``
    link intermediates stay a couple of MB: past the cache the fused
    pass turns memory-bound and goes *superlinear* in ``N`` (measured
    on a 352-edge, n = 50 instance: 20 000 rows cost 0.45 s in one
    pass vs 0.11 s in 1 000-row blocks). Block boundaries cannot
    change any value — every term is row-local.
    """
    N = X.shape[0]
    widest = max(int(pack.eu.size), pack.n_tasks, 1)
    block = max(512, 262_144 // widest)
    if N <= block:
        return _times_block(pack, X)
    out = np.empty((N, pack.n_resources))
    for start in range(0, N, block):
        out[start : start + block] = _times_block(pack, X[start : start + block])
    return out


def eval_batch(pack: ProblemPack, X: np.ndarray) -> np.ndarray:
    """Eq. (2) for a whole batch: one cost per row (lower is better)."""
    return times_batch(pack, X).max(axis=1)


# -- GenPerm position loop ---------------------------------------------------

def genperm(
    P_rows: np.ndarray,
    row_offsets: np.ndarray | None,
    task_orders: np.ndarray,
    rand_pos: np.ndarray,
    n_res: int,
) -> np.ndarray:
    """Backend entry point: transpose to columns-first and run the loop."""
    P_cols = np.ascontiguousarray(P_rows.T)
    return _genperm_position_loop(P_cols, row_offsets, task_orders, rand_pos, n_res)


def _genperm_position_loop(
    P_cols: np.ndarray,
    dist_offsets: np.ndarray | None,
    task_orders: np.ndarray,
    rand_pos: np.ndarray,
    n_res: int,
) -> np.ndarray:
    """The shared GenPerm position loop over a flattened sample batch.

    Parameters
    ----------
    P_cols:
        ``(n_res, n_dists · n_tasks)`` column-major (transposed) stack of
        stochastic matrices; column ``d·n_tasks + t`` is task ``t``'s row
        of matrix ``d``. A single matrix when ``dist_offsets`` is None.
    dist_offsets:
        ``(B,)`` column offset of each sample's matrix block
        (``chain · n_tasks``), or None when every sample draws from the
        same matrix.
    task_orders:
        ``(B, n_tasks)`` task visit orders.
    rand_pos:
        ``(n_tasks, B)`` pre-drawn uniforms; row ``pos`` is consumed at
        visit position ``pos``.

    The resources-first layout keeps every per-position reduction
    (masking, mass, CDF, inverse-CDF count) running along the long
    contiguous sample axis — full-width SIMD passes instead of
    length-``n_res`` strided reductions (measured: a samples-major layout
    with last-axis ``cumsum``/bool-sum is ~4-6× slower per op at
    ``B = 6000``) — and every scratch array (gathered columns, CDF,
    comparison mask) is allocated once and reused across the ``n_tasks``
    positions.
    """
    B, n_tasks = task_orders.shape
    X = np.full((B, n_tasks), -1, dtype=np.int64)
    # Float 0/1 availability mask: float·float multiplies and row copies
    # stay pure SIMD (a bool mask would force a casting buffer per pass).
    unused = np.ones((n_res, B), dtype=np.float64)
    rows = np.arange(B)
    probs = np.empty((n_res, B), dtype=np.float64)
    cdf = np.empty((n_res, B), dtype=np.float64)
    below = np.empty((n_res, B), dtype=bool)
    choice = np.empty(B, dtype=np.int64)
    u = np.empty(B, dtype=np.float64)
    # Square case: after n-1 placements exactly one resource remains, so
    # the last roulette draw is forced — track the remaining resource as a
    # running index sum and skip the whole final gather/CDF pass. (The
    # final uniform was still pre-drawn, so the RNG stream is identical.)
    square = n_tasks == n_res
    if square:
        rem = np.full(B, n_res * (n_res - 1) // 2, dtype=np.int64)

    for pos in range(n_tasks):
        tasks = task_orders[:, pos]  # (B,)
        if square and pos == n_tasks - 1:
            X[rows, tasks] = rem
            break
        gather_idx = tasks if dist_offsets is None else dist_offsets + tasks
        # mode="clip" skips per-element bounds checks (indices are valid
        # by construction) — measurably faster than the default mode.
        np.take(P_cols, gather_idx, axis=1, out=probs, mode="clip")
        np.multiply(probs, unused, out=probs)  # zero the taken resources
        # Running CDF down the resource axis via row-wise contiguous adds
        # (np.cumsum over axis 0 falls back to a strided loop); the last
        # row doubles as the remaining mass.
        np.copyto(cdf[0], probs[0])
        for i in range(1, n_res):
            np.add(cdf[i - 1], probs[i], out=cdf[i])
        mass = cdf[n_res - 1]
        dead = mass <= 0.0
        if dead.any():
            # Uniform over unused resources for exhausted samples; redo
            # the CDF for just those columns (mass is a view, so it sees
            # the fix).
            probs[:, dead] = unused[:, dead]
            cdf[:, dead] = np.cumsum(probs[:, dead], axis=0)
        np.multiply(rand_pos[pos], mass, out=u)
        np.less_equal(cdf, u[np.newaxis, :], out=below)
        # choice = below.sum(axis=0), as contiguous row adds.
        np.copyto(choice, below[0], casting="unsafe")
        for i in range(1, n_res):
            choice += below[i]
        # Float-edge guard. A mid-range draw can never land on a used
        # (zero-probability) resource: that would need
        # cdf[c-1] <= u < cdf[c] with cdf[c] == cdf[c-1]. Only the
        # overflow case u >= mass (rounding at rand ~ 1.0) needs care:
        # clamp it and, if the last resource is taken, fall back to the
        # first unused one — probability ~ machine epsilon, so one cheap
        # max() replaces a per-position gathered mask check.
        if int(choice.max()) == n_res:
            over = choice == n_res
            choice[over] = n_res - 1
            bad = over & (unused[n_res - 1] == 0.0)  # repro: noqa[float-equality] -- consumed mass is written as exact 0.0 below
            if bad.any():
                choice[bad] = np.argmax(unused[:, bad], axis=0)
        X[rows, tasks] = choice
        unused[choice, rows] = 0.0
        if square:
            rem -= choice
    return X


# -- O(deg) delta probes -----------------------------------------------------

def _apply_move(
    pack: ProblemPack, exec_s: np.ndarray, x: np.ndarray, task: int, dest: int
) -> None:
    """In-place: relocate ``task`` to ``dest`` updating ``exec_s`` and ``x``."""
    W = pack.task_weights
    w = pack.proc_weights
    ccm = pack.comm
    src = x[task]
    if src == dest:
        return
    exec_s[src] -= W[task] * w[src]
    exec_s[dest] += W[task] * w[dest]
    lo, hi = pack.off[task], pack.off[task + 1]
    for k in range(lo, hi):
        a = pack.nbr[k]
        c_vol = pack.nbr_vol[k]
        m = x[a]
        if m != src:
            exec_s[src] -= c_vol * ccm[src, m]
            exec_s[m] -= c_vol * ccm[m, src]
        if m != dest:
            exec_s[dest] += c_vol * ccm[dest, m]
            exec_s[m] += c_vol * ccm[m, dest]
    x[task] = dest


def move_cost(
    pack: ProblemPack, exec_s: np.ndarray, x: np.ndarray, task: int, dest: int
) -> float:
    """Eq. (2) cost if ``task`` were moved to ``dest`` (no state change)."""
    ex = exec_s.copy()
    xs = x.copy()
    _apply_move(pack, ex, xs, task, dest)
    return float(ex.max())


def swap_cost(
    pack: ProblemPack, exec_s: np.ndarray, x: np.ndarray, t1: int, t2: int
) -> float:
    """Eq. (2) cost if tasks ``t1`` and ``t2`` exchanged resources."""
    ex = exec_s.copy()
    xs = x.copy()
    s1, s2 = xs[t1], xs[t2]
    _apply_move(pack, ex, xs, t1, s2)
    _apply_move(pack, ex, xs, t2, s1)
    return float(ex.max())


def swap_costs(
    pack: ProblemPack, exec_s: np.ndarray, x: np.ndarray, pairs: np.ndarray
) -> np.ndarray:
    """Batched swap probes: ``out[p]`` = swap cost of ``pairs[p]``."""
    K = pairs.shape[0]
    out = np.empty(K, dtype=np.float64)
    for p in range(K):
        out[p] = swap_cost(pack, exec_s, x, int(pairs[p, 0]), int(pairs[p, 1]))
    return out
