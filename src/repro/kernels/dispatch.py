"""Backend selection for the compiled kernel layer.

One dispatch point decides, per process, which implementation of the hot
kernels runs: ``numba`` (JIT of the spec loops), ``cext`` (the
system-cc-compiled C translation), or ``numpy`` (the vectorized
reference, always available). Selection:

* ``REPRO_KERNEL`` environment variable or the CLI ``--kernel`` flag
  (which just sets the variable, so pool workers inherit it):
  ``auto`` (default), ``numba``, ``cext``, ``numpy``.
* ``auto`` tries ``numba -> cext -> numpy`` and *silently* falls back —
  a missing optional dependency or an unusable compiler must never
  change behaviour, only speed (every backend is bit-identical, see
  :mod:`repro.kernels._loops`).
* naming an unavailable backend explicitly raises
  :class:`~repro.exceptions.ConfigurationError` carrying the load
  error — an explicit request must not silently degrade.

Backends load lazily and memoize per process; evaluators resolve their
backend once at construction (a :class:`KernelBackend` is immutable), so
mid-run environment edits cannot desynchronize a live solver.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.exceptions import ConfigurationError
from repro.kernels import impl_numpy
from repro.kernels.impl_cext import KernelUnavailable

__all__ = [
    "KernelBackend",
    "KERNEL_CHOICES",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "reset_kernel_state",
]

#: Valid values for REPRO_KERNEL / --kernel.
KERNEL_CHOICES = ("auto", "numba", "cext", "numpy")

#: auto-resolution order: fastest first, numpy as the unconditional floor.
_AUTO_ORDER = ("numba", "cext", "numpy")


@dataclass(frozen=True)
class KernelBackend:
    """Immutable function table of one resolved backend."""

    name: str
    compiled: bool
    times_batch: Callable
    eval_batch: Callable
    genperm: Callable
    move_cost: Callable
    swap_cost: Callable
    swap_costs: Callable


def _numpy_backend() -> KernelBackend:
    return KernelBackend(
        name="numpy",
        compiled=False,
        times_batch=impl_numpy.times_batch,
        eval_batch=impl_numpy.eval_batch,
        genperm=impl_numpy.genperm,
        move_cost=impl_numpy.move_cost,
        swap_cost=impl_numpy.swap_cost,
        swap_costs=impl_numpy.swap_costs,
    )


def _compiled_backend(name: str, impl: object) -> KernelBackend:
    return KernelBackend(
        name=name,
        compiled=True,
        times_batch=impl.times_batch,
        eval_batch=impl.eval_batch,
        genperm=impl.genperm,
        move_cost=impl.move_cost,
        swap_cost=impl.swap_cost,
        swap_costs=impl.swap_costs,
    )


#: name -> loaded backend (or None after a failed load); per-process memo.
_loaded: dict[str, KernelBackend | None] = {}
#: name -> human-readable load failure, for error messages/diagnostics.
_load_errors: dict[str, str] = {}
#: explicit set_backend() override; None defers to REPRO_KERNEL.
_override: KernelBackend | None = None


def _load(name: str) -> KernelBackend | None:
    if name in _loaded:
        return _loaded[name]
    backend: KernelBackend | None = None
    try:
        if name == "numpy":
            backend = _numpy_backend()
        elif name == "cext":
            from repro.kernels import impl_cext

            backend = _compiled_backend("cext", impl_cext.load())
        elif name == "numba":
            from repro.kernels import impl_numba

            backend = _compiled_backend("numba", impl_numba.load())
        else:
            raise ConfigurationError(
                f"unknown kernel backend {name!r}; choices: {', '.join(KERNEL_CHOICES)}"
            )
    except KernelUnavailable as exc:
        _load_errors[name] = str(exc)
    _loaded[name] = backend
    return backend


def available_backends() -> dict[str, bool]:
    """Load-or-probe every backend; maps name -> availability here."""
    return {name: _load(name) is not None for name in _AUTO_ORDER}


def load_error(name: str) -> str | None:
    """Why ``name`` failed to load (None if it loaded or was never tried)."""
    _load(name)
    return _load_errors.get(name)


def get_backend() -> KernelBackend:
    """The process-active backend (override, else ``REPRO_KERNEL``, else auto)."""
    if _override is not None:
        return _override
    choice = os.environ.get("REPRO_KERNEL", "auto").strip().lower() or "auto"
    return _resolve(choice)


def _resolve(choice: str) -> KernelBackend:
    if choice not in KERNEL_CHOICES:
        raise ConfigurationError(
            f"unknown kernel backend {choice!r}; choices: {', '.join(KERNEL_CHOICES)}"
        )
    if choice == "auto":
        for name in _AUTO_ORDER:
            backend = _load(name)
            if backend is not None:
                return backend
        raise ConfigurationError(  # pragma: no cover - numpy always loads
            "no kernel backend available"
        )
    backend = _load(choice)
    if backend is None:
        reason = _load_errors.get(choice, "unknown load failure")
        raise ConfigurationError(
            f"kernel backend {choice!r} requested but unavailable: {reason}"
        )
    return backend


def set_backend(choice: str | None) -> KernelBackend | None:
    """Pin the process-active backend (``None`` reverts to env resolution)."""
    global _override
    if choice is None:
        _override = None
        return None
    _override = _resolve(choice)
    return _override


@contextmanager
def use_backend(choice: str) -> Iterator[KernelBackend]:
    """Temporarily pin a backend — the parity tests' workhorse."""
    global _override
    previous = _override
    _override = _resolve(choice)
    try:
        yield _override
    finally:
        _override = previous


def reset_kernel_state() -> None:
    """Forget loads, errors and overrides (tests that fake environments)."""
    global _override
    _override = None
    _loaded.clear()
    _load_errors.clear()
