"""The C kernel backend: ``kernels.c`` compiled on demand via the system cc.

Plain C through ctypes — no ``Python.h``, no build-time dependency beyond
a working C compiler, and one cached shared object serves every
interpreter version. The compile happens at most once per source digest:
the object lands in ``$REPRO_KERNEL_CACHE`` (default
``~/.cache/repro-kernels``) under a name keyed on a SHA-256 of the
source, written via a temp file + atomic rename so concurrent processes
race benignly. Any failure — no compiler, sandboxed filesystem, bad
flags — raises :class:`KernelUnavailable`, which the dispatcher treats
as "this backend does not exist here".

Flags are part of the bit-exactness contract: ``-ffp-contract=off``
forbids fused multiply-adds (GNU C defaults to ``fast`` contraction at
``-O3``, which would change last-ulp results against numpy) and no
``-ffast-math`` is ever passed.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.kernels.csr import ProblemPack

__all__ = ["KernelUnavailable", "load"]

_SOURCE = Path(__file__).with_name("kernels.c")
_CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off")

_F64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_c_i64 = ctypes.c_int64


class KernelUnavailable(RuntimeError):
    """This backend cannot be loaded in the current environment."""


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-kernels"


def _compiler() -> str:
    cc = os.environ.get("REPRO_CC") or shutil.which("cc") or shutil.which("gcc")
    if not cc:
        raise KernelUnavailable("no C compiler found (set REPRO_CC to override)")
    return cc


def _shared_object() -> Path:
    """Compile (once per source digest) and return the .so path."""
    try:
        source = _SOURCE.read_bytes()
    except OSError as exc:
        raise KernelUnavailable(f"kernel source unreadable: {exc}") from exc
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"repro_kernels_{digest}.so"
    if so_path.exists():
        return so_path
    cc = _compiler()
    try:
        cache.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache)
        os.close(fd)
    except OSError as exc:
        raise KernelUnavailable(f"kernel cache dir unusable: {exc}") from exc
    try:
        proc = subprocess.run(
            [cc, *_CFLAGS, "-o", tmp, str(_SOURCE)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            raise KernelUnavailable(
                f"C kernel compile failed ({cc}): {proc.stderr.strip()[:500]}"
            )
        os.replace(tmp, so_path)  # atomic: concurrent builders race benignly
    except (OSError, subprocess.SubprocessError) as exc:
        raise KernelUnavailable(f"C kernel compile failed: {exc}") from exc
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return so_path


def _bind(lib: ctypes.CDLL) -> None:
    batch_args = [
        _I64, _c_i64, _c_i64, _c_i64,  # X, N, n_t, n_r
        _F64, _F64, _F64,  # W, w, ccm_flat
        _I64, _I64, _F64, _c_i64,  # eu, ev, C, n_e
        _F64,  # out
    ]
    lib.repro_times_batch.argtypes = batch_args
    lib.repro_times_batch.restype = ctypes.c_int
    lib.repro_eval_batch.argtypes = batch_args
    lib.repro_eval_batch.restype = ctypes.c_int
    lib.repro_genperm.argtypes = [
        _F64, _I64, _I64, _F64, _c_i64, _c_i64, _c_i64, _I64,
    ]
    lib.repro_genperm.restype = ctypes.c_int
    probe_head = [
        _F64, _I64, _c_i64, _c_i64,  # exec_s, x, n_t, n_r
        _F64, _F64, _F64,  # W, w, ccm_flat
        _I64, _I64, _F64,  # off, nbr, vol
    ]
    out_d = ctypes.POINTER(ctypes.c_double)
    lib.repro_move_cost.argtypes = [*probe_head, _c_i64, _c_i64, out_d]
    lib.repro_move_cost.restype = ctypes.c_int
    lib.repro_swap_cost.argtypes = [*probe_head, _c_i64, _c_i64, out_d]
    lib.repro_swap_cost.restype = ctypes.c_int
    lib.repro_swap_costs.argtypes = [*probe_head, _I64, _c_i64, _F64]
    lib.repro_swap_costs.restype = ctypes.c_int


class _CExtKernels:
    """Backend function table bound to the loaded shared object."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib

    @staticmethod
    def _check(status: int) -> None:
        if status != 0:
            raise MemoryError("C kernel scratch allocation failed")

    def times_batch(self, pack: ProblemPack, X: np.ndarray) -> np.ndarray:
        X = np.ascontiguousarray(X, dtype=np.int64)
        N = X.shape[0]
        out = np.empty((N, pack.n_resources), dtype=np.float64)
        self._check(
            self._lib.repro_times_batch(
                X, N, pack.n_tasks, pack.n_resources,
                pack.task_weights, pack.proc_weights, pack.comm_flat,
                pack.eu, pack.ev, pack.edge_vol, pack.eu.shape[0], out,
            )
        )
        return out

    def eval_batch(self, pack: ProblemPack, X: np.ndarray) -> np.ndarray:
        X = np.ascontiguousarray(X, dtype=np.int64)
        N = X.shape[0]
        out = np.empty(N, dtype=np.float64)
        self._check(
            self._lib.repro_eval_batch(
                X, N, pack.n_tasks, pack.n_resources,
                pack.task_weights, pack.proc_weights, pack.comm_flat,
                pack.eu, pack.ev, pack.edge_vol, pack.eu.shape[0], out,
            )
        )
        return out

    def genperm(
        self,
        P_rows: np.ndarray,
        row_offsets: np.ndarray | None,
        task_orders: np.ndarray,
        rand_pos: np.ndarray,
        n_res: int,
    ) -> np.ndarray:
        B, n_t = task_orders.shape
        if row_offsets is None:
            row_offsets = np.zeros(B, dtype=np.int64)
        P_rows = np.ascontiguousarray(P_rows, dtype=np.float64)
        task_orders = np.ascontiguousarray(task_orders, dtype=np.int64)
        rand_pos = np.ascontiguousarray(rand_pos, dtype=np.float64)
        row_offsets = np.ascontiguousarray(row_offsets, dtype=np.int64)
        X = np.empty((B, n_t), dtype=np.int64)
        self._check(
            self._lib.repro_genperm(
                P_rows, row_offsets, task_orders, rand_pos, B, n_t, n_res, X
            )
        )
        return X

    def _probe_args(self, pack: ProblemPack, exec_s: np.ndarray, x: np.ndarray):
        return (
            exec_s, x, pack.n_tasks, pack.n_resources,
            pack.task_weights, pack.proc_weights, pack.comm_flat,
            pack.off, pack.nbr, pack.nbr_vol,
        )

    def move_cost(
        self, pack: ProblemPack, exec_s: np.ndarray, x: np.ndarray,
        task: int, dest: int,
    ) -> float:
        out = ctypes.c_double()
        self._check(
            self._lib.repro_move_cost(
                *self._probe_args(pack, exec_s, x), task, dest, ctypes.byref(out)
            )
        )
        return out.value

    def swap_cost(
        self, pack: ProblemPack, exec_s: np.ndarray, x: np.ndarray,
        t1: int, t2: int,
    ) -> float:
        out = ctypes.c_double()
        self._check(
            self._lib.repro_swap_cost(
                *self._probe_args(pack, exec_s, x), t1, t2, ctypes.byref(out)
            )
        )
        return out.value

    def swap_costs(
        self, pack: ProblemPack, exec_s: np.ndarray, x: np.ndarray,
        pairs: np.ndarray,
    ) -> np.ndarray:
        pairs = np.ascontiguousarray(pairs, dtype=np.int64)
        out = np.empty(pairs.shape[0], dtype=np.float64)
        self._check(
            self._lib.repro_swap_costs(
                *self._probe_args(pack, exec_s, x), pairs, pairs.shape[0], out
            )
        )
        return out


def load() -> _CExtKernels:
    """Compile if needed, load the shared object, smoke-test one call."""
    so_path = _shared_object()
    try:
        lib = ctypes.CDLL(str(so_path))
        _bind(lib)
    except (OSError, AttributeError) as exc:
        raise KernelUnavailable(f"C kernel library unusable: {exc}") from exc
    kernels = _CExtKernels(lib)
    # Smoke test: a stale or truncated cache entry must fail here, not
    # mid-run. One row, one resource, no edges.
    probe = kernels.eval_batch(
        _SmokePack(), np.zeros((1, 1), dtype=np.int64)
    )
    if probe.shape != (1,) or probe[0] != 2.0:  # repro: noqa[float-equality] -- 1.0*2.0 is exact
        raise KernelUnavailable("C kernel smoke test returned wrong result")
    return kernels


class _SmokePack(ProblemPack):
    """One-task, one-resource pack used by the load-time smoke test."""

    def __init__(self) -> None:
        super().__init__(
            n_tasks=1,
            n_resources=1,
            task_weights=np.array([1.0]),
            proc_weights=np.array([2.0]),
            comm=np.zeros((1, 1)),
            eu=np.zeros(0, dtype=np.int64),
            ev=np.zeros(0, dtype=np.int64),
            edge_vol=np.zeros(0, dtype=np.float64),
            off=np.zeros(2, dtype=np.int64),
            nbr=np.zeros(0, dtype=np.int64),
            nbr_vol=np.zeros(0, dtype=np.float64),
        )
