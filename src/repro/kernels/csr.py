"""Flat, kernel-ready packing of a mapping problem (``ProblemPack``).

Every compiled kernel consumes the same CSR-packed view of a
:class:`~repro.mapping.problem.MappingProblem`: contiguous float64/int64
arrays with no Python objects behind them, so the numba, C and numpy
backends all read identical bytes. The pack is built once per
:class:`~repro.mapping.cost_model.CostModel` and shared by every
evaluator attacking the instance.

Layout
------
* ``task_weights`` ``(n_t,)`` / ``proc_weights`` ``(n_r,)`` — Eq. (1)
  compute terms.
* ``comm`` ``(n_r, n_r)`` C-contiguous; ``comm_flat`` is its raveled
  view, so ``comm_flat[s * n_r + b] == comm[s, b]`` — the flat 1-D
  lookup every kernel uses.
* ``eu`` / ``ev`` / ``edge_vol`` ``(E,)`` — the TIG edge list in file
  order, driving the batched scoring kernels.
* ``off`` / ``nbr`` / ``nbr_vol`` — CSR adjacency over tasks for the
  O(deg) delta kernels: the neighbors of ``t`` are
  ``nbr[off[t]:off[t+1]]`` with volumes ``nbr_vol[...]``.

The CSR build must reproduce, *exactly*, the neighbor order of the
historical Python loop in ``mapping/incremental.py`` (edges visited in
file order, the ``u``-side entry appended before the ``v``-side entry of
the same edge): delta updates accumulate floats in neighbor order, so a
different order would change last-ulp results and break the golden
fixtures. Interleaving the endpoint columns (``edges.ravel()`` gives
``u0, v0, u1, v1, ...``) and stable-argsorting by source task yields
precisely that order with no Python-level loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapping.problem import MappingProblem

__all__ = ["ProblemPack", "build_pack", "build_adjacency"]


def build_adjacency(
    edges: np.ndarray, edge_vol: np.ndarray, n_tasks: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR task adjacency ``(off, nbr, nbr_vol)`` in historical neighbor order.

    Per task ``t`` the neighbors appear in ascending edge-index order,
    with the ``u``-side entry of an edge preceding its ``v``-side entry —
    bit-compatible with the appending loop this build replaces.
    """
    off = np.zeros(n_tasks + 1, dtype=np.int64)
    if not edges.size:
        return off, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    edges = np.ascontiguousarray(edges, dtype=np.int64)
    src = edges.ravel()  # u0, v0, u1, v1, ... — interleaved endpoint order
    dst = edges[:, ::-1].ravel()  # v0, u0, v1, u1, ...
    vol2 = np.repeat(np.asarray(edge_vol, dtype=np.float64), 2)
    order = np.argsort(src, kind="stable")
    deg = np.bincount(src, minlength=n_tasks)
    np.cumsum(deg, out=off[1:])
    return off, np.ascontiguousarray(dst[order]), np.ascontiguousarray(vol2[order])


class ProblemPack:
    """Contiguous array bundle consumed by every kernel backend."""

    __slots__ = (
        "n_tasks", "n_resources", "task_weights", "proc_weights",
        "comm", "comm_flat", "eu", "ev", "edge_vol", "off", "nbr", "nbr_vol",
    )

    def __init__(
        self,
        n_tasks: int,
        n_resources: int,
        task_weights: np.ndarray,
        proc_weights: np.ndarray,
        comm: np.ndarray,
        eu: np.ndarray,
        ev: np.ndarray,
        edge_vol: np.ndarray,
        off: np.ndarray,
        nbr: np.ndarray,
        nbr_vol: np.ndarray,
    ) -> None:
        self.n_tasks = int(n_tasks)
        self.n_resources = int(n_resources)
        self.task_weights = task_weights
        self.proc_weights = proc_weights
        self.comm = comm
        self.comm_flat = comm.ravel()  # contiguous view: comm_flat[s*n_r+b]
        self.eu = eu
        self.ev = ev
        self.edge_vol = edge_vol
        self.off = off
        self.nbr = nbr
        self.nbr_vol = nbr_vol


def build_pack(problem: "MappingProblem") -> ProblemPack:
    """Snapshot ``problem`` into kernel-ready contiguous arrays."""
    edges = problem.edges
    if edges.size:
        eu = np.ascontiguousarray(edges[:, 0], dtype=np.int64)
        ev = np.ascontiguousarray(edges[:, 1], dtype=np.int64)
        edge_vol = np.ascontiguousarray(problem.edge_weights, dtype=np.float64)
    else:
        eu = np.zeros(0, dtype=np.int64)
        ev = np.zeros(0, dtype=np.int64)
        edge_vol = np.zeros(0, dtype=np.float64)
    off, nbr, nbr_vol = build_adjacency(edges, edge_vol, problem.n_tasks)
    return ProblemPack(
        n_tasks=problem.n_tasks,
        n_resources=problem.n_resources,
        task_weights=np.ascontiguousarray(problem.task_weights, dtype=np.float64),
        proc_weights=np.ascontiguousarray(problem.proc_weights, dtype=np.float64),
        comm=np.ascontiguousarray(problem.comm_costs, dtype=np.float64),
        eu=eu,
        ev=ev,
        edge_vol=edge_vol,
        off=off,
        nbr=nbr,
        nbr_vol=nbr_vol,
    )
