"""Scalar loop bodies of the hot kernels — the compiled backends' source.

Each function here is the *executable specification* of one kernel:
plain-Python loops over flat arrays, written in the restricted style the
numba ``nopython`` compiler accepts (no closures, no Python objects, no
keyword tricks), so :mod:`repro.kernels.impl_numba` can compile these
exact bodies with ``@njit(cache=True)`` and the C translation in
``kernels.c`` can mirror them statement for statement. Running them
uncompiled is slow but always available — the parity test matrix pins
every backend (numpy vectorized, numba, C) against these loops
bit-for-bit, which is what lets the numba backend ship untested-locally
containers and still be trusted: it compiles the very bodies the suite
verifies.

Bit-exactness rules (verified by ``tests/kernels/``):

* additions happen in the same order as the vectorized numpy path
  (``bincount`` accumulates per bucket in input order; the three Eq. (1)
  terms combine as ``(proc + acc_s) + acc_b``);
* every product is a single IEEE multiply — the C build disables FP
  contraction (``-ffp-contract=off``) and numba's default
  ``fastmath=False`` is IEEE-strict, so no backend fuses a
  multiply-add the others do not;
* GenPerm consumes pre-drawn uniforms only (the RNG never enters a
  kernel), so the stream position is backend-invariant by construction.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "times_batch_loops",
    "eval_batch_loops",
    "genperm_loops",
    "move_cost_loops",
    "swap_cost_loops",
    "swap_costs_loops",
]


def times_batch_loops(X, W, w, ccm_flat, eu, ev, C, n_r):
    """Eq. (1) for a batch: ``(N, n_r)`` per-resource times.

    Mirrors the numpy ``bincount`` path: the processing term accumulates
    per resource in ascending task order, each edge term in ascending
    edge order, and the three partial sums combine left-to-right.
    """
    N, n_t = X.shape
    n_e = eu.shape[0]
    out = np.empty((N, n_r), dtype=np.float64)
    proc = np.zeros(n_r, dtype=np.float64)
    acc_s = np.zeros(n_r, dtype=np.float64)
    acc_b = np.zeros(n_r, dtype=np.float64)
    for j in range(N):
        for r in range(n_r):
            proc[r] = 0.0
            acc_s[r] = 0.0
            acc_b[r] = 0.0
        for t in range(n_t):
            s = X[j, t]
            proc[s] += W[t] * w[s]
        for e in range(n_e):
            s = X[j, eu[e]]
            b = X[j, ev[e]]
            link = C[e] * ccm_flat[s * n_r + b]
            acc_s[s] += link
            acc_b[b] += link
        for r in range(n_r):
            out[j, r] = (proc[r] + acc_s[r]) + acc_b[r]
    return out


def eval_batch_loops(X, W, w, ccm_flat, eu, ev, C, n_r):
    """Eq. (2) for a batch: row-wise max of :func:`times_batch_loops`."""
    N, n_t = X.shape
    n_e = eu.shape[0]
    out = np.empty(N, dtype=np.float64)
    proc = np.zeros(n_r, dtype=np.float64)
    acc_s = np.zeros(n_r, dtype=np.float64)
    acc_b = np.zeros(n_r, dtype=np.float64)
    for j in range(N):
        for r in range(n_r):
            proc[r] = 0.0
            acc_s[r] = 0.0
            acc_b[r] = 0.0
        for t in range(n_t):
            s = X[j, t]
            proc[s] += W[t] * w[s]
        for e in range(n_e):
            s = X[j, eu[e]]
            b = X[j, ev[e]]
            link = C[e] * ccm_flat[s * n_r + b]
            acc_s[s] += link
            acc_b[b] += link
        best = (proc[0] + acc_s[0]) + acc_b[0]
        for r in range(1, n_r):
            v = (proc[r] + acc_s[r]) + acc_b[r]
            if v > best:
                best = v
        out[j] = best
    return out


def genperm_loops(P_rows, row_offsets, task_orders, rand_pos, n_res):
    """GenPerm position loop over a flattened sample batch (Fig. 4).

    Parameters mirror the backend API: ``P_rows`` is the
    ``(n_dists * n_tasks, n_res)`` row-major matrix stack, sample ``j``
    draws task ``t``'s distribution from row ``row_offsets[j] + t``, and
    ``rand_pos[pos, j]`` is the pre-drawn roulette uniform of visit
    position ``pos``. Scalar transcription of the vectorized loop in
    :mod:`repro.kernels.impl_numpy`: multiply-masked running CDF,
    uniform-over-unused fallback for dead rows, count-of-entries-at-or-
    below inverse draw (the CDF is monotone, so counting the leading run
    equals counting all entries), and the overflow clamp for draws that
    round past the total mass.
    """
    B, n_tasks = task_orders.shape
    X = np.full((B, n_tasks), -1, dtype=np.int64)
    unused = np.ones((B, n_res), dtype=np.float64)
    cdf = np.empty(n_res, dtype=np.float64)
    # Square case: the final placement is forced; track the remaining
    # resource as a running index sum exactly like the numpy path (the
    # final uniform was still pre-drawn, so streams stay aligned).
    square = n_tasks == n_res
    rem = np.zeros(B, dtype=np.int64)
    if square:
        for j in range(B):
            rem[j] = n_res * (n_res - 1) // 2
    for pos in range(n_tasks):
        if square and pos == n_tasks - 1:
            for j in range(B):
                X[j, task_orders[j, pos]] = rem[j]
            break
        for j in range(B):
            task = task_orders[j, pos]
            row = row_offsets[j] + task
            acc = 0.0
            for i in range(n_res):
                acc = acc + P_rows[row, i] * unused[j, i]
                cdf[i] = acc
            mass = cdf[n_res - 1]
            if mass <= 0.0:
                # Dead row: uniform over the unused resources.
                acc = 0.0
                for i in range(n_res):
                    acc = acc + unused[j, i]
                    cdf[i] = acc
                mass = cdf[n_res - 1]
            u = rand_pos[pos, j] * mass
            choice = 0
            while choice < n_res and cdf[choice] <= u:
                choice += 1
            if choice == n_res:
                # Float-edge overflow (u >= mass): clamp, and if the last
                # resource is already taken fall back to the first unused.
                choice = n_res - 1
                if unused[j, n_res - 1] == 0.0:  # repro: noqa[float-equality] -- consumed mass is written as exact 0.0 below
                    for i in range(n_res):
                        if unused[j, i] == 1.0:  # repro: noqa[float-equality] -- mask entries are exact 0.0/1.0
                            choice = i
                            break
            X[j, task] = choice
            unused[j, choice] = 0.0
            if square:
                rem[j] -= choice
    return X


# The three probe kernels below inline the same O(deg) relocation update
# (the body of ``IncrementalEvaluator._apply_move``) instead of sharing a
# helper: numba compiles each function independently and the parity suite
# pins all three against the evaluator, so the duplication cannot drift.

def move_cost_loops(exec_s, x, task, dest, W, w, ccm_flat, n_r, off, nbr, vol):
    """Eq. (2) cost if ``task`` moved to ``dest``; no state change."""
    ex = exec_s.copy()
    src = x[task]
    if src != dest:
        ex[src] -= W[task] * w[src]
        ex[dest] += W[task] * w[dest]
        for k in range(off[task], off[task + 1]):
            m = x[nbr[k]]
            cv = vol[k]
            if m != src:
                ex[src] -= cv * ccm_flat[src * n_r + m]
                ex[m] -= cv * ccm_flat[m * n_r + src]
            if m != dest:
                ex[dest] += cv * ccm_flat[dest * n_r + m]
                ex[m] += cv * ccm_flat[m * n_r + dest]
    best = ex[0]
    for r in range(1, n_r):
        if ex[r] > best:
            best = ex[r]
    return best


def swap_cost_loops(exec_s, x, t1, t2, W, w, ccm_flat, n_r, off, nbr, vol):
    """Eq. (2) cost if ``t1`` and ``t2`` exchanged resources.

    Two sequential relocations on scratch state (``t1 -> x[t2]`` then
    ``t2 -> old x[t1]``) — the second move reads the updated assignment,
    exactly like the evaluator it mirrors.
    """
    ex = exec_s.copy()
    xs = x.copy()
    s1 = xs[t1]
    s2 = xs[t2]
    src = s1
    dest = s2
    task = t1
    for _rep in range(2):
        if src != dest:
            ex[src] -= W[task] * w[src]
            ex[dest] += W[task] * w[dest]
            for k in range(off[task], off[task + 1]):
                m = xs[nbr[k]]
                cv = vol[k]
                if m != src:
                    ex[src] -= cv * ccm_flat[src * n_r + m]
                    ex[m] -= cv * ccm_flat[m * n_r + src]
                if m != dest:
                    ex[dest] += cv * ccm_flat[dest * n_r + m]
                    ex[m] += cv * ccm_flat[m * n_r + dest]
            xs[task] = dest
        task = t2
        src = s2
        dest = s1
    best = ex[0]
    for r in range(1, n_r):
        if ex[r] > best:
            best = ex[r]
    return best


def swap_costs_loops(exec_s, x, pairs, W, w, ccm_flat, n_r, off, nbr, vol):
    """Batched swap probes: ``out[p]`` = swap cost of ``pairs[p]``."""
    K = pairs.shape[0]
    n_t = x.shape[0]
    out = np.empty(K, dtype=np.float64)
    ex = np.empty(n_r, dtype=np.float64)
    xs = np.empty(n_t, dtype=np.int64)
    for p in range(K):
        for r in range(n_r):
            ex[r] = exec_s[r]
        for t in range(n_t):
            xs[t] = x[t]
        t1 = pairs[p, 0]
        t2 = pairs[p, 1]
        s1 = xs[t1]
        s2 = xs[t2]
        src = s1
        dest = s2
        task = t1
        for _rep in range(2):
            if src != dest:
                ex[src] -= W[task] * w[src]
                ex[dest] += W[task] * w[dest]
                for k in range(off[task], off[task + 1]):
                    m = xs[nbr[k]]
                    cv = vol[k]
                    if m != src:
                        ex[src] -= cv * ccm_flat[src * n_r + m]
                        ex[m] -= cv * ccm_flat[m * n_r + src]
                    if m != dest:
                        ex[dest] += cv * ccm_flat[dest * n_r + m]
                        ex[m] += cv * ccm_flat[m * n_r + dest]
                xs[task] = dest
            task = t2
            src = s2
            dest = s1
        best = ex[0]
        for r in range(1, n_r):
            if ex[r] > best:
                best = ex[r]
        out[p] = best
    return out
