"""repro — a full reproduction of *MaTCH: Mapping Data-Parallel Tasks on a
Heterogeneous Computing Platform Using the Cross-Entropy Heuristic*
(Sanyal & Das, IPDPS 2005).

Quickstart
----------
>>> from repro import generate_paper_pair, MappingProblem, MatchMapper
>>> pair = generate_paper_pair(20, 42)
>>> problem = MappingProblem(pair.tig, pair.resources, require_square=True)
>>> result = MatchMapper().map(problem, 42)
>>> result.execution_time > 0
True

Package map
-----------
* :mod:`repro.graphs` — TIGs, resource graphs, §5.2 generators;
* :mod:`repro.overset` — synthetic overset-grid CFD scenarios (Fig. 1);
* :mod:`repro.mapping` — the Eq. (1)/(2) cost model (reference + batched);
* :mod:`repro.ce` — the cross-entropy method library (GenPerm, updates,
  continuous CE, rare-event CE);
* :mod:`repro.core` — MaTCH and its adaptive/distributed variants;
* :mod:`repro.baselines` — FastMap-GA and auxiliary heuristics;
* :mod:`repro.simulate` — discrete-event platform simulator;
* :mod:`repro.stats` — ANOVA, confidence intervals, F/t distributions;
* :mod:`repro.experiments` — every table/figure of the paper as code.
"""

from repro._version import __version__
from repro.baselines import (
    FastMapGA,
    GAConfig,
    GreedyConstructiveMapper,
    LocalSearchMapper,
    Mapper,
    MapperResult,
    RandomSearchMapper,
    SimulatedAnnealingMapper,
)
from repro.ce import CEConfig, CEResult, CrossEntropyOptimizer, StochasticMatrix
from repro.core import (
    AdaptiveMatchMapper,
    DistributedMatchMapper,
    MatchConfig,
    MatchMapper,
    MatchResult,
    match_map,
)
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    ExperimentError,
    GraphError,
    MappingError,
    ReproError,
    SerializationError,
    SimulationError,
    ValidationError,
)
from repro.graphs import (
    GraphPair,
    ResourceGraph,
    TaskInteractionGraph,
    WeightedGraph,
    generate_paper_pair,
    generate_resource_graph,
    generate_tig,
)
from repro.mapping import (
    CostModel,
    IncrementalEvaluator,
    Mapping,
    MappingProblem,
    TurnaroundRecord,
    evaluate_reference,
)
from repro.overset import build_tig, generate_overset_scenario
from repro.simulate import IterativeWorkload, PlatformSimulator
from repro.stats import one_way_anova, summarize_sample

__all__ = [
    "__version__",
    # graphs
    "WeightedGraph",
    "TaskInteractionGraph",
    "ResourceGraph",
    "GraphPair",
    "generate_tig",
    "generate_resource_graph",
    "generate_paper_pair",
    # overset
    "generate_overset_scenario",
    "build_tig",
    # mapping
    "MappingProblem",
    "Mapping",
    "CostModel",
    "evaluate_reference",
    "IncrementalEvaluator",
    "TurnaroundRecord",
    # CE + MaTCH
    "StochasticMatrix",
    "CEConfig",
    "CEResult",
    "CrossEntropyOptimizer",
    "MatchConfig",
    "MatchMapper",
    "MatchResult",
    "match_map",
    "AdaptiveMatchMapper",
    "DistributedMatchMapper",
    # baselines
    "Mapper",
    "MapperResult",
    "FastMapGA",
    "GAConfig",
    "RandomSearchMapper",
    "LocalSearchMapper",
    "SimulatedAnnealingMapper",
    "GreedyConstructiveMapper",
    # simulate
    "PlatformSimulator",
    "IterativeWorkload",
    # stats
    "one_way_anova",
    "summarize_sample",
    # exceptions
    "ReproError",
    "ValidationError",
    "GraphError",
    "MappingError",
    "ConvergenceError",
    "ConfigurationError",
    "SimulationError",
    "ExperimentError",
    "SerializationError",
]
