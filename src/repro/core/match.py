"""MaTCH — Mapping Tasks using the Cross-Entropy Heuristic (Fig. 5).

The paper's contribution: specialise the CE method to the heterogeneous
mapping problem by

1. parameterizing the sampling distribution as a task×resource stochastic
   matrix, initially uniform (``P_0[i,j] = 1/|V_r|``);
2. sampling valid one-to-one mappings with GenPerm (Fig. 4);
3. scoring with the Eq. (2) execution time;
4. updating ``P`` from the elite ``ρ`` quantile via Eq. (11), smoothed by
   Eq. (13) with ``ζ = 0.3``;
5. stopping when the matrix commits (Eq. (12)).

:class:`MatchMapper` implements the :class:`~repro.baselines.base.Mapper`
interface (so the experiment harness treats it like any heuristic) and
exposes the full CE diagnostics through
:class:`~repro.core.result.MatchResult`.

Both the single run (one CE iteration per
:class:`~repro.runtime.loop.SearchLoop` step) and the fused ``map_many``
repetitions (one *joint* multi-chain iteration per step) run inside the
unified solver runtime, so budgets, hooks and checkpoints govern MaTCH
exactly as they govern every baseline.
"""

from __future__ import annotations

from typing import Any, ClassVar, Sequence

import numpy as np

from repro.baselines.base import Mapper, MapperResult, MapperSolver
from repro.ce.multichain import MultiChainCE, MultiChainResult
from repro.ce.optimizer import CrossEntropyOptimizer
from repro.core.config import MatchConfig
from repro.core.result import MatchResult
from repro.exceptions import ConfigurationError
from repro.mapping.cost_model import CostModel
from repro.mapping.problem import MappingProblem
from repro.runtime.budget import EvaluationBudget
from repro.runtime.hooks import SearchHooks
from repro.runtime.loop import SearchLoop
from repro.runtime.solver import SearchSolver, SolveOutput, StepReport
from repro.types import SeedLike

__all__ = ["MatchMapper", "match_map", "FUSED_CROSSOVER_MAX_TASKS", "prefer_fused"]

#: Measured fused/serial crossover for :meth:`MatchMapper.map_many`.
#:
#: The fused multi-chain engine wins below this task count and loses above
#: it, on both the numpy and compiled backends (BENCH_ce_hotpath.json and
#: a crossover scan at R ∈ {2, 4, 16} chains, max_iterations=500):
#:
#: ====  =====================  =========================
#: n     serial/fused (R=4)     notes
#: ====  =====================  =========================
#: 10    1.14x  (fused wins)    3.57x at the R=30 Table 3 load
#: 16    1.05x  (fused wins)    1.14x at R=2
#: 24    0.91x  (serial wins)   0.86x at R=16, ~1.04x at R=2
#: 32    0.89x  (serial wins)   0.75x at R=16
#: 50    0.75x  (serial wins)   0.85–0.88x at the bench's R=4
#: ====  =====================  =========================
#:
#: Above the crossover the joint batch (R·N candidate rows per iteration)
#: outgrows what batching amortizes: per-row scoring work is O(n + deg)
#: and dominates the Python overhead fusion removes, while the collapsed
#: duplicate rate falls with n, so fusing only adds tensor bookkeeping.
#: More chains make that *worse*, not better, at large n.
FUSED_CROSSOVER_MAX_TASKS = 20


def prefer_fused(n_tasks: int, n_chains: int) -> bool:
    """True when the fused multi-chain path is the measured faster choice."""
    return n_chains >= 2 and n_tasks <= FUSED_CROSSOVER_MAX_TASKS


def _check_one_to_one(problem: MappingProblem) -> None:
    if problem.n_tasks > problem.n_resources:
        raise ConfigurationError(
            "MaTCH one-to-one sampling needs n_resources >= n_tasks "
            f"(got {problem.n_tasks} tasks, {problem.n_resources} resources)"
        )


class _MatchSolver(MapperSolver):
    """One CE iteration per step, via the optimizer's own step protocol."""

    def __init__(self, mapper: "MatchMapper") -> None:
        super().__init__()
        self.mapper = mapper
        self._optimizer: CrossEntropyOptimizer | None = None

    def _build_optimizer(self, problem: MappingProblem, seed: SeedLike) -> None:
        _check_one_to_one(problem)
        self._ce_cfg = self.mapper.config.ce_config(problem.n_resources)
        self._optimizer = CrossEntropyOptimizer(
            self.model.evaluate_batch,
            problem.n_tasks,
            problem.n_resources,
            self._ce_cfg,
            sampler="permutation",
            rng=seed,
            budget=self.budget,
        )
        self._problem = problem

    def start(self, problem: MappingProblem, seed: SeedLike) -> None:
        self._build_optimizer(problem, seed)
        self._optimizer.start()

    @property
    def finished(self) -> bool:
        return self._optimizer is not None and self._optimizer.finished

    def step(self) -> StepReport:
        improved = self._optimizer.step()
        it = self._iteration
        self._iteration += 1
        return StepReport(
            iteration=it,
            best_cost=self._optimizer.best_cost,
            improved=improved,
            info={"ce_iteration": self._optimizer.iteration},
        )

    def note_external_stop(self, kind: str, reason: str) -> None:
        self._optimizer.note_external_stop(reason)

    def finalize(self) -> SolveOutput:
        ce_result = self._optimizer.finalize()
        self.mapper._last_result = MatchResult(
            problem=self._problem,
            config=self.mapper.config,
            ce_result=ce_result,
        )
        extras: dict[str, Any] = {
            "iterations": ce_result.n_iterations,
            "stop_reason": ce_result.stop_reason,
            "n_samples_per_iteration": self._ce_cfg.n_samples,
            "final_degeneracy": (
                ce_result.degeneracy_history[-1] if ce_result.degeneracy_history else None
            ),
        }
        return SolveOutput(
            assignment=ce_result.best_assignment,
            n_evaluations=ce_result.n_evaluations,
            extras=extras,
        )

    # -- checkpointing -------------------------------------------------------
    def export_state(self) -> dict[str, Any]:
        return {"ce": self._optimizer.export_state(), "iteration": self._iteration}

    def restore_state(self, problem: MappingProblem, state: dict[str, Any]) -> None:
        self._build_optimizer(problem, None)
        self._optimizer.restore_state(state["ce"])
        self._iteration = int(state["iteration"])


class _MultiChainSolver(SearchSolver):
    """One *joint* multi-chain iteration per step (drives ``map_many``)."""

    def __init__(self, engine: MultiChainCE) -> None:
        super().__init__()
        self.engine = engine
        self.joint: MultiChainResult | None = None

    def start(self, problem: MappingProblem, seed: SeedLike) -> None:
        self.engine.bind_budget(self.budget)
        self.engine.start()

    @property
    def finished(self) -> bool:
        return self.engine.finished

    def step(self) -> StepReport:
        improved = self.engine.step()
        it = self._iteration
        self._iteration += 1
        return StepReport(
            iteration=it,
            best_cost=self.engine.best_cost,
            improved=improved,
            info={"live_chains": self.engine.n_live},
        )

    def note_external_stop(self, kind: str, reason: str) -> None:
        self.engine.note_external_stop(reason)

    def finalize(self) -> SolveOutput:
        self.joint = self.engine.finalize()
        best = self.joint.best
        return SolveOutput(
            assignment=best.best_assignment,
            n_evaluations=self.joint.n_evaluations,
            extras={"joint_chains": self.joint.n_chains},
        )


class MatchMapper(Mapper):
    """The MaTCH heuristic as a :class:`Mapper`."""

    name = "MaTCH"
    registry_name: ClassVar[str | None] = "match"

    def __init__(self, config: MatchConfig = MatchConfig()) -> None:
        self.config = config
        self._last_result: MatchResult | None = None

    @property
    def last_result(self) -> MatchResult | None:
        """Full diagnostics of the most recent :meth:`map` call."""
        return self._last_result

    def checkpoint_params(self) -> dict[str, Any]:
        cfg = self.config
        return {
            "rho": cfg.rho,
            "zeta": cfg.zeta,
            "n_samples": cfg.n_samples,
            "stability_window": cfg.stability_window,
            "stability_tol": cfg.stability_tol,
            "gamma_window": cfg.gamma_window,
            "elite_mode": cfg.elite_mode,
            "max_iterations": cfg.max_iterations,
            "track_matrices": cfg.track_matrices,
            "matrix_snapshot_every": cfg.matrix_snapshot_every,
            "dedup": cfg.dedup,
        }

    def _make_solver(self) -> MapperSolver:
        return _MatchSolver(self)

    def map_many(
        self,
        problem: MappingProblem,
        seeds: Sequence[SeedLike],
        *,
        n_workers: int | None = None,
        budget: EvaluationBudget | None = None,
        hooks: SearchHooks | None = None,
        mode: str = "auto",
    ) -> list[MapperResult]:
        """Batched repetitions, fused or serial by the measured crossover.

        ``mode="fused"`` advances every seed as one multi-chain CE run
        (:class:`~repro.ce.multichain.MultiChainCE`): one shared
        :class:`CostModel`, one batched GenPerm/score/update pass per joint
        iteration, duplicates collapsed across chains. ``mode="serial"``
        runs a plain per-seed :meth:`map` loop. ``mode="auto"`` (the
        default) picks by the measured crossover (:func:`prefer_fused`):
        fused where fusion wins (small instances, ≥2 repetitions), serial
        where the joint batch outgrows what batching amortizes. Both paths
        are seed-for-seed exact — result ``r`` carries the same assignment,
        execution time, evaluation count and CE diagnostics a
        ``map(problem, seeds[r])`` call would produce — so the selection
        can never change a reported number, only the wall-clock. Each
        result's ``extras["multichain_mode"]`` records the path taken.

        ``mapping_time`` is the one field that differs in kind: the fused
        path amortizes the joint wall-clock evenly over the runs (how a
        per-run MT should be read in Table 3 style aggregates), the serial
        path reports each run's own stopwatch. ``budget`` caps the
        *combined* evaluations either way (the serial loop threads one
        shared budget through every run). ``n_workers`` is accepted for
        interface symmetry and ignored: both paths are single-process by
        design.
        """
        seeds = list(seeds)
        if not seeds:
            return []
        if mode not in ("auto", "fused", "serial"):
            raise ConfigurationError(
                f"map_many mode must be 'auto', 'fused' or 'serial', got {mode!r}"
            )
        _check_one_to_one(problem)
        if mode == "auto":
            mode = "fused" if prefer_fused(problem.n_tasks, len(seeds)) else "serial"
        if mode == "serial":
            results = []
            for seed in seeds:
                result = self.map(problem, seed, budget=budget, hooks=hooks)
                result.extras["multichain_mode"] = "serial"
                results.append(result)
            return results
        model = CostModel(problem)
        ce_cfg = self.config.ce_config(problem.n_resources)
        engine = MultiChainCE(
            model.evaluate_batch,
            problem.n_tasks,
            problem.n_resources,
            ce_cfg,
            seeds=seeds,
        )
        solver = _MultiChainSolver(engine)
        loop = SearchLoop(solver, budget=budget, hooks=hooks)
        outcome = loop.run(problem, None)
        joint = solver.joint
        assert joint is not None
        per_run_time = outcome.elapsed / len(seeds)
        results: list[MapperResult] = []
        for res in joint.chains:
            assignment = problem.check_assignment(
                np.asarray(res.best_assignment, dtype=np.int64)
            )
            results.append(
                MapperResult(
                    mapper_name=self.name,
                    assignment=assignment,
                    execution_time=model.evaluate(assignment),
                    mapping_time=per_run_time,
                    n_evaluations=res.n_evaluations,
                    extras={
                        "iterations": res.n_iterations,
                        "stop_reason": res.stop_reason,
                        "n_samples_per_iteration": ce_cfg.n_samples,
                        "final_degeneracy": (
                            res.degeneracy_history[-1]
                            if res.degeneracy_history
                            else None
                        ),
                        "joint_chains": joint.n_chains,
                        "joint_dedup_collapse_rate": joint.dedup_collapse_rate,
                        "multichain_mode": "fused",
                    },
                )
            )
        return results


def match_map(
    problem: MappingProblem,
    config: MatchConfig = MatchConfig(),
    rng: SeedLike = None,
) -> tuple[MapperResult, MatchResult]:
    """One-call convenience: run MaTCH, return ``(timed result, diagnostics)``."""
    mapper = MatchMapper(config)
    mapper_result = mapper.map(problem, rng)
    assert mapper.last_result is not None
    return mapper_result, mapper.last_result
