"""MaTCH — Mapping Tasks using the Cross-Entropy Heuristic (Fig. 5).

The paper's contribution: specialise the CE method to the heterogeneous
mapping problem by

1. parameterizing the sampling distribution as a task×resource stochastic
   matrix, initially uniform (``P_0[i,j] = 1/|V_r|``);
2. sampling valid one-to-one mappings with GenPerm (Fig. 4);
3. scoring with the Eq. (2) execution time;
4. updating ``P`` from the elite ``ρ`` quantile via Eq. (11), smoothed by
   Eq. (13) with ``ζ = 0.3``;
5. stopping when the matrix commits (Eq. (12)).

:class:`MatchMapper` implements the :class:`~repro.baselines.base.Mapper`
interface (so the experiment harness treats it like any heuristic) and
exposes the full CE diagnostics through
:class:`~repro.core.result.MatchResult`.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.baselines.base import Mapper, MapperResult
from repro.ce.multichain import MultiChainCE
from repro.ce.optimizer import CrossEntropyOptimizer
from repro.core.config import MatchConfig
from repro.core.result import MatchResult
from repro.exceptions import ConfigurationError
from repro.mapping.cost_model import CostModel
from repro.mapping.problem import MappingProblem
from repro.types import SeedLike
from repro.utils.timing import Stopwatch

__all__ = ["MatchMapper", "match_map"]


class MatchMapper(Mapper):
    """The MaTCH heuristic as a :class:`Mapper`."""

    name = "MaTCH"

    def __init__(self, config: MatchConfig = MatchConfig()) -> None:
        self.config = config
        self._last_result: MatchResult | None = None

    @property
    def last_result(self) -> MatchResult | None:
        """Full diagnostics of the most recent :meth:`map` call."""
        return self._last_result

    def _solve(
        self, problem: MappingProblem, model: CostModel, rng: SeedLike
    ) -> tuple[np.ndarray, int, dict[str, Any]]:
        if problem.n_tasks > problem.n_resources:
            raise ConfigurationError(
                "MaTCH one-to-one sampling needs n_resources >= n_tasks "
                f"(got {problem.n_tasks} tasks, {problem.n_resources} resources)"
            )
        ce_cfg = self.config.ce_config(problem.n_resources)
        optimizer = CrossEntropyOptimizer(
            model.evaluate_batch,
            problem.n_tasks,
            problem.n_resources,
            ce_cfg,
            sampler="permutation",
            rng=rng,
        )
        ce_result = optimizer.run()
        self._last_result = MatchResult(
            problem=problem,
            config=self.config,
            ce_result=ce_result,
        )
        extras: dict[str, Any] = {
            "iterations": ce_result.n_iterations,
            "stop_reason": ce_result.stop_reason,
            "n_samples_per_iteration": ce_cfg.n_samples,
            "final_degeneracy": (
                ce_result.degeneracy_history[-1] if ce_result.degeneracy_history else None
            ),
        }
        return ce_result.best_assignment, ce_result.n_evaluations, extras

    def map_many(
        self,
        problem: MappingProblem,
        seeds: Sequence[SeedLike],
        *,
        n_workers: int | None = None,
    ) -> list[MapperResult]:
        """Fused repetitions: all seeds advance as one multi-chain CE run.

        Instead of dispatching run-at-a-time like the base implementation,
        every repetition becomes a chain of one
        :class:`~repro.ce.multichain.MultiChainCE` — one shared
        :class:`CostModel`, one batched GenPerm/score/update pass per joint
        iteration, duplicates collapsed across chains. Result ``r`` carries
        the same assignment, execution time and CE diagnostics a
        ``map(problem, seeds[r])`` call would produce (the engine is
        seed-for-seed exact); only ``mapping_time`` differs — the joint
        wall-clock is amortized evenly over the runs, which is also how a
        per-run MT should be read in Table 3 style aggregates.
        ``n_workers`` is accepted for interface symmetry and ignored: the
        fused path is single-process by design.
        """
        seeds = list(seeds)
        if not seeds:
            return []
        if problem.n_tasks > problem.n_resources:
            raise ConfigurationError(
                "MaTCH one-to-one sampling needs n_resources >= n_tasks "
                f"(got {problem.n_tasks} tasks, {problem.n_resources} resources)"
            )
        model = CostModel(problem)
        ce_cfg = self.config.ce_config(problem.n_resources)
        with Stopwatch() as sw:
            joint = MultiChainCE(
                model.evaluate_batch,
                problem.n_tasks,
                problem.n_resources,
                ce_cfg,
                seeds=seeds,
            ).run()
        per_run_time = sw.elapsed / len(seeds)
        results: list[MapperResult] = []
        for res in joint.chains:
            assignment = problem.check_assignment(
                np.asarray(res.best_assignment, dtype=np.int64)
            )
            results.append(
                MapperResult(
                    mapper_name=self.name,
                    assignment=assignment,
                    execution_time=model.evaluate(assignment),
                    mapping_time=per_run_time,
                    n_evaluations=res.n_evaluations,
                    extras={
                        "iterations": res.n_iterations,
                        "stop_reason": res.stop_reason,
                        "n_samples_per_iteration": ce_cfg.n_samples,
                        "final_degeneracy": (
                            res.degeneracy_history[-1]
                            if res.degeneracy_history
                            else None
                        ),
                        "joint_chains": joint.n_chains,
                        "joint_dedup_collapse_rate": joint.dedup_collapse_rate,
                    },
                )
            )
        return results


def match_map(
    problem: MappingProblem,
    config: MatchConfig = MatchConfig(),
    rng: SeedLike = None,
) -> tuple[MapperResult, MatchResult]:
    """One-call convenience: run MaTCH, return ``(timed result, diagnostics)``."""
    mapper = MatchMapper(config)
    mapper_result = mapper.map(problem, rng)
    assert mapper.last_result is not None
    return mapper_result, mapper.last_result
