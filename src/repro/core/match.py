"""MaTCH — Mapping Tasks using the Cross-Entropy Heuristic (Fig. 5).

The paper's contribution: specialise the CE method to the heterogeneous
mapping problem by

1. parameterizing the sampling distribution as a task×resource stochastic
   matrix, initially uniform (``P_0[i,j] = 1/|V_r|``);
2. sampling valid one-to-one mappings with GenPerm (Fig. 4);
3. scoring with the Eq. (2) execution time;
4. updating ``P`` from the elite ``ρ`` quantile via Eq. (11), smoothed by
   Eq. (13) with ``ζ = 0.3``;
5. stopping when the matrix commits (Eq. (12)).

:class:`MatchMapper` implements the :class:`~repro.baselines.base.Mapper`
interface (so the experiment harness treats it like any heuristic) and
exposes the full CE diagnostics through
:class:`~repro.core.result.MatchResult`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.baselines.base import Mapper, MapperResult
from repro.ce.optimizer import CrossEntropyOptimizer
from repro.core.config import MatchConfig
from repro.core.result import MatchResult
from repro.exceptions import ConfigurationError
from repro.mapping.cost_model import CostModel
from repro.mapping.problem import MappingProblem
from repro.types import SeedLike

__all__ = ["MatchMapper", "match_map"]


class MatchMapper(Mapper):
    """The MaTCH heuristic as a :class:`Mapper`."""

    name = "MaTCH"

    def __init__(self, config: MatchConfig = MatchConfig()) -> None:
        self.config = config
        self._last_result: MatchResult | None = None

    @property
    def last_result(self) -> MatchResult | None:
        """Full diagnostics of the most recent :meth:`map` call."""
        return self._last_result

    def _solve(
        self, problem: MappingProblem, model: CostModel, rng: SeedLike
    ) -> tuple[np.ndarray, int, dict[str, Any]]:
        if problem.n_tasks > problem.n_resources:
            raise ConfigurationError(
                "MaTCH one-to-one sampling needs n_resources >= n_tasks "
                f"(got {problem.n_tasks} tasks, {problem.n_resources} resources)"
            )
        ce_cfg = self.config.ce_config(problem.n_resources)
        optimizer = CrossEntropyOptimizer(
            model.evaluate_batch,
            problem.n_tasks,
            problem.n_resources,
            ce_cfg,
            sampler="permutation",
            rng=rng,
        )
        ce_result = optimizer.run()
        self._last_result = MatchResult(
            problem=problem,
            config=self.config,
            ce_result=ce_result,
        )
        extras: dict[str, Any] = {
            "iterations": ce_result.n_iterations,
            "stop_reason": ce_result.stop_reason,
            "n_samples_per_iteration": ce_cfg.n_samples,
            "final_degeneracy": (
                ce_result.degeneracy_history[-1] if ce_result.degeneracy_history else None
            ),
        }
        return ce_result.best_assignment, ce_result.n_evaluations, extras


def match_map(
    problem: MappingProblem,
    config: MatchConfig = MatchConfig(),
    rng: SeedLike = None,
) -> tuple[MapperResult, MatchResult]:
    """One-call convenience: run MaTCH, return ``(timed result, diagnostics)``."""
    mapper = MatchMapper(config)
    mapper_result = mapper.map(problem, rng)
    assert mapper.last_result is not None
    return mapper_result, mapper.last_result
