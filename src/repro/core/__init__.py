"""MaTCH core: the paper's primary contribution plus its future-work variants."""

from repro.core.adaptive import AdaptiveMatchConfig, AdaptiveMatchMapper
from repro.core.config import MatchConfig, paper_sample_size
from repro.core.distributed import DistributedMatchConfig, DistributedMatchMapper
from repro.core.match import MatchMapper, match_map
from repro.core.refine import RefinedMatchConfig, RefinedMatchMapper
from repro.core.result import MatchResult
from repro.core.trace import evolution_frames, render_matrix_ascii, trace_to_dict

__all__ = [
    "MatchConfig",
    "paper_sample_size",
    "MatchMapper",
    "match_map",
    "RefinedMatchConfig",
    "RefinedMatchMapper",
    "MatchResult",
    "AdaptiveMatchConfig",
    "AdaptiveMatchMapper",
    "DistributedMatchConfig",
    "DistributedMatchMapper",
    "evolution_frames",
    "render_matrix_ascii",
    "trace_to_dict",
]
