"""Stochastic-matrix evolution traces — the Figure 3 reproduction.

Figure 3 of the paper shows the matrix of a ``|V_r| = |V_t| = 10`` run
evolving from uniform grey to a degenerate 0/1 pattern. This module turns
the snapshots recorded by a tracked MaTCH run into:

* :func:`render_matrix_ascii` — a terminal heat map (one glyph per cell,
  darker = more probability mass);
* :func:`evolution_frames` — selected snapshots with degeneracy/entropy
  stats, the data series behind the figure;
* :func:`trace_to_dict` — a JSON-ready dump for offline plotting.
"""

from __future__ import annotations

import numpy as np

from repro.ce.optimizer import CEResult
from repro.exceptions import ValidationError

__all__ = ["render_matrix_ascii", "evolution_frames", "trace_to_dict"]

#: Glyph ramp from "no mass" to "all mass" (10 levels).
_RAMP = " .:-=+*#%@"


def render_matrix_ascii(matrix: np.ndarray, *, row_label: str = "task") -> str:
    """Render one stochastic matrix as an ASCII heat map.

    Each cell shows one glyph from a 10-step ramp proportional to the
    probability; a fully degenerate matrix renders as a sparse pattern of
    ``@`` on blank space, visually matching the right panel of Fig. 3.
    """
    P = np.asarray(matrix, dtype=np.float64)
    if P.ndim != 2:
        raise ValidationError(f"matrix must be 2-D, got shape {P.shape}")
    n_rows, n_cols = P.shape
    header = "     " + " ".join(f"{j:>2d}" for j in range(n_cols))
    lines = [header]
    for i in range(n_rows):
        cells = []
        for j in range(n_cols):
            level = min(int(P[i, j] * (len(_RAMP) - 1) + 0.5), len(_RAMP) - 1)
            cells.append(f" {_RAMP[level]}")
        lines.append(f"{row_label[0]}{i:>2d} |" + " ".join(cells))
    return "\n".join(lines)


def evolution_frames(
    result: CEResult, *, n_frames: int = 4
) -> list[dict]:
    """Pick ``n_frames`` evenly spaced snapshots with their statistics.

    Requires the run to have been executed with matrix tracking enabled
    (``track_matrices=True``); raises :class:`ValidationError` otherwise.
    """
    if not result.matrix_history:
        raise ValidationError(
            "no matrix snapshots recorded; run with track_matrices=True"
        )
    if n_frames < 1:
        raise ValidationError(f"n_frames must be >= 1, got {n_frames}")
    total = len(result.matrix_history)
    picks = np.unique(np.linspace(0, total - 1, num=min(n_frames, total)).astype(int))
    frames = []
    for k in picks:
        P = result.matrix_history[k]
        row_max = P.max(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            ent = float(np.where(P > 0, -P * np.log(P), 0.0).sum(axis=1).mean())
        frames.append(
            {
                "snapshot_index": int(k),
                "matrix": P,
                "degeneracy": float(row_max.mean()),
                "entropy": ent,
                "committed_rows": int((row_max > 0.99).sum()),
            }
        )
    return frames


def trace_to_dict(result: CEResult) -> dict:
    """JSON-ready dump of a tracked run's evolution (for offline plotting)."""
    return {
        "gamma_history": list(result.gamma_history),
        "best_cost_history": list(result.best_cost_history),
        "degeneracy_history": list(result.degeneracy_history),
        "entropy_history": list(result.entropy_history),
        "matrices": [m.tolist() for m in result.matrix_history],
        "n_iterations": result.n_iterations,
        "stop_reason": result.stop_reason,
    }
