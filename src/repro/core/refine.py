"""CE-seeded refinement: MaTCH followed by swap descent.

A natural hybrid the paper leaves on the table: the CE method is a global
sampler (it finds the right basin) but spends many samples polishing the
last few percent — exactly what a cheap O(deg)-per-probe local search does
best. :class:`RefinedMatchMapper` runs plain MaTCH with a *reduced*
iteration budget (stop as soon as the elite threshold stalls briefly),
then descends the swap neighborhood from the CE incumbent to a local
optimum. Benchmarked in the ablation suite as the "polish" design point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.baselines.base import Mapper
from repro.core.config import MatchConfig
from repro.core.match import MatchMapper
from repro.exceptions import ConfigurationError
from repro.mapping.cost_model import CostModel
from repro.mapping.incremental import IncrementalEvaluator
from repro.mapping.problem import MappingProblem
from repro.types import SeedLike
from repro.utils.rng import as_generator

__all__ = ["RefinedMatchConfig", "RefinedMatchMapper"]

#: Probes per batched kernel call in the first-improvement descent.
_SCAN_CHUNK = 512


@dataclass(frozen=True)
class RefinedMatchConfig:
    """Hybrid parameters: a (typically early-stopping) MaTCH + descent."""

    match: MatchConfig = field(
        default_factory=lambda: MatchConfig(gamma_window=6)
    )
    max_sweeps: int = 50

    def __post_init__(self) -> None:
        if self.max_sweeps < 1:
            raise ConfigurationError(f"max_sweeps must be >= 1, got {self.max_sweeps}")


class RefinedMatchMapper(Mapper):
    """MaTCH for the basin, first-improvement swap descent for the polish."""

    name = "MaTCH+LS"

    def __init__(self, config: RefinedMatchConfig = RefinedMatchConfig()) -> None:
        self.config = config

    def _solve(
        self, problem: MappingProblem, model: CostModel, rng: SeedLike
    ) -> tuple[np.ndarray, int, dict[str, Any]]:
        gen = as_generator(rng)

        # Phase 1: global CE search (early-stopping config).
        ce_mapper = MatchMapper(self.config.match)
        ce_result = ce_mapper.map(problem, gen)
        assignment = ce_result.assignment.copy()
        n_evals = ce_result.n_evaluations
        ce_cost = ce_result.execution_time

        # Phase 2: swap descent from the CE incumbent. Probes go through
        # the batched swap_costs kernel in chunks; the first hit in scan
        # order is applied and only the probes the sequential loop would
        # have made are counted, so the descent (moves, probe totals) is
        # identical to the historical probe-by-probe scan.
        n = problem.n_tasks
        probes = 0
        if n >= 2:
            inc = IncrementalEvaluator(model, assignment)
            pairs = [(a, b) for a in range(n - 1) for b in range(a + 1, n)]
            for _ in range(self.config.max_sweeps):
                current = inc.current_cost
                improved = False
                gen.shuffle(pairs)  # scan-order draw, same RNG stream as before
                arr = np.asarray(pairs, dtype=np.int64)
                for lo in range(0, arr.shape[0], _SCAN_CHUNK):
                    sub = arr[lo : lo + _SCAN_CHUNK]
                    hits = np.flatnonzero(inc.swap_costs(sub) < current - 1e-12)
                    if hits.size:
                        j = lo + int(hits[0])
                        probes += j + 1
                        inc.apply_swap(int(arr[j, 0]), int(arr[j, 1]))
                        improved = True
                        break
                    probes += sub.shape[0]
                if not improved:
                    break
            assignment = inc.assignment
        n_evals += probes

        return assignment, n_evals, {
            "ce_cost": ce_cost,
            "ce_iterations": ce_result.extras["iterations"],
            "refine_probes": probes,
        }
