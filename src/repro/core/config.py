"""MaTCH configuration (Fig. 5 / §5.2 defaults).

The paper's settings: sample size ``N = 2·|V_r|²`` (one row of rationale:
the matrix has ``|V_r|²`` entries and each needs samples of that order),
focus parameter ``0.01 ≤ ρ ≤ 0.1``, smoothing ``ζ = 0.3``, stopping window
``c = 5`` (Eq. (12)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ce.optimizer import CEConfig
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_in_range

__all__ = ["MatchConfig", "paper_sample_size"]


def paper_sample_size(n_resources: int) -> int:
    """The paper's rule ``N = 2 · |V_r|²``."""
    if n_resources < 1:
        raise ConfigurationError(f"n_resources must be >= 1, got {n_resources}")
    return 2 * n_resources * n_resources


@dataclass(frozen=True)
class MatchConfig:
    """Hyper-parameters of one MaTCH run.

    Attributes
    ----------
    rho:
        Focus parameter (elite fraction). Paper: 0.01-0.1, default 0.05.
    zeta:
        Eq. (13) smoothing factor. Paper: 0.3.
    n_samples:
        Samples per iteration; ``None`` applies the paper rule ``2·n_r²``.
    stability_window:
        ``c`` of Eq. (12). Paper: 5.
    stability_tol / gamma_window / elite_mode / max_iterations:
        Practical convergence knobs forwarded to the CE engine; see
        :class:`repro.ce.optimizer.CEConfig`.
    track_matrices / matrix_snapshot_every:
        Record stochastic-matrix snapshots (Fig. 3 reproduction).
    dedup:
        Collapse duplicate candidate mappings before scoring (exact — see
        :mod:`repro.utils.dedup`); on by default, disable only to time the
        raw scoring path.
    """

    rho: float = 0.05
    zeta: float = 0.3
    n_samples: int | None = None
    stability_window: int = 5
    stability_tol: float = 1e-6
    gamma_window: int = 12
    elite_mode: str = "exact_k"
    max_iterations: int = 500
    track_matrices: bool = False
    matrix_snapshot_every: int = 1
    dedup: bool = True

    def __post_init__(self) -> None:
        check_in_range("rho", self.rho, 0.0, 1.0, inclusive=(False, False))
        check_in_range("zeta", self.zeta, 0.0, 1.0, inclusive=(False, True))
        if self.n_samples is not None and self.n_samples < 2:
            raise ConfigurationError(f"n_samples must be >= 2, got {self.n_samples}")

    def ce_config(self, n_resources: int) -> CEConfig:
        """Materialize the CE engine config for a problem of ``n_resources``."""
        n = self.n_samples if self.n_samples is not None else paper_sample_size(n_resources)
        return CEConfig(
            n_samples=n,
            rho=self.rho,
            zeta=self.zeta,
            stability_window=self.stability_window,
            stability_tol=self.stability_tol,
            gamma_window=self.gamma_window,
            elite_mode=self.elite_mode,
            max_iterations=self.max_iterations,
            track_matrices=self.track_matrices,
            matrix_snapshot_every=self.matrix_snapshot_every,
            dedup=self.dedup,
        )
