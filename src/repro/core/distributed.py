"""Distributed (agent-based) MaTCH — the paper's stated future work.

§6: *"Our future work includes extending MaTCH into a fully distributed
implementation using agent based scheduling"*, motivated by the CE-guided
mobile agents of Helvik & Wittner [13]. This module implements that
design as a deterministic simulation of the agent system:

* ``n_agents`` independent CE agents each hold a private stochastic
  matrix and a slice of the per-iteration sample budget;
* every ``sync_every`` iterations the agents *gossip*: each agent blends
  its matrix towards the matrix of the currently best-performing agent
  (convex combination with weight ``gossip_weight``), the standard island/
  elite-attraction scheme;
* the budget equals a monolithic run's (``N`` total samples per round),
  so comparisons against plain MaTCH are compute-fair.

The simulation is sequential (single process): the point reproduced is the
*algorithmic* behaviour of the distributed scheme — sample-budget split,
delayed information sharing, heterogeneous exploration — not wall-clock
parallel speedup. For actual multi-node execution see :mod:`repro.islands`,
which runs the **same agent round** (:func:`repro.islands.chains.chain_round`
— this module calls it too, so the two cannot diverge) over a socket
transport and is pinned bit-identical to this simulation by the loopback
parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.baselines.base import Mapper
from repro.core.config import paper_sample_size
from repro.exceptions import ConfigurationError
from repro.islands.chains import (
    DEGENERACY_TOL,
    agent_streams,
    blend_towards,
    chain_round,
)
from repro.ce.stochastic_matrix import StochasticMatrix
from repro.mapping.cost_model import CostModel
from repro.mapping.problem import MappingProblem
from repro.types import SeedLike
from repro.utils.validation import check_in_range

__all__ = ["DistributedMatchConfig", "DistributedMatchMapper"]


@dataclass(frozen=True)
class DistributedMatchConfig:
    """Agent-system parameters."""

    n_agents: int = 4
    sync_every: int = 5
    gossip_weight: float = 0.5
    rho: float = 0.05
    zeta: float = 0.3
    total_samples: int | None = None  # per round across agents; None -> 2 n^2
    max_rounds: int = 500
    gamma_window: int = 12

    def __post_init__(self) -> None:
        if self.n_agents < 1:
            raise ConfigurationError(f"n_agents must be >= 1, got {self.n_agents}")
        if self.sync_every < 1:
            raise ConfigurationError(f"sync_every must be >= 1, got {self.sync_every}")
        check_in_range("gossip_weight", self.gossip_weight, 0.0, 1.0)
        check_in_range("rho", self.rho, 0.0, 1.0, inclusive=(False, False))
        check_in_range("zeta", self.zeta, 0.0, 1.0, inclusive=(False, True))
        if self.max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.gamma_window < 1:
            raise ConfigurationError(f"gamma_window must be >= 1, got {self.gamma_window}")


class _Agent:
    """One CE agent: private matrix, RNG stream and best-so-far."""

    __slots__ = ("matrix", "rng", "best_cost", "best_x", "last_gamma")

    def __init__(self, n_t: int, n_r: int, rng: np.random.Generator) -> None:
        self.matrix = StochasticMatrix.uniform(n_t, n_r)
        self.rng = rng
        self.best_cost = np.inf
        self.best_x = np.zeros(n_t, dtype=np.int64)
        self.last_gamma = np.inf


class DistributedMatchMapper(Mapper):
    """Island-model MaTCH with periodic elite-attraction gossip."""

    name = "MaTCH-distributed"

    def __init__(self, config: DistributedMatchConfig = DistributedMatchConfig()) -> None:
        self.config = config

    def _solve(
        self, problem: MappingProblem, model: CostModel, rng: SeedLike
    ) -> tuple[np.ndarray, int, dict[str, Any]]:
        if problem.n_tasks > problem.n_resources:
            raise ConfigurationError("distributed MaTCH needs n_resources >= n_tasks")
        cfg = self.config
        n_t, n_r = problem.n_tasks, problem.n_resources
        total = cfg.total_samples if cfg.total_samples is not None else paper_sample_size(n_r)
        per_agent = max(2, total // cfg.n_agents)

        streams = agent_streams(rng, cfg.n_agents)
        agents = [_Agent(n_t, n_r, s) for s in streams]

        global_best = np.inf
        global_x = np.zeros(n_t, dtype=np.int64)
        n_evals = 0
        stagnant = 0
        prev_global = np.inf
        rounds = 0
        n_syncs = 0

        for r in range(1, cfg.max_rounds + 1):
            rounds = r
            for agent in agents:
                cost, x, gamma = chain_round(
                    agent.matrix, agent.rng, model, per_agent, cfg.rho, cfg.zeta
                )
                n_evals += per_agent
                agent.last_gamma = gamma
                if cost < agent.best_cost:
                    agent.best_cost = cost
                    agent.best_x = x.copy()
                if agent.best_cost < global_best:
                    global_best = agent.best_cost
                    global_x = agent.best_x.copy()

            if cfg.n_agents > 1 and r % cfg.sync_every == 0:
                # Gossip: everyone drifts towards the best agent's matrix.
                leader = min(agents, key=lambda a: a.best_cost)
                leader_P = leader.matrix.values
                for agent in agents:
                    if agent is leader:
                        continue
                    agent.matrix = blend_towards(
                        agent.matrix, leader_P, cfg.gossip_weight
                    )
                n_syncs += 1

            if abs(global_best - prev_global) <= 1e-9:
                stagnant += 1
            else:
                stagnant = 0
            prev_global = global_best
            if stagnant >= cfg.gamma_window:
                break
            if all(a.matrix.is_degenerate(tol=DEGENERACY_TOL) for a in agents):
                break

        return global_x, n_evals, {
            "rounds": rounds,
            "n_agents": cfg.n_agents,
            "samples_per_agent": per_agent,
            "n_syncs": n_syncs,
        }
