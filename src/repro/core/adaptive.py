"""Adaptive MaTCH — the library's extension of the paper's fixed-parameter run.

Three optional mechanisms, each ablatable in the benchmark suite:

* **dynamic smoothing** — replace the fixed ``ζ`` with Rubinstein's
  ``ζ_k = β (1 - 1/k)^q`` schedule (heavier smoothing early);
* **sample escalation** — multiply the per-iteration sample size when the
  elite threshold ``γ`` stagnates, concentrating budget where the plain
  method would spin;
* **elite injection** — inject the incumbent best mapping into every
  elite set, a light elitism that guards the matrix against forgetting the
  best basin (the GA's elitism translated to CE).

The iteration skeleton intentionally mirrors
:class:`repro.ce.optimizer.CrossEntropyOptimizer`; the pieces that differ
are the per-iteration parameter schedules, which the generic engine's
fixed config cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.baselines.base import Mapper
from repro.ce.genperm import sample_permutations
from repro.ce.quantile import select_top_k
from repro.ce.smoothing import dynamic_smoothing_factor
from repro.ce.stochastic_matrix import StochasticMatrix
from repro.core.config import paper_sample_size
from repro.exceptions import ConfigurationError
from repro.mapping.cost_model import CostModel
from repro.mapping.problem import MappingProblem
from repro.types import SeedLike
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range

__all__ = ["AdaptiveMatchConfig", "AdaptiveMatchMapper"]


@dataclass(frozen=True)
class AdaptiveMatchConfig:
    """Knobs of the adaptive variant (all three mechanisms independent)."""

    rho: float = 0.05
    base_n_samples: int | None = None  # None -> paper rule 2 n^2
    max_iterations: int = 500
    # dynamic smoothing
    dynamic_smoothing: bool = True
    beta: float = 0.7
    q: float = 5.0
    fixed_zeta: float = 0.3  # used when dynamic_smoothing is off
    # sample escalation
    escalate_on_stagnation: bool = True
    stagnation_window: int = 6
    escalation_factor: float = 1.5
    max_escalations: int = 3
    # elite injection
    inject_best: bool = True
    # stopping
    gamma_window: int = 12

    def __post_init__(self) -> None:
        check_in_range("rho", self.rho, 0.0, 1.0, inclusive=(False, False))
        check_in_range("beta", self.beta, 0.0, 1.0, inclusive=(False, True))
        check_in_range("fixed_zeta", self.fixed_zeta, 0.0, 1.0, inclusive=(False, True))
        if self.max_iterations < 1:
            raise ConfigurationError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.stagnation_window < 1:
            raise ConfigurationError(
                f"stagnation_window must be >= 1, got {self.stagnation_window}"
            )
        if self.escalation_factor <= 1.0:
            raise ConfigurationError(
                f"escalation_factor must be > 1, got {self.escalation_factor}"
            )
        if self.max_escalations < 0:
            raise ConfigurationError(
                f"max_escalations must be >= 0, got {self.max_escalations}"
            )
        if self.gamma_window < 1:
            raise ConfigurationError(f"gamma_window must be >= 1, got {self.gamma_window}")


class AdaptiveMatchMapper(Mapper):
    """MaTCH with dynamic smoothing, sample escalation and elite injection."""

    name = "MaTCH-adaptive"

    def __init__(self, config: AdaptiveMatchConfig = AdaptiveMatchConfig()) -> None:
        self.config = config

    def _solve(
        self, problem: MappingProblem, model: CostModel, rng: SeedLike
    ) -> tuple[np.ndarray, int, dict[str, Any]]:
        if problem.n_tasks > problem.n_resources:
            raise ConfigurationError("adaptive MaTCH needs n_resources >= n_tasks")
        cfg = self.config
        gen = as_generator(rng)
        n_t, n_r = problem.n_tasks, problem.n_resources
        n_samples = (
            cfg.base_n_samples if cfg.base_n_samples is not None else paper_sample_size(n_r)
        )

        matrix = StochasticMatrix.uniform(n_t, n_r)
        best_cost = np.inf
        best_x = np.zeros(n_t, dtype=np.int64)
        n_evals = 0
        escalations = 0
        stagnant = 0
        gamma_stagnant = 0
        prev_gamma: float | None = None
        iterations = 0

        for k in range(1, cfg.max_iterations + 1):
            iterations = k
            X = sample_permutations(matrix.view(), n_samples, gen)
            costs = model.evaluate_batch(X)
            n_evals += X.shape[0]
            gamma, elite_idx = select_top_k(costs, cfg.rho)

            it_best = int(np.argmin(costs))
            if costs[it_best] < best_cost:
                best_cost = float(costs[it_best])
                best_x = X[it_best].copy()

            elites = X[elite_idx]
            if cfg.inject_best and np.isfinite(best_cost):
                elites = np.concatenate([elites, best_x[np.newaxis, :]], axis=0)

            zeta = (
                dynamic_smoothing_factor(k, beta=cfg.beta, q=cfg.q)
                if cfg.dynamic_smoothing
                else cfg.fixed_zeta
            )
            matrix.update_from_elites(elites, zeta=zeta)

            # Stagnation bookkeeping on the elite threshold.
            if prev_gamma is not None and abs(gamma - prev_gamma) <= 1e-9:
                stagnant += 1
                gamma_stagnant += 1
            else:
                stagnant = 0
                gamma_stagnant = 0
            prev_gamma = gamma

            if (
                cfg.escalate_on_stagnation
                and stagnant >= cfg.stagnation_window
                and escalations < cfg.max_escalations
            ):
                n_samples = int(np.ceil(n_samples * cfg.escalation_factor))
                escalations += 1
                stagnant = 0

            if gamma_stagnant >= cfg.gamma_window or matrix.is_degenerate(tol=1e-6):
                break

        return best_x, n_evals, {
            "iterations": iterations,
            "escalations": escalations,
            "final_n_samples": n_samples,
            "final_degeneracy": matrix.degeneracy(),
        }
