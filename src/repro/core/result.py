"""MaTCH run diagnostics: the CE result bound to its problem and config."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ce.optimizer import CEResult
from repro.core.config import MatchConfig
from repro.mapping.mapping import Mapping
from repro.mapping.problem import MappingProblem

__all__ = ["MatchResult"]


@dataclass
class MatchResult:
    """Everything a MaTCH run produced beyond the bare assignment."""

    problem: MappingProblem
    config: MatchConfig
    ce_result: CEResult

    @property
    def best_mapping(self) -> Mapping:
        """The best mapping found, as a validated object."""
        return Mapping(self.problem, self.ce_result.best_assignment)

    @property
    def best_cost(self) -> float:
        """Eq. (2) execution time of the best mapping."""
        return self.ce_result.best_cost

    @property
    def n_iterations(self) -> int:
        """CE iterations executed."""
        return self.ce_result.n_iterations

    @property
    def converged(self) -> bool:
        """True when an adaptive stopping rule (not the budget) fired."""
        return self.ce_result.converged

    def decoded_mapping(self) -> Mapping:
        """The mapping encoded by the final matrix's row argmax.

        At full degeneracy this equals :attr:`best_mapping` up to ties;
        before convergence it is the matrix's current commitment. Note the
        row-argmax decode of a non-degenerate matrix may be many-to-one;
        callers needing a one-to-one mapping should use
        :attr:`best_mapping`.
        """
        assert self.ce_result.final_matrix is not None
        decoded = np.argmax(self.ce_result.final_matrix, axis=1).astype(np.int64)
        return Mapping(self.problem, decoded)

    def summary(self) -> dict:
        """JSON-ready run summary for experiment logs."""
        return {
            "best_cost": self.best_cost,
            "n_iterations": self.n_iterations,
            "n_evaluations": self.ce_result.n_evaluations,
            "stop_reason": self.ce_result.stop_reason,
            "converged": self.converged,
            "final_degeneracy": (
                self.ce_result.degeneracy_history[-1]
                if self.ce_result.degeneracy_history
                else None
            ),
            "final_entropy": (
                self.ce_result.entropy_history[-1] if self.ce_result.entropy_history else None
            ),
            "rho": self.config.rho,
            "zeta": self.config.zeta,
        }
