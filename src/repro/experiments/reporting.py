"""Markdown reproduction report — the generator behind EXPERIMENTS.md.

Runs every paper artifact at the requested scale and renders a single
markdown document with measured-vs-published values, shape verdicts and
the known deviations. ``python -m repro report`` writes it to a file, and
the repository's EXPERIMENTS.md is a generated instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import paper_data
from repro.experiments.convergence import ConvergenceStudy, convergence_study
from repro.experiments.deviation import DeviationStudy, ga_variant_study
from repro.experiments.figures import compute_fig3
from repro.experiments.runner import get_comparison
from repro.experiments.spec import ScaleProfile, active_profile
from repro.runstore import current_run
from repro.experiments.table1 import Table1Result, compute_table1
from repro.experiments.table2 import Table2Result, compute_table2
from repro.experiments.table3 import Table3Result, compute_table3

__all__ = ["ReproductionReport", "build_report", "render_report_markdown"]


@dataclass
class ReproductionReport:
    """All measured artifacts of one reproduction run."""

    profile: ScaleProfile
    seed: int
    table1: Table1Result
    table2: Table2Result
    table3: Table3Result
    fig3_initial_degeneracy: float
    fig3_final_degeneracy: float
    fig3_iterations: int
    deviation: DeviationStudy | None = None
    convergence: ConvergenceStudy | None = None
    #: Human-readable descriptions of suite cells the fault-tolerant fabric
    #: could not complete; empty means every reported mean covers its full
    #: (pairs × repetitions) sample.
    dispatch_failures: tuple[str, ...] = ()

    # -- shape verdicts ------------------------------------------------------
    def verdicts(self) -> dict[str, bool]:
        """The reproduction's shape claims, each pass/fail."""
        t1, t2 = self.table1, self.table2
        return {
            "T1: MaTCH at least competitive at the smallest size": t1.ratio[0] > 0.9,
            "T1: MaTCH's quality advantage grows with n": t1.ratio_grows_with_size,
            "T2: MaTCH's mapping-time ratio grows with n": t2.ratio_grows_with_size,
            "T2: ratio growth is steep (last/first > 2)": (
                t2.ratio[-1] / t2.ratio[0] > 2.0
            ),
            "T3: per-heuristic stats + ANOVA computable": (
                len(self.table3.summaries) == 3 and self.table3.anova.f_value >= 0
            ),
            "F3: stochastic matrix degenerates": (
                self.fig3_final_degeneracy > self.fig3_initial_degeneracy
            ),
        }


def build_report(
    profile: ScaleProfile | None = None,
    *,
    seed: int = 2005,
    include_extensions: bool = True,
    n_workers: int | None = None,
) -> ReproductionReport:
    """Run all artifacts and collect them (reuses the memoized comparison).

    ``include_extensions`` adds the GA-variant deviation study and the
    convergence decomposition (roughly one extra minute at default scale).
    ``n_workers`` sizes the execution fabric; the report is worker-count
    invariant.
    """
    profile = profile if profile is not None else active_profile()
    t1 = compute_table1(profile, seed=seed, n_workers=n_workers)
    t2 = compute_table2(profile, seed=seed, n_workers=n_workers)
    t3 = compute_table3(profile, seed=seed, n_workers=n_workers or 1)
    f3 = compute_fig3(size=10, seed=seed, n_frames=2)
    deviation = (
        ga_variant_study(sizes=(10, 15, 20), runs=2, seed=seed)
        if include_extensions
        else None
    )
    convergence = (
        convergence_study(sizes=(10, 15, 20), runs=2, seed=seed)
        if include_extensions
        else None
    )
    comparison = get_comparison(profile, seed=seed, n_workers=n_workers)
    dispatch_failures = tuple(
        f"comparison cell {f.heuristic} size={f.size} pair={f.pair_index} "
        f"run={f.run_index}: {f.kind} after {f.attempts} attempts ({f.message})"
        for f in comparison.failures
    ) + tuple(
        f"table3 cell {group} rep={f.index}: {f.kind} after "
        f"{f.attempts} attempts ({f.message})"
        for group, f in t3.failures
    )
    report = ReproductionReport(
        profile=profile,
        seed=seed,
        table1=t1,
        table2=t2,
        table3=t3,
        fig3_initial_degeneracy=f3.frames[0]["degeneracy"],
        fig3_final_degeneracy=f3.final_degeneracy,
        fig3_iterations=f3.n_iterations,
        deviation=deviation,
        convergence=convergence,
        dispatch_failures=dispatch_failures,
    )
    run = current_run()
    if run is not None:
        run.record_metrics(
            "report-verdicts",
            {
                "verdicts": report.verdicts(),
                "dispatch_failures": len(report.dispatch_failures),
            },
        )
    return report


def _md_table(headers: list[str], rows: list[list[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    out += ["| " + " | ".join(str(c) for c in row) + " |" for row in rows]
    return "\n".join(out)


def render_report_markdown(report: ReproductionReport) -> str:
    """The EXPERIMENTS.md document for one reproduction run."""
    p = report.profile
    t1, t2, t3 = report.table1, report.table2, report.table3
    lines: list[str] = []
    add = lines.append

    add("# EXPERIMENTS — paper vs. measured")
    add("")
    add(f"Generated by `python -m repro report` at profile **{p.name}** "
        f"(sizes {list(p.sizes)}, {p.n_pairs} graph pairs × "
        f"{p.runs_per_pair} runs, GA {p.ga_population}/{p.ga_generations}, "
        f"ANOVA {p.anova_runs} runs), seed {report.seed}.")
    add("")
    add("Absolute ET values depend on the generated instances and absolute "
        "MT values on the host machine, so the reproduction targets the "
        "*shape* of each result (who wins, how ratios move with n), per "
        "DESIGN.md §5. Published numbers are quoted from the paper verbatim.")
    add("")

    # ---- Table 1 -------------------------------------------------------------
    add("## Table 1 — execution time (ET, abstract units)")
    add("")
    rows = [["measured " + h, *[f"{v:,.0f}" for v in vals]]
            for h, vals in (("ET_GA", t1.et_ga), ("ET_MaTCH", t1.et_match))]
    rows.append(["measured ratio", *[f"{r:.3f}" for r in t1.ratio]])
    add(_md_table(["series", *[f"n={s}" for s in t1.sizes]], rows))
    add("")
    add("Published (sizes 10-50): ET_GA "
        f"{list(paper_data.TABLE1_ET_GA)}, ET_MaTCH "
        f"{list(paper_data.TABLE1_ET_MATCH)}, ratios "
        f"{list(paper_data.TABLE1_RATIO)}.")
    add("")

    # ---- Table 2 -------------------------------------------------------------
    add("## Table 2 — mapping time (MT, wall-clock seconds)")
    add("")
    rows = [["measured " + h, *[f"{v:.3f}" for v in vals]]
            for h, vals in (("MT_GA", t2.mt_ga), ("MT_MaTCH", t2.mt_match))]
    rows.append(["measured ratio", *[f"{r:.3f}" for r in t2.ratio]])
    add(_md_table(["series", *[f"n={s}" for s in t2.sizes]], rows))
    add("")
    add("Published (2005 Pentium III): MT_GA "
        f"{list(paper_data.TABLE2_MT_GA)}, MT_MaTCH "
        f"{list(paper_data.TABLE2_MT_MATCH)}, ratios "
        f"{list(paper_data.TABLE2_RATIO)}.")
    add("")

    # ---- Table 3 -------------------------------------------------------------
    add(f"## Table 3 — ANOVA study at n = 10 ({t3.runs} runs/heuristic)")
    add("")
    rows = [
        [s.label, f"{s.mean:,.0f}", f"{s.ci_low:,.0f}-{s.ci_high:,.0f}",
         f"{s.std:,.1f}", f"{s.median:,.0f}"]
        for s in t3.summaries
    ]
    add(_md_table(["heuristic", "mean ET", "95% CI", "std", "median"], rows))
    add("")
    add(f"Measured ANOVA: F = {t3.anova.f_value:.2f}, "
        f"p = {t3.anova.p_value:.3g} "
        f"(df = {t3.anova.df_between}, {t3.anova.df_within}). "
        f"Published: F = 1547, p < 0.0001 over 30 runs.")
    add("")

    # ---- Figure 3 -------------------------------------------------------------
    add("## Figure 3 — stochastic matrix evolution")
    add("")
    add(f"Measured at n = 10: degeneracy "
        f"{report.fig3_initial_degeneracy:.3f} → "
        f"{report.fig3_final_degeneracy:.3f} over "
        f"{report.fig3_iterations} iterations (uniform 1/n = 0.100). "
        "Regenerate the ASCII panels with `python -m repro fig3`.")
    add("")

    # ---- extension studies -----------------------------------------------------
    if report.convergence is not None:
        add("## Extension: convergence decomposition (why MT grows)")
        add("")
        rows = [
            [p.size, f"{p.mean_iterations:.1f}", f"{2 * p.size * p.size}",
             f"{p.mean_evaluations:,.0f}", f"{p.mean_mapping_time:.3f}",
             f"{p.mean_time_per_eval_us:.2f}"]
            for p in report.convergence.points
        ]
        add(_md_table(
            ["n", "iterations", "N = 2n²", "evaluations", "MT (s)", "µs/eval"],
            rows,
        ))
        add("")
        add("MT grows because iterations rise mildly with n while the "
            "per-iteration sample count follows the 2n² rule — the same "
            "mechanics behind the paper's Table 2 curve.")
        add("")
    if report.deviation is not None:
        add("## Deviation study: GA variants vs published magnitudes")
        add("")
        rows = []
        for variant in ("conforming", "no_elitism", "drifting"):
            rows.append(
                [variant,
                 *[f"{p.ratios()[variant]:.3f}" for p in report.deviation.points]]
            )
        add(_md_table(
            ["ET_GA / ET_MaTCH",
             *[f"n={p.size}" for p in report.deviation.points]],
            rows,
        ))
        add("")
        add("Removing elitism and reporting the drifting final population "
            "moves the ratio in the published direction but nowhere near "
            "4.7-38.6×: no conforming-ish GA reproduces the published GA "
            "weakness (see deviation 1 below).")
        add("")

    # ---- dispatch integrity ----------------------------------------------------
    add("## Dispatch integrity")
    add("")
    if report.dispatch_failures:
        add(f"{len(report.dispatch_failures)} suite cell(s) permanently "
            "failed after retries; the affected means cover the completed "
            "repetitions only:")
        add("")
        for line in report.dispatch_failures:
            add(f"- {line}")
    else:
        add("All dispatched cells completed — every reported mean covers its "
            "full (pairs × repetitions) sample.")
    add("")

    # ---- verdicts --------------------------------------------------------------
    add("## Shape verdicts")
    add("")
    for claim, ok in report.verdicts().items():
        add(f"- {'✅' if ok else '❌'} {claim}")
    add("")

    # ---- deviations --------------------------------------------------------------
    add("## Known deviations from the published numbers")
    add("")
    add("1. **Table 1 magnitudes.** The published improvement factors "
        "(4.7×→38.6×) require a GA whose output is roughly the cost of an "
        "*average random mapping*. A conforming elitist GA (the paper's own "
        "§5.1 spec) can never return worse than the best of its 500 random "
        "initial individuals, so its output is bounded far below the "
        "published ET_GA values; our faithful implementation therefore "
        "shows MaTCH winning by growing-but-smaller factors. The "
        "`GAConfig(elitism=False, report_final_population=True)` knob "
        "reproduces the *kind* of drifting GA consistent with the "
        "published magnitudes.")
    add("2. **Table 2 absolutes.** MT is wall-clock on a 2005 Pentium III "
        "vs. vectorized numpy today; only the ratio row's shape is "
        "comparable, and it reproduces well (crossover just above n=10, "
        "steep growth).")
    add("3. **Table 3 verdict strength.** Because our GA solves n=10 "
        "(deviation 1), the three groups' means are close and the measured "
        "F is far below 1547; the ANOVA machinery itself is validated "
        "against scipy to 1e-9 and flags genuinely different heuristics "
        "(see tests/test_integration.py).")
    add("4. **Table 1, n=30 published ratio.** The paper prints 23.292 but "
        "307158/13817 = 22.23; we transcribe the paper's number verbatim "
        "and tolerate the inconsistency in tests.")
    add("5. **Fig. 5 quantile direction and Eq. (12) float equality** are "
        "implemented per the CE tutorial's minimization convention and a "
        "float-tolerant stability window respectively (DESIGN.md §3).")
    add("")

    return "\n".join(lines)
