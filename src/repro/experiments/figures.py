"""EXP-F3/F7/F8/F9 — the paper's figures as terminal-renderable artifacts.

* Figure 3: stochastic-matrix evolution of one tracked ``n = 10`` MaTCH
  run, rendered as ASCII heat-map frames (uniform → biased → degenerate);
* Figures 7/8: the ET and MT series of Tables 1-2 as ASCII bar charts;
* Figure 9: the application turnaround time ``ATN = ET + MT`` series.

Each ``compute_*`` returns the underlying data (so benches and tests can
assert on shape properties); ``render_*`` produces the printable artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MatchConfig
from repro.core.match import MatchMapper
from repro.core.trace import evolution_frames, render_matrix_ascii
from repro.experiments.runner import get_comparison
from repro.experiments.spec import ScaleProfile, active_profile
from repro.experiments.suite import build_suite
from repro.stats.comparison import SeriesBySize
from repro.utils.rng import RngStreams

__all__ = [
    "Fig3Result",
    "compute_fig3",
    "render_fig3",
    "compute_fig7",
    "compute_fig8",
    "compute_fig9",
    "render_series_chart",
]


# --------------------------------------------------------------------------- Fig 3
@dataclass
class Fig3Result:
    """A tracked MaTCH run's matrix evolution at n = 10."""

    size: int
    frames: list[dict]
    n_iterations: int
    final_degeneracy: float
    best_cost: float


def compute_fig3(
    *, size: int = 10, seed: int = 2005, n_frames: int = 4
) -> Fig3Result:
    """Run MaTCH with matrix tracking and extract evolution frames."""
    instance = build_suite((size,), 1, seed=seed)[size][0]
    mapper = MatchMapper(MatchConfig(track_matrices=True))
    run_seed = RngStreams(seed=seed).seed_for("fig3")
    mapper.map(instance.problem, run_seed)
    assert mapper.last_result is not None
    ce = mapper.last_result.ce_result
    frames = evolution_frames(ce, n_frames=n_frames)
    return Fig3Result(
        size=size,
        frames=frames,
        n_iterations=ce.n_iterations,
        final_degeneracy=frames[-1]["degeneracy"],
        best_cost=ce.best_cost,
    )


def render_fig3(result: Fig3Result) -> str:
    """ASCII rendition of the Fig. 3 panel sequence."""
    parts = [
        f"Figure 3 (measured): stochastic matrix evolution, "
        f"|V_r| = |V_t| = {result.size} "
        f"({result.n_iterations} iterations, best ET {result.best_cost:.0f})"
    ]
    for frame in result.frames:
        parts.append(
            f"\n-- snapshot {frame['snapshot_index']} | "
            f"degeneracy {frame['degeneracy']:.3f} | "
            f"entropy {frame['entropy']:.3f} | "
            f"committed rows {frame['committed_rows']}/{result.size} --"
        )
        parts.append(render_matrix_ascii(frame["matrix"]))
    return "\n".join(parts)


# ------------------------------------------------------------------- Figs 7, 8, 9
def compute_fig7(
    profile: ScaleProfile | None = None,
    *,
    seed: int = 2005,
    n_workers: int | None = None,
) -> SeriesBySize:
    """Figure 7's data: the ET series per heuristic.

    ``n_workers`` sizes the execution fabric on a comparison-cache miss;
    the series itself is worker-count invariant.
    """
    profile = profile if profile is not None else active_profile()
    return get_comparison(profile, seed=seed, n_workers=n_workers).et_series


def compute_fig8(
    profile: ScaleProfile | None = None,
    *,
    seed: int = 2005,
    n_workers: int | None = None,
) -> SeriesBySize:
    """Figure 8's data: the MT series per heuristic."""
    profile = profile if profile is not None else active_profile()
    return get_comparison(profile, seed=seed, n_workers=n_workers).mt_series


def compute_fig9(
    profile: ScaleProfile | None = None,
    *,
    seed: int = 2005,
    seconds_per_unit: float = 1.0,
    n_workers: int | None = None,
) -> SeriesBySize:
    """Figure 9's data: the ATN = ET + MT series per heuristic."""
    profile = profile if profile is not None else active_profile()
    return get_comparison(profile, seed=seed, n_workers=n_workers).atn_series(
        seconds_per_unit=seconds_per_unit
    )


def render_series_chart(series: SeriesBySize, *, title: str, width: int = 48) -> str:
    """Grouped horizontal ASCII bar chart of a :class:`SeriesBySize`.

    One group per size, one bar per heuristic, log-scaled lengths (the
    paper's figures span orders of magnitude).
    """
    all_vals = [v for vals in series.values.values() for v in vals if v > 0]
    if not all_vals:
        return f"{title}\n(no positive data)"
    lo = min(all_vals)
    hi = max(all_vals)
    span = np.log10(hi / lo) if hi > lo else 1.0
    name_w = max(len(n) for n in series.values)

    lines = [title, "=" * len(title)]
    for i, size in enumerate(series.sizes):
        lines.append(f"n = {size}")
        for name in sorted(series.values):
            v = series.values[name][i]
            if v <= 0:
                bar = ""
            else:
                frac = (np.log10(v / lo) / span) if span > 0 else 1.0
                bar = "#" * max(1, int(round(frac * width)))
            lines.append(f"  {name.ljust(name_w)} |{bar} {v:,.2f}")
    lines.append(f"(log scale, '#' spans {lo:,.2f} .. {hi:,.2f} {series.metric})")
    return "\n".join(lines)
