"""Extension studies beyond the paper's grid: heterogeneity and CCR scaling.

The paper varies only the problem size; these sweeps characterise *when*
MaTCH's advantage over the GA is largest:

* :func:`heterogeneity_sweep` — widen the processing-weight spread of the
  platform at fixed size (a homogeneous cluster → a strongly heterogeneous
  grid). Mapping matters more the more heterogeneous the platform.
* :func:`ccr_sweep` — move the application from communication-bound to
  computation-bound at fixed size. Communication-bound instances make the
  mapping problem harder (which *pairs* of tasks share cheap links matters,
  not just load balance).

Each returns per-point mean ET for MaTCH and FastMap-GA plus the
improvement factor — the series behind `bench_scaling.py`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.ga import FastMapGA, GAConfig
from repro.core.config import MatchConfig
from repro.core.match import MatchMapper
from repro.graphs.generators import generate_resource_graph, generate_tig
from repro.mapping.problem import MappingProblem
from repro.utils.rng import RngStreams
from repro.utils.tables import format_table

__all__ = ["ScalingPoint", "ScalingResult", "heterogeneity_sweep", "ccr_sweep"]


@dataclass(frozen=True)
class ScalingPoint:
    """Aggregated outcome at one knob value."""

    knob_value: float
    match_et: float
    ga_et: float

    @property
    def improvement(self) -> float:
        """``ET_GA / ET_MaTCH`` at this point."""
        return self.ga_et / self.match_et if self.match_et > 0 else float("inf")


@dataclass(frozen=True)
class ScalingResult:
    """One full scaling sweep."""

    knob: str
    size: int
    runs: int
    points: tuple[ScalingPoint, ...]

    def render(self) -> str:
        """Text table of the sweep."""
        rows = [
            [p.knob_value, p.match_et, p.ga_et, p.improvement] for p in self.points
        ]
        return format_table(
            [self.knob, "ET MaTCH", "ET GA", "GA/MaTCH"],
            rows,
            title=f"Scaling study: {self.knob} at n = {self.size} "
            f"({self.runs} runs/point)",
        )


def _run_point(
    problem: MappingProblem,
    runs: int,
    streams: RngStreams,
    label: object,
    ga_config: GAConfig,
    match_config: MatchConfig,
) -> tuple[float, float]:
    match_costs, ga_costs = [], []
    for rep in range(runs):
        m_seed = streams.seed_for("scale-match", label=label, rep=rep)
        g_seed = streams.seed_for("scale-ga", label=label, rep=rep)
        match_costs.append(
            MatchMapper(match_config).map(problem, m_seed).execution_time
        )
        ga_costs.append(FastMapGA(ga_config).map(problem, g_seed).execution_time)
    return float(np.mean(match_costs)), float(np.mean(ga_costs))


def heterogeneity_sweep(
    spreads: Sequence[int] = (1, 3, 5, 10, 20),
    *,
    size: int = 15,
    runs: int = 2,
    seed: int = 2005,
    ga_config: GAConfig | None = None,
    match_config: MatchConfig | None = None,
) -> ScalingResult:
    """Sweep the platform's processing-weight spread ``w ~ U{1..spread}``.

    ``spread = 1`` is a homogeneous platform (every resource identical);
    the paper's setting is ``spread = 5``.
    """
    ga_config = ga_config or GAConfig(population_size=100, generations=150)
    match_config = match_config or MatchConfig()
    streams = RngStreams(seed=seed)
    tig = generate_tig(size, streams.get("scale-tig"))
    points = []
    for spread in spreads:
        resources = generate_resource_graph(
            size,
            streams.get("scale-res", spread=spread),
            node_weight_range=(1, int(spread)),
            topology="sparse",
        )
        problem = MappingProblem(tig, resources, require_square=True)
        match_et, ga_et = _run_point(
            problem, runs, streams, ("het", spread), ga_config, match_config
        )
        points.append(ScalingPoint(knob_value=float(spread), match_et=match_et, ga_et=ga_et))
    return ScalingResult(
        knob="proc weight spread", size=size, runs=runs, points=tuple(points)
    )


def ccr_sweep(
    multipliers: Sequence[float] = (0.25, 1.0, 4.0, 16.0),
    *,
    size: int = 15,
    runs: int = 2,
    seed: int = 2005,
    ga_config: GAConfig | None = None,
    match_config: MatchConfig | None = None,
) -> ScalingResult:
    """Sweep the application's computation-to-communication ratio."""
    ga_config = ga_config or GAConfig(population_size=100, generations=150)
    match_config = match_config or MatchConfig()
    streams = RngStreams(seed=seed)
    resources = generate_resource_graph(
        size, streams.get("scale-res-fixed"), topology="sparse"
    )
    points = []
    for mult in multipliers:
        tig = generate_tig(
            size, streams.get("scale-tig", ccr=mult), ccr_scale=float(mult)
        )
        problem = MappingProblem(tig, resources, require_square=True)
        match_et, ga_et = _run_point(
            problem, runs, streams, ("ccr", mult), ga_config, match_config
        )
        points.append(ScalingPoint(knob_value=float(mult), match_et=match_et, ga_et=ga_et))
    return ScalingResult(knob="CCR multiplier", size=size, runs=runs, points=tuple(points))
