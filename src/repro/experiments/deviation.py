"""Deviation study: which GA detail explains the published Table 1 magnitudes?

EXPERIMENTS.md documents that a conforming elitist GA cannot be as weak as
the paper's published ET_GA values (elitism bounds its output by the best
of 500 random initial individuals). This study makes the argument
executable: it runs MaTCH against three GA variants on the same instances —

* **conforming** — §5.1 verbatim (elitism, best-ever reporting);
* **no elitism** — still reports the best mapping ever encountered;
* **drifting** — no elitism *and* reports the final generation's best,
  modelling an implementation that loses its incumbent;

and reports each variant's ET ratio over MaTCH. Measured: conforming
≈ no-elitism < drifting — removing incumbent retention moves the ratios
in the published direction (×1.04 → ×1.2 at these scales) but nowhere
near the published 4.7-38.6×, so incumbent loss alone cannot explain the
published magnitudes either; roulette selection keeps even a drifting
population far better than random. The residual gap must lie in the
authors' instances or implementation, which is why the reproduction
asserts shape, not magnitude (EXPERIMENTS.md deviation 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.ga import FastMapGA, GAConfig
from repro.core.config import MatchConfig
from repro.core.match import MatchMapper
from repro.experiments.suite import build_suite
from repro.utils.rng import RngStreams
from repro.utils.tables import format_table

__all__ = ["DeviationPoint", "DeviationStudy", "ga_variant_study"]


@dataclass(frozen=True)
class DeviationPoint:
    """Mean ET per heuristic variant at one size."""

    size: int
    match_et: float
    conforming_et: float
    no_elitism_et: float
    drifting_et: float

    def ratios(self) -> dict[str, float]:
        """ET ratios over MaTCH per GA variant."""
        return {
            "conforming": self.conforming_et / self.match_et,
            "no_elitism": self.no_elitism_et / self.match_et,
            "drifting": self.drifting_et / self.match_et,
        }


@dataclass(frozen=True)
class DeviationStudy:
    """The sweep over sizes."""

    sizes: tuple[int, ...]
    runs: int
    points: tuple[DeviationPoint, ...]

    def render(self) -> str:
        """Ratio table over sizes, one row per GA variant."""
        header = ["ET_GA / ET_MaTCH", *[f"n={p.size}" for p in self.points]]
        rows = []
        for variant in ("conforming", "no_elitism", "drifting"):
            rows.append(
                [variant, *[p.ratios()[variant] for p in self.points]]
            )
        published = {10: 4.717, 20: 14.793, 30: 23.292, 40: 30.33, 50: 38.618}
        rows.append(
            ["published", *[published.get(p.size, float("nan")) for p in self.points]]
        )
        return format_table(
            header,
            rows,
            title=(
                f"GA-variant deviation study ({self.runs} runs/size): which "
                "implementation detail explains the published magnitudes?"
            ),
        )


def ga_variant_study(
    sizes: Sequence[int] = (10, 15, 20),
    *,
    runs: int = 2,
    seed: int = 2005,
    ga_population: int = 120,
    ga_generations: int = 200,
    match_config: MatchConfig | None = None,
) -> DeviationStudy:
    """Run MaTCH vs the three GA variants on the shared suite instances."""
    match_config = match_config or MatchConfig()
    streams = RngStreams(seed=seed)
    variants = {
        "conforming": GAConfig(
            population_size=ga_population, generations=ga_generations
        ),
        "no_elitism": GAConfig(
            population_size=ga_population, generations=ga_generations, elitism=False
        ),
        "drifting": GAConfig(
            population_size=ga_population,
            generations=ga_generations,
            elitism=False,
            report_final_population=True,
        ),
    }
    points = []
    for size in sizes:
        instance = build_suite((size,), 1, seed=seed)[size][0]
        match_costs = [
            MatchMapper(match_config)
            .map(instance.problem, streams.seed_for("dev-match", size=size, rep=r))
            .execution_time
            for r in range(runs)
        ]
        variant_costs: dict[str, float] = {}
        for name, cfg in variants.items():
            costs = [
                FastMapGA(cfg)
                .map(
                    instance.problem,
                    streams.seed_for("dev-ga", size=size, variant=name, rep=r),
                )
                .execution_time
                for r in range(runs)
            ]
            variant_costs[name] = float(np.mean(costs))
        points.append(
            DeviationPoint(
                size=size,
                match_et=float(np.mean(match_costs)),
                conforming_et=variant_costs["conforming"],
                no_elitism_et=variant_costs["no_elitism"],
                drifting_et=variant_costs["drifting"],
            )
        )
    return DeviationStudy(sizes=tuple(sizes), runs=runs, points=tuple(points))
