"""EXP-T1 — Table 1: execution-time comparison, FastMap-GA vs MaTCH.

Regenerates the paper's Table 1 layout (one column per size, rows
``ET_GA``, ``ET_MaTCH``, ``ET_GA / ET_MaTCH``) from a fresh suite run and
prints the published values alongside for the reproduction log.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.experiments import paper_data
from repro.experiments.runner import ComparisonData, get_comparison
from repro.experiments.spec import ScaleProfile, active_profile
from repro.runstore import current_run
from repro.utils.tables import format_table

__all__ = ["Table1Result", "compute_table1", "render_table1"]


@dataclass(frozen=True)
class Table1Result:
    """Measured Table 1 rows."""

    sizes: tuple[int, ...]
    et_ga: tuple[float, ...]
    et_match: tuple[float, ...]
    ratio: tuple[float, ...]

    @property
    def match_wins_everywhere(self) -> bool:
        """The paper's headline claim: MaTCH beats the GA at every size."""
        return all(r > 1.0 for r in self.ratio)

    @property
    def ratio_grows_with_size(self) -> bool:
        """The paper's trend: the improvement factor rises with n."""
        return self.ratio[-1] > self.ratio[0]


def compute_table1(
    profile: ScaleProfile | None = None,
    *,
    seed: int = 2005,
    n_workers: int | None = None,
) -> Table1Result:
    """Run (or reuse) the suite comparison and extract the Table 1 rows."""
    profile = profile if profile is not None else active_profile()
    data: ComparisonData = get_comparison(profile, seed=seed, n_workers=n_workers)
    et = data.et_series
    ratio = et.ratio_row("FastMap-GA", "MaTCH")
    result = Table1Result(
        sizes=et.sizes,
        et_ga=et.values["FastMap-GA"],
        et_match=et.values["MaTCH"],
        ratio=ratio,
    )
    run = current_run()
    if run is not None:
        run.record_metrics("table1", asdict(result))
    return result


def render_table1(
    result: Table1Result, *, include_paper: bool = True
) -> str:
    """Paper-layout text rendering, optionally with the published rows."""
    headers = ["|V_r| = |V_t|", *[str(s) for s in result.sizes]]
    rows: list[list] = [
        ["ET_GA (units)", *result.et_ga],
        ["ET_MaTCH (units)", *result.et_match],
        ["ET_GA / ET_MaTCH", *result.ratio],
    ]
    out = format_table(
        headers, rows, title="Table 1 (measured): execution times, FastMap-GA vs MaTCH"
    )
    if include_paper:
        paper_rows: list[list] = []
        common = [s for s in result.sizes if s in paper_data.PAPER_SIZES]
        if common:
            idx = [paper_data.PAPER_SIZES.index(s) for s in common]
            paper_rows = [
                ["ET_GA (paper)", *[paper_data.TABLE1_ET_GA[i] for i in idx]],
                ["ET_MaTCH (paper)", *[paper_data.TABLE1_ET_MATCH[i] for i in idx]],
                ["ratio (paper)", *[paper_data.TABLE1_RATIO[i] for i in idx]],
            ]
            out += "\n\n" + format_table(
                ["|V_r| = |V_t|", *[str(s) for s in common]],
                paper_rows,
                title="Table 1 (published)",
            )
    return out
