"""Experiment harness: the paper's tables, figures and ablations as code."""

from repro.experiments import paper_data
from repro.experiments.ablations import (
    elite_mode_sweep,
    AblationPoint,
    AblationResult,
    rho_sweep,
    samples_sweep,
    sweep,
    zeta_sweep,
)
from repro.experiments.figures import (
    Fig3Result,
    compute_fig3,
    compute_fig7,
    compute_fig8,
    compute_fig9,
    render_fig3,
    render_series_chart,
)
from repro.experiments.convergence import ConvergencePoint, ConvergenceStudy, convergence_study
from repro.experiments.deviation import DeviationPoint, DeviationStudy, ga_variant_study
from repro.experiments.persistence import (
    comparison_from_dict,
    comparison_to_dict,
    load_comparison,
    save_comparison,
)
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.reporting import (
    ReproductionReport,
    build_report,
    render_report_markdown,
)
from repro.experiments.scaling import (
    ScalingPoint,
    ScalingResult,
    ccr_sweep,
    heterogeneity_sweep,
)
from repro.experiments.runner import (
    ComparisonData,
    RunRecord,
    default_mappers,
    get_comparison,
    run_comparison,
)
from repro.experiments.spec import (
    PAPER_PROFILE,
    SMOKE_PROFILE,
    ScaleProfile,
    active_profile,
)
from repro.experiments.suite import SuiteInstance, build_suite, ccr_multipliers
from repro.experiments.table1 import Table1Result, compute_table1, render_table1
from repro.experiments.table2 import Table2Result, compute_table2, render_table2
from repro.experiments.table3 import Table3Result, compute_table3, render_table3

__all__ = [
    "paper_data",
    "ScaleProfile",
    "SMOKE_PROFILE",
    "PAPER_PROFILE",
    "active_profile",
    "SuiteInstance",
    "build_suite",
    "ccr_multipliers",
    "ComparisonData",
    "RunRecord",
    "run_comparison",
    "get_comparison",
    "default_mappers",
    "Table1Result",
    "compute_table1",
    "render_table1",
    "Table2Result",
    "compute_table2",
    "render_table2",
    "Table3Result",
    "compute_table3",
    "render_table3",
    "Fig3Result",
    "compute_fig3",
    "render_fig3",
    "compute_fig7",
    "compute_fig8",
    "compute_fig9",
    "render_series_chart",
    "AblationPoint",
    "AblationResult",
    "sweep",
    "rho_sweep",
    "zeta_sweep",
    "samples_sweep",
    "elite_mode_sweep",
    "EXPERIMENTS",
    "experiment_ids",
    "run_experiment",
    "comparison_to_dict",
    "comparison_from_dict",
    "save_comparison",
    "load_comparison",
    "ConvergencePoint",
    "ConvergenceStudy",
    "convergence_study",
    "DeviationPoint",
    "DeviationStudy",
    "ga_variant_study",
    "ReproductionReport",
    "build_report",
    "render_report_markdown",
    "ScalingPoint",
    "ScalingResult",
    "heterogeneity_sweep",
    "ccr_sweep",
]
