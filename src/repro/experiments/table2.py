"""EXP-T2 — Table 2: mapping-time (wall-clock) comparison.

Same suite run as Table 1 (memoized); reports the mean wall-clock seconds
each heuristic spent producing its mapping, plus the ``MT_MaTCH / MT_GA``
ratio row. Absolute values are hardware-relative (the paper timed a 2005
Pentium III); the reproduced claim is the *shape*: MaTCH's MT grows much
faster with n than the GA's (sample size ``N = 2n²`` vs. a fixed
population), with the ratio crossing 1 at small n.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.experiments import paper_data
from repro.experiments.runner import get_comparison
from repro.experiments.spec import ScaleProfile, active_profile
from repro.runstore import current_run
from repro.utils.tables import format_table

__all__ = ["Table2Result", "compute_table2", "render_table2"]


@dataclass(frozen=True)
class Table2Result:
    """Measured Table 2 rows."""

    sizes: tuple[int, ...]
    mt_ga: tuple[float, ...]
    mt_match: tuple[float, ...]
    ratio: tuple[float, ...]  # MT_MaTCH / MT_GA (paper orientation)

    @property
    def ratio_grows_with_size(self) -> bool:
        """The paper's trend: MaTCH's relative mapping cost rises with n."""
        return self.ratio[-1] > self.ratio[0]


def compute_table2(
    profile: ScaleProfile | None = None,
    *,
    seed: int = 2005,
    n_workers: int | None = None,
) -> Table2Result:
    """Run (or reuse) the suite comparison and extract the Table 2 rows."""
    profile = profile if profile is not None else active_profile()
    data = get_comparison(profile, seed=seed, n_workers=n_workers)
    mt = data.mt_series
    ratio = mt.ratio_row("MaTCH", "FastMap-GA")
    result = Table2Result(
        sizes=mt.sizes,
        mt_ga=mt.values["FastMap-GA"],
        mt_match=mt.values["MaTCH"],
        ratio=ratio,
    )
    run = current_run()
    if run is not None:
        run.record_metrics("table2", asdict(result))
    return result


def render_table2(result: Table2Result, *, include_paper: bool = True) -> str:
    """Paper-layout text rendering, optionally with the published rows."""
    headers = ["|V_r| = |V_t|", *[str(s) for s in result.sizes]]
    rows: list[list] = [
        ["MT_GA (s)", *result.mt_ga],
        ["MT_MaTCH (s)", *result.mt_match],
        ["MT_MaTCH / MT_GA", *result.ratio],
    ]
    out = format_table(
        headers, rows, title="Table 2 (measured): mapping times, FastMap-GA vs MaTCH"
    )
    if include_paper:
        common = [s for s in result.sizes if s in paper_data.PAPER_SIZES]
        if common:
            idx = [paper_data.PAPER_SIZES.index(s) for s in common]
            paper_rows = [
                ["MT_GA (paper, s)", *[paper_data.TABLE2_MT_GA[i] for i in idx]],
                ["MT_MaTCH (paper, s)", *[paper_data.TABLE2_MT_MATCH[i] for i in idx]],
                ["ratio (paper)", *[paper_data.TABLE2_RATIO[i] for i in idx]],
            ]
            out += "\n\n" + format_table(
                ["|V_r| = |V_t|", *[str(s) for s in common]],
                paper_rows,
                title="Table 2 (published; 2005 Pentium III wall-clock)",
            )
    return out
