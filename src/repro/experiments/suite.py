"""The §5.2 synthetic problem suite.

Five TIG/resource pairs per size "with varying computation to communication
ratio": we realize the variation with CCR multipliers spread around 1 on a
log scale, one per pair, so pair 0 is strongly communication-bound and the
last pair strongly computation-bound. All graphs follow the paper's weight
ranges (see :mod:`repro.graphs.generators`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.generators import GraphPair, generate_paper_pair
from repro.mapping.problem import MappingProblem
from repro.utils.rng import RngStreams

__all__ = ["SuiteInstance", "build_suite", "ccr_multipliers"]


def ccr_multipliers(n_pairs: int) -> tuple[float, ...]:
    """Log-spaced CCR multipliers centred on 1 (e.g. 5 pairs → 1/4 … 4)."""
    if n_pairs < 1:
        raise ConfigurationError(f"n_pairs must be >= 1, got {n_pairs}")
    if n_pairs == 1:
        return (1.0,)
    exponents = np.linspace(-2.0, 2.0, n_pairs)
    return tuple(float(2.0**e) for e in exponents)


@dataclass(frozen=True)
class SuiteInstance:
    """One problem of the suite: the graph pair plus its ready problem object."""

    size: int
    pair_index: int
    ccr_scale: float
    graphs: GraphPair
    problem: MappingProblem


def build_suite(
    sizes: tuple[int, ...],
    n_pairs: int,
    *,
    seed: int = 2005,
) -> dict[int, list[SuiteInstance]]:
    """Generate the full evaluation suite, deterministic in ``seed``.

    Returns ``{size: [SuiteInstance, ...]}`` with ``n_pairs`` instances per
    size. Instance RNG streams are derived per (size, pair) so adding sizes
    or pairs never reshuffles existing instances.
    """
    streams = RngStreams(seed=seed)
    multipliers = ccr_multipliers(n_pairs)
    suite: dict[int, list[SuiteInstance]] = {}
    for size in sizes:
        instances = []
        for p, ccr in enumerate(multipliers):
            gen = streams.get("suite", size=size, pair=p)
            # §5.2 generates the system graphs randomly (like the TIGs), so
            # the suite uses sparse random resource topologies; multi-hop
            # pairs are costed by the shortest-path closure.
            pair = generate_paper_pair(
                size,
                gen,
                ccr_scale=ccr,
                topology="sparse",
                seed_label=f"size{size}-pair{p}",
            )
            problem = MappingProblem(pair.tig, pair.resources, require_square=True)
            instances.append(
                SuiteInstance(
                    size=size, pair_index=p, ccr_scale=ccr, graphs=pair, problem=problem
                )
            )
        suite[size] = instances
    return suite
