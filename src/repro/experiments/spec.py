"""Experiment scale profiles: paper-scale vs. CI-scale parameters.

Paper-scale runs (GA with population 500 × 1000 generations at every size
up to 50, thirty ANOVA repetitions, five graph pairs × five runs) take tens
of minutes; the default profile shrinks every axis so the whole benchmark
suite finishes in a few minutes while preserving the comparison's *shape*
(same heuristics, same size sweep direction, same statistics).

Select the profile with the ``REPRO_SCALE`` environment variable
(``smoke`` | ``paper``) or ``REPRO_FULL_SCALE=1`` (alias for ``paper``);
programmatic callers pass a :class:`ScaleProfile` explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["ScaleProfile", "SMOKE_PROFILE", "PAPER_PROFILE", "active_profile"]


@dataclass(frozen=True)
class ScaleProfile:
    """Every scale knob of the reproduction harness in one object."""

    name: str
    #: Problem sizes |V_t| = |V_r| to sweep.
    sizes: tuple[int, ...]
    #: Independent TIG/resource pairs per size (paper: 5, varying CCR).
    n_pairs: int
    #: Independent heuristic runs per pair (paper: 5).
    runs_per_pair: int
    #: FastMap-GA population / generations for Tables 1-2 (paper: 500/1000).
    ga_population: int
    ga_generations: int
    #: Table 3 study: runs per heuristic (paper: 30) and the two GA configs.
    anova_runs: int
    anova_ga_configs: tuple[tuple[int, int], ...]
    #: MaTCH iteration budget (safety net only).
    match_max_iterations: int

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ConfigurationError("profile needs at least one size")
        if min(self.sizes) < 2:
            raise ConfigurationError("sizes must be >= 2")
        for field_name in ("n_pairs", "runs_per_pair", "ga_population",
                           "ga_generations", "anova_runs", "match_max_iterations"):
            if getattr(self, field_name) < 1:
                raise ConfigurationError(f"{field_name} must be >= 1")


#: Fast profile: minutes, preserves comparison shape. Default.
SMOKE_PROFILE = ScaleProfile(
    name="smoke",
    sizes=(10, 20, 30),
    n_pairs=2,
    runs_per_pair=2,
    ga_population=120,
    ga_generations=200,
    anova_runs=8,
    anova_ga_configs=((60, 600), (200, 180)),
    match_max_iterations=300,
)

#: Paper-scale profile: §5.2 parameters verbatim.
PAPER_PROFILE = ScaleProfile(
    name="paper",
    sizes=(10, 20, 30, 40, 50),
    n_pairs=5,
    runs_per_pair=5,
    ga_population=500,
    ga_generations=1000,
    anova_runs=30,
    anova_ga_configs=((100, 10000), (1000, 1000)),
    match_max_iterations=500,
)


def active_profile() -> ScaleProfile:
    """The profile selected by the environment (default: smoke)."""
    if os.environ.get("REPRO_FULL_SCALE", "") == "1":
        return PAPER_PROFILE
    name = os.environ.get("REPRO_SCALE", "smoke").strip().lower()
    if name in ("smoke", ""):
        return SMOKE_PROFILE
    if name == "paper":
        return PAPER_PROFILE
    raise ConfigurationError(f"unknown REPRO_SCALE {name!r}; use 'smoke' or 'paper'")
