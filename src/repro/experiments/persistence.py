"""Persistence for experiment results.

Paper-scale suite runs take many minutes; persisting the aggregated
:class:`~repro.experiments.runner.ComparisonData` lets the figures and
tables be re-rendered (or re-analysed) without re-running heuristics —
``python -m repro table1`` at paper scale once, then iterate on reports
offline. Plain JSON via :mod:`repro.utils.serialization`, with a schema
tag and full round-trip fidelity (every individual run record included).
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import SerializationError
from repro.experiments.runner import ComparisonData, RunRecord
from repro.runstore import current_run
from repro.stats.comparison import SeriesBySize
from repro.utils.serialization import dump_json, load_json

__all__ = ["comparison_to_dict", "comparison_from_dict", "save_comparison", "load_comparison"]

_SCHEMA = "repro.comparison/1"


def _series_to_dict(series: SeriesBySize) -> dict:
    return {
        "metric": series.metric,
        "sizes": list(series.sizes),
        "values": {k: list(v) for k, v in series.values.items()},
    }


def _series_from_dict(payload: dict) -> SeriesBySize:
    return SeriesBySize(
        metric=payload["metric"],
        sizes=tuple(payload["sizes"]),
        values={k: tuple(v) for k, v in payload["values"].items()},
    )


def comparison_to_dict(data: ComparisonData) -> dict:
    """Serialize a suite comparison (aggregates + per-run records)."""
    return {
        "schema": _SCHEMA,
        "profile_name": data.profile_name,
        "seed": data.seed,
        "sizes": list(data.sizes),
        "et_series": _series_to_dict(data.et_series),
        "mt_series": _series_to_dict(data.mt_series),
        "records": [
            {
                "heuristic": r.heuristic,
                "size": r.size,
                "pair_index": r.pair_index,
                "run_index": r.run_index,
                "execution_time": r.execution_time,
                "mapping_time": r.mapping_time,
                "n_evaluations": r.n_evaluations,
            }
            for r in data.records
        ],
    }


def comparison_from_dict(payload: dict) -> ComparisonData:
    """Rebuild a :class:`ComparisonData` from :func:`comparison_to_dict`."""
    if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
        raise SerializationError(
            f"unsupported comparison payload (schema "
            f"{payload.get('schema') if isinstance(payload, dict) else None!r})"
        )
    try:
        records = [RunRecord(**r) for r in payload["records"]]
        return ComparisonData(
            profile_name=payload["profile_name"],
            seed=payload["seed"],
            sizes=tuple(payload["sizes"]),
            et_series=_series_from_dict(payload["et_series"]),
            mt_series=_series_from_dict(payload["mt_series"]),
            records=records,
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed comparison payload: {exc}") from exc


def save_comparison(data: ComparisonData, path: str | Path) -> Path:
    """Write a comparison to ``path`` as JSON; returns the path.

    When a run is active the write is also logged into its lifecycle
    events, so the run records where its heavyweight payload went. (The
    run-store itself archives every in-run comparison under ``artifacts/``
    — see :func:`repro.experiments.runner.run_comparison`; this function
    is for explicit exports to caller-chosen locations.)
    """
    out = dump_json(comparison_to_dict(data), path)
    run = current_run()
    if run is not None:
        run.log_event(
            "comparison-exported", path=str(out),
            profile=data.profile_name, seed=data.seed,
        )
    return out


def load_comparison(path: str | Path) -> ComparisonData:
    """Load a comparison written by :func:`save_comparison`."""
    return comparison_from_dict(load_json(path))
