"""The experiment registry: id → regeneration callable.

DESIGN.md's per-experiment index is executable: every table/figure id maps
to a zero-argument callable returning the printable artifact. The CLI
(``python -m repro <id>``) and integration tests consume this table.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.exceptions import ExperimentError
from repro.experiments.ablations import (
    elite_mode_sweep,
    rho_sweep,
    samples_sweep,
    zeta_sweep,
)
from repro.experiments.convergence import convergence_study
from repro.experiments.deviation import ga_variant_study
from repro.experiments.scaling import ccr_sweep, heterogeneity_sweep
from repro.experiments.figures import (
    compute_fig3,
    compute_fig7,
    compute_fig8,
    compute_fig9,
    render_fig3,
    render_series_chart,
)
from repro.experiments.spec import ScaleProfile, active_profile
from repro.experiments.table1 import compute_table1, render_table1
from repro.experiments.table2 import compute_table2, render_table2
from repro.experiments.table3 import compute_table3, render_table3

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]


def _table1(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return render_table1(compute_table1(profile, seed=seed, n_workers=n_workers))


def _table2(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return render_table2(compute_table2(profile, seed=seed, n_workers=n_workers))


def _table3(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return render_table3(compute_table3(profile, seed=seed, n_workers=n_workers or 1))


def _fig3(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return render_fig3(compute_fig3(seed=seed))


def _fig7(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return render_series_chart(
        compute_fig7(profile, seed=seed, n_workers=n_workers),
        title="Figure 7 (measured): execution time (units) by size",
    )


def _fig8(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return render_series_chart(
        compute_fig8(profile, seed=seed, n_workers=n_workers),
        title="Figure 8 (measured): mapping time (seconds) by size",
    )


def _fig9(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return render_series_chart(
        compute_fig9(profile, seed=seed, n_workers=n_workers),
        title="Figure 9 (measured): application turnaround time (ATN) by size",
    )


def _abl_rho(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return rho_sweep(seed=seed, n_workers=n_workers or 1).render()


def _abl_zeta(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return zeta_sweep(seed=seed, n_workers=n_workers or 1).render()


def _abl_samples(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return samples_sweep(seed=seed, n_workers=n_workers or 1).render()


def _abl_elite(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return elite_mode_sweep(seed=seed, n_workers=n_workers or 1).render()


def _scaling_heterogeneity(
    profile: ScaleProfile, seed: int, n_workers: int | None = None
) -> str:
    return heterogeneity_sweep(seed=seed).render()


def _scaling_ccr(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return ccr_sweep(seed=seed).render()


def _convergence(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return convergence_study(seed=seed).render()


def _deviation_ga(profile: ScaleProfile, seed: int, n_workers: int | None = None) -> str:
    return ga_variant_study(seed=seed).render()


#: id → (description, callable(profile, seed, n_workers=None) -> printable
#: artifact). ``n_workers`` sizes the execution fabric for experiments that
#: dispatch independent cells; artifacts are worker-count invariant.
EXPERIMENTS: dict[str, tuple[str, Callable[..., str]]] = {
    "table1": ("Table 1: ET comparison FastMap-GA vs MaTCH", _table1),
    "table2": ("Table 2: MT comparison FastMap-GA vs MaTCH", _table2),
    "table3": ("Table 3: ANOVA study at n=10", _table3),
    "fig3": ("Figure 3: stochastic matrix evolution", _fig3),
    "fig7": ("Figure 7: ET series chart", _fig7),
    "fig8": ("Figure 8: MT series chart", _fig8),
    "fig9": ("Figure 9: ATN series chart", _fig9),
    "ablation-rho": ("Ablation: focus parameter rho", _abl_rho),
    "ablation-zeta": ("Ablation: smoothing factor zeta", _abl_zeta),
    "ablation-samples": ("Ablation: sample-size rule", _abl_samples),
    "ablation-elite": ("Ablation: elite selection mode (DESIGN.md 3.1)", _abl_elite),
    "scaling-heterogeneity": (
        "Extension: platform heterogeneity sweep", _scaling_heterogeneity,
    ),
    "scaling-ccr": ("Extension: CCR sweep", _scaling_ccr),
    "convergence": ("Extension: MaTCH convergence decomposition", _convergence),
    "deviation-ga": (
        "Deviation study: GA variants vs the published Table 1 magnitudes",
        _deviation_ga,
    ),
}


def experiment_ids() -> list[str]:
    """All registered experiment ids."""
    return sorted(EXPERIMENTS)


@contextmanager
def _fault_tolerance_env(
    max_retries: int | None, cell_timeout: float | None
) -> Iterator[None]:
    """Temporarily pin the fabric's retry knobs through their env overrides.

    Every experiment dispatches through
    :meth:`repro.utils.parallel.RetryPolicy.default`, which reads
    ``REPRO_MAX_RETRIES`` / ``REPRO_CELL_TIMEOUT``; scoping the override to
    the environment threads one CLI flag to every fabric call inside the
    experiment without widening fifteen callable signatures.
    """
    pins = {}
    if max_retries is not None:
        pins["REPRO_MAX_RETRIES"] = str(int(max_retries))
    if cell_timeout is not None:
        pins["REPRO_CELL_TIMEOUT"] = repr(float(cell_timeout))
    saved = {key: os.environ.get(key) for key in pins}
    os.environ.update(pins)
    try:
        yield
    finally:
        for key, old in saved.items():
            if old is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = old


def run_experiment(
    exp_id: str,
    *,
    profile: ScaleProfile | None = None,
    seed: int = 2005,
    n_workers: int | None = None,
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    runs_dir: str | None = None,
    run_id: str | None = None,
) -> str:
    """Regenerate one artifact by id; raises :class:`ExperimentError` on typos.

    ``n_workers`` is forwarded to the experiment's execution fabric
    (``None`` keeps each experiment's default); the rendered artifact is
    identical for every worker count. ``max_retries`` / ``cell_timeout``
    override the fabric's fault-tolerance policy for the duration of the
    experiment (``None`` keeps the defaults and any ambient
    ``REPRO_MAX_RETRIES`` / ``REPRO_CELL_TIMEOUT``).

    Every invocation is recorded as a run: a ``runs/{run_id}/`` directory
    (under ``runs_dir``, ``$REPRO_RUNS_DIR``, or ``runs/``) holding the
    manifest, the metrics the layers below logged into the active run, and
    the rendered artifact. The artifact text itself is still the return
    value — recording never changes what callers see.
    """
    if exp_id not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; available: {', '.join(experiment_ids())}"
        )
    profile = profile if profile is not None else active_profile()
    _, fn = EXPERIMENTS[exp_id]
    with _fault_tolerance_env(max_retries, cell_timeout):
        from repro.runstore import RunStore, activate_run, build_manifest

        store = RunStore(runs_dir)
        run = store.start_run(
            f"experiment-{exp_id}",
            run_id=run_id,
            manifest=build_manifest(
                f"experiment-{exp_id}",
                seed=seed,
                config={
                    "experiment": exp_id,
                    "profile": profile.name,
                    "sizes": list(profile.sizes),
                    "n_pairs": profile.n_pairs,
                    "runs_per_pair": profile.runs_per_pair,
                    "n_workers": n_workers,
                    "max_retries": max_retries,
                    "cell_timeout": cell_timeout,
                },
            ),
        )
        with activate_run(run):
            artifact = fn(profile, seed, n_workers)
            run.add_artifact("artifact.txt", text=artifact)
        return artifact
