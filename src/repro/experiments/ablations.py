"""Ablation studies over MaTCH's design parameters (DESIGN.md ABL-*).

The paper fixes ``ρ`` in [0.01, 0.1], ``ζ = 0.3`` and ``N = 2n²`` with one
sentence of justification each; these sweeps supply the missing evidence:

* ABL-RHO — quality/time vs. the focus parameter ``ρ``;
* ABL-ZETA — quality/time vs. the smoothing factor ``ζ`` (``ζ = 1``
  recovers the coarse, unsmoothed update);
* ABL-N — quality/time vs. the sample-size rule (``n²``, ``2n²``, ``4n²``).

Each sweep runs MaTCH with one knob varied on a fixed instance set and
reports mean ET, MT and iteration counts per knob value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.config import MatchConfig
from repro.core.match import MatchMapper
from repro.experiments.suite import build_suite
from repro.utils.rng import RngStreams
from repro.utils.tables import format_table

__all__ = [
    "AblationPoint",
    "AblationResult",
    "sweep",
    "rho_sweep",
    "zeta_sweep",
    "samples_sweep",
    "elite_mode_sweep",
]


@dataclass(frozen=True)
class AblationPoint:
    """Aggregated outcome of one knob value."""

    knob_value: float
    mean_et: float
    mean_mt: float
    mean_iterations: float
    mean_evaluations: float


@dataclass(frozen=True)
class AblationResult:
    """One full sweep."""

    knob: str
    size: int
    runs: int
    points: tuple[AblationPoint, ...]

    def best_point(self) -> AblationPoint:
        """The knob value with the lowest mean ET."""
        return min(self.points, key=lambda p: p.mean_et)

    def render(self) -> str:
        """Text table of the sweep."""
        rows = [
            [p.knob_value, p.mean_et, p.mean_mt, p.mean_iterations, p.mean_evaluations]
            for p in self.points
        ]
        return format_table(
            [self.knob, "mean ET", "mean MT (s)", "iters", "evals"],
            rows,
            title=f"Ablation: {self.knob} at n = {self.size} ({self.runs} runs/value)",
        )


def sweep(
    knob: str,
    values: Sequence[float],
    config_for: Callable[[float], MatchConfig],
    *,
    size: int = 15,
    runs: int = 3,
    seed: int = 2005,
) -> AblationResult:
    """Generic MaTCH knob sweep on one suite instance."""
    instance = build_suite((size,), 1, seed=seed)[size][0]
    streams = RngStreams(seed=seed)
    points = []
    for value in values:
        ets, mts, its, evs = [], [], [], []
        for rep in range(runs):
            mapper = MatchMapper(config_for(value))
            run_seed = streams.seed_for("ablation", knob=knob, value=value, rep=rep)
            result = mapper.map(instance.problem, run_seed)
            ets.append(result.execution_time)
            mts.append(result.mapping_time)
            its.append(result.extras["iterations"])
            evs.append(result.n_evaluations)
        points.append(
            AblationPoint(
                knob_value=float(value),
                mean_et=float(np.mean(ets)),
                mean_mt=float(np.mean(mts)),
                mean_iterations=float(np.mean(its)),
                mean_evaluations=float(np.mean(evs)),
            )
        )
    return AblationResult(knob=knob, size=size, runs=runs, points=tuple(points))


def rho_sweep(
    values: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2, 0.3),
    **kwargs,
) -> AblationResult:
    """ABL-RHO: sweep the focus parameter (paper range is 0.01-0.1)."""
    return sweep("rho", values, lambda v: MatchConfig(rho=v), **kwargs)


def zeta_sweep(
    values: Sequence[float] = (0.1, 0.2, 0.3, 0.5, 0.8, 1.0),
    **kwargs,
) -> AblationResult:
    """ABL-ZETA: sweep Eq. (13) smoothing (1.0 = coarse update)."""
    return sweep("zeta", values, lambda v: MatchConfig(zeta=v), **kwargs)


def elite_mode_sweep(
    *,
    size: int = 15,
    runs: int = 3,
    seed: int = 2005,
) -> AblationResult:
    """ABL-ELITE: exact-k vs threshold (tie-inclusive) elite selection.

    DESIGN.md §3.1 argues tie-inclusive elites stall degeneration on cost
    plateaus; this sweep quantifies the quality/iteration difference.
    Knob values: 0 = ``exact_k`` (MaTCH default), 1 = ``threshold``.
    """
    return sweep(
        "elite_mode (0=exact_k, 1=threshold)",
        (0.0, 1.0),
        lambda v: MatchConfig(elite_mode="threshold" if v > 0.5 else "exact_k"),
        size=size,
        runs=runs,
        seed=seed,
    )


def samples_sweep(
    multipliers: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    *,
    size: int = 15,
    **kwargs,
) -> AblationResult:
    """ABL-N: sweep the sample-size rule ``N = m·n²`` (paper: m = 2)."""
    return sweep(
        "N / n^2",
        multipliers,
        lambda m: MatchConfig(n_samples=max(2, int(m * size * size))),
        size=size,
        **kwargs,
    )
