"""Ablation studies over MaTCH's design parameters (DESIGN.md ABL-*).

The paper fixes ``ρ`` in [0.01, 0.1], ``ζ = 0.3`` and ``N = 2n²`` with one
sentence of justification each; these sweeps supply the missing evidence:

* ABL-RHO — quality/time vs. the focus parameter ``ρ``;
* ABL-ZETA — quality/time vs. the smoothing factor ``ζ`` (``ζ = 1``
  recovers the coarse, unsmoothed update);
* ABL-N — quality/time vs. the sample-size rule (``n²``, ``2n²``, ``4n²``).

Each sweep runs MaTCH with one knob varied on a fixed instance set and
reports mean ET, MT and iteration counts per knob value. The
(value × repetition) cells are independent and carry pre-derived seeds,
so :func:`sweep` can dispatch them over a warm
:class:`~repro.utils.parallel.WorkerPool` (``n_workers > 1``) with the
instance published once to the shared-memory plane — bit-identical to
the default serial loop.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.config import MatchConfig
from repro.core.match import MatchMapper
from repro.experiments.suite import build_suite
from repro.runstore import current_run
from repro.utils.parallel import CellFailure, WorkerPool
from repro.utils.rng import RngStreams
from repro.utils.shared_plane import ProblemRef, resolve_problem
from repro.utils.tables import format_table

__all__ = [
    "AblationPoint",
    "AblationResult",
    "sweep",
    "rho_sweep",
    "zeta_sweep",
    "samples_sweep",
    "elite_mode_sweep",
]


@dataclass(frozen=True)
class AblationPoint:
    """Aggregated outcome of one knob value."""

    knob_value: float
    mean_et: float
    mean_mt: float
    mean_iterations: float
    mean_evaluations: float


@dataclass(frozen=True)
class AblationResult:
    """One full sweep.

    ``failures`` carries the dispatch cells the fault-tolerant fabric could
    not complete; each point's means cover its completed repetitions (a
    point that lost every repetition reads as ``nan``).
    """

    knob: str
    size: int
    runs: int
    points: tuple[AblationPoint, ...]
    failures: tuple[CellFailure, ...] = ()

    def best_point(self) -> AblationPoint:
        """The knob value with the lowest mean ET."""
        return min(self.points, key=lambda p: p.mean_et)

    def render(self) -> str:
        """Text table of the sweep."""
        rows = [
            [p.knob_value, p.mean_et, p.mean_mt, p.mean_iterations, p.mean_evaluations]
            for p in self.points
        ]
        return format_table(
            [self.knob, "mean ET", "mean MT (s)", "iters", "evals"],
            rows,
            title=f"Ablation: {self.knob} at n = {self.size} ({self.runs} runs/value)",
        )


def _run_ablation_cell(
    task: "tuple[MatchConfig, ProblemRef, int]",
) -> tuple[float, float, float, int]:
    """Top-level (picklable) worker: one (knob value, repetition) cell.

    The config is built in the parent (``config_for`` may be a lambda,
    which cannot cross the pipe); only the picklable config, the shared
    problem reference and the seed travel.
    """
    config, problem_ref, run_seed = task
    result = MatchMapper(config).map(resolve_problem(problem_ref), run_seed)
    return (
        result.execution_time,
        result.mapping_time,
        float(result.extras["iterations"]),
        result.n_evaluations,
    )


def sweep(
    knob: str,
    values: Sequence[float],
    config_for: Callable[[float], MatchConfig],
    *,
    size: int = 15,
    runs: int = 3,
    seed: int = 2005,
    n_workers: int | None = 1,
) -> AblationResult:
    """Generic MaTCH knob sweep on one suite instance.

    All (value × repetition) cells share one :class:`WorkerPool` and one
    shared-memory copy of the instance; ``n_workers=1`` (the default)
    keeps the historical serial behaviour, and any other worker count
    produces the same points because every cell's seed is derived up
    front.
    """
    instance = build_suite((size,), 1, seed=seed)[size][0]
    streams = RngStreams(seed=seed)
    with WorkerPool(n_workers) as pool:
        problem_ref = pool.publish_problem(instance.problem)
        cells = [
            (
                config_for(value),
                problem_ref,
                streams.seed_for("ablation", knob=knob, value=value, rep=rep),
            )
            for value in values
            for rep in range(runs)
        ]
        report = pool.map_salvage(_run_ablation_cell, cells)
    failed = {f.index for f in report.failures}
    if failed:
        named = ", ".join(
            f"{knob}={values[f.index // runs]} rep {f.index % runs}"
            f" ({f.kind} after {f.attempts} attempts)"
            for f in report.failures
        )
        warnings.warn(
            f"ablation sweep salvaged with {len(failed)} failed cell(s): "
            f"{named}; their knob means exclude them",
            RuntimeWarning,
            stacklevel=2,
        )
    points = []
    for i, value in enumerate(values):
        group = [
            report.results[j]
            for j in range(i * runs, (i + 1) * runs)
            if j not in failed
        ]
        if group:
            ets, mts, its, evs = zip(*group)
            means = tuple(float(np.mean(m)) for m in (ets, mts, its, evs))
        else:
            means = (math.nan, math.nan, math.nan, math.nan)
        points.append(
            AblationPoint(
                knob_value=float(value),
                mean_et=means[0],
                mean_mt=means[1],
                mean_iterations=means[2],
                mean_evaluations=means[3],
            )
        )
    result = AblationResult(
        knob=knob,
        size=size,
        runs=runs,
        points=tuple(points),
        failures=report.failures,
    )
    run = current_run()
    if run is not None:
        run.record_metrics(
            f"ablation-{_metric_slug(knob)}",
            {
                "knob": knob,
                "size": size,
                "runs": runs,
                "points": [
                    {"value": p.knob_value, "mean_et": p.mean_et, "mean_mt": p.mean_mt,
                     "mean_iterations": p.mean_iterations,
                     "mean_evaluations": p.mean_evaluations}
                    for p in points
                ],
                "failed_cells": len(report.failures),
            },
        )
        run.log_event(
            "ablation-finished", knob=knob, values=len(values),
            failures=len(report.failures),
        )
    return result


def _metric_slug(knob: str) -> str:
    """A filesystem/metric-safe slug for a knob label like ``N / n^2``."""
    return "".join(c if c.isalnum() else "-" for c in knob).strip("-")


def rho_sweep(
    values: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2, 0.3),
    **kwargs,
) -> AblationResult:
    """ABL-RHO: sweep the focus parameter (paper range is 0.01-0.1)."""
    return sweep("rho", values, lambda v: MatchConfig(rho=v), **kwargs)


def zeta_sweep(
    values: Sequence[float] = (0.1, 0.2, 0.3, 0.5, 0.8, 1.0),
    **kwargs,
) -> AblationResult:
    """ABL-ZETA: sweep Eq. (13) smoothing (1.0 = coarse update)."""
    return sweep("zeta", values, lambda v: MatchConfig(zeta=v), **kwargs)


def elite_mode_sweep(
    *,
    size: int = 15,
    runs: int = 3,
    seed: int = 2005,
    n_workers: int | None = 1,
) -> AblationResult:
    """ABL-ELITE: exact-k vs threshold (tie-inclusive) elite selection.

    DESIGN.md §3.1 argues tie-inclusive elites stall degeneration on cost
    plateaus; this sweep quantifies the quality/iteration difference.
    Knob values: 0 = ``exact_k`` (MaTCH default), 1 = ``threshold``.
    """
    return sweep(
        "elite_mode (0=exact_k, 1=threshold)",
        (0.0, 1.0),
        lambda v: MatchConfig(elite_mode="threshold" if v > 0.5 else "exact_k"),
        size=size,
        runs=runs,
        seed=seed,
        n_workers=n_workers,
    )


def samples_sweep(
    multipliers: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    *,
    size: int = 15,
    **kwargs,
) -> AblationResult:
    """ABL-N: sweep the sample-size rule ``N = m·n²`` (paper: m = 2)."""
    return sweep(
        "N / n^2",
        multipliers,
        lambda m: MatchConfig(n_samples=max(2, int(m * size * size))),
        size=size,
        **kwargs,
    )
