"""Convergence study: why MaTCH's mapping time grows the way it does.

Table 2 shows MT_MaTCH growing steeply with n. This study decomposes the
growth into its three factors for each size:

    MT ≈ iterations × (samples per iteration = 2n²) × per-sample cost

and records commitment statistics (when rows of the stochastic matrix
lock in) from the diagnostics module — quantitative context the paper's
"the CE method is inherently slow" sentence lacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ce.diagnostics import commit_iterations, mass_trajectory
from repro.core.config import MatchConfig
from repro.core.match import MatchMapper
from repro.experiments.suite import build_suite
from repro.utils.rng import RngStreams
from repro.utils.tables import format_table

__all__ = ["ConvergencePoint", "ConvergenceStudy", "convergence_study"]


@dataclass(frozen=True)
class ConvergencePoint:
    """Aggregated convergence behaviour at one problem size."""

    size: int
    mean_iterations: float
    mean_evaluations: float
    mean_mapping_time: float
    mean_time_per_eval_us: float
    mean_commit_iteration: float  # snapshot index of median row commitment
    final_mass: float  # mass on the decode at the end (Fig. 3 endpoint)


@dataclass(frozen=True)
class ConvergenceStudy:
    """The full sweep over sizes."""

    sizes: tuple[int, ...]
    runs: int
    points: tuple[ConvergencePoint, ...]

    def render(self) -> str:
        """Text table of the decomposition."""
        rows = [
            [p.size, p.mean_iterations, f"{2 * p.size * p.size}",
             p.mean_evaluations, p.mean_mapping_time,
             p.mean_time_per_eval_us, p.mean_commit_iteration, p.final_mass]
            for p in self.points
        ]
        return format_table(
            ["n", "iters", "N=2n^2", "evals", "MT (s)", "us/eval",
             "commit@", "final mass"],
            rows,
            title=f"MaTCH convergence decomposition ({self.runs} runs/size)",
        )


def convergence_study(
    sizes: Sequence[int] = (10, 15, 20),
    *,
    runs: int = 2,
    seed: int = 2005,
    config: MatchConfig | None = None,
) -> ConvergenceStudy:
    """Run tracked MaTCH per size and aggregate the convergence factors."""
    base = config or MatchConfig()
    streams = RngStreams(seed=seed)
    points = []
    for size in sizes:
        instance = build_suite((size,), 1, seed=seed)[size][0]
        iters, evals, mts, commits, masses = [], [], [], [], []
        for rep in range(runs):
            cfg = MatchConfig(
                rho=base.rho,
                zeta=base.zeta,
                n_samples=base.n_samples,
                max_iterations=base.max_iterations,
                gamma_window=base.gamma_window,
                track_matrices=True,
            )
            mapper = MatchMapper(cfg)
            result = mapper.map(
                instance.problem, streams.seed_for("conv", size=size, rep=rep)
            )
            assert mapper.last_result is not None
            ce = mapper.last_result.ce_result
            iters.append(ce.n_iterations)
            evals.append(ce.n_evaluations)
            mts.append(result.mapping_time)
            commits.append(float(np.median(commit_iterations(ce))))
            masses.append(float(mass_trajectory(ce)[-1]))
        mean_evals = float(np.mean(evals))
        mean_mt = float(np.mean(mts))
        points.append(
            ConvergencePoint(
                size=size,
                mean_iterations=float(np.mean(iters)),
                mean_evaluations=mean_evals,
                mean_mapping_time=mean_mt,
                mean_time_per_eval_us=(
                    1e6 * mean_mt / mean_evals if mean_evals else 0.0
                ),
                mean_commit_iteration=float(np.mean(commits)),
                final_mass=float(np.mean(masses)),
            )
        )
    return ConvergenceStudy(sizes=tuple(sizes), runs=runs, points=tuple(points))
