"""EXP-T3 — Table 3: the ANOVA significance study.

Protocol (§5.3): run MaTCH and two FastMap-GA configurations —
population/generations 100/10000 and 1000/1000 — thirty independent times
each on a ``|V_r| = |V_t| = 10`` instance; report mean, 95% CI, standard
deviation and median of the produced mappings' execution times, then a
one-way ANOVA on the three groups. The paper finds F = 1547, p < 0.0001;
the reproduced claim is the verdict (F ≫ 1, p ≪ 0.05), not the F value.

Execution: the thirty MaTCH repetitions run as ONE fused multi-chain CE
call (:meth:`MatchMapper.map_many` — seed-for-seed identical to a serial
repetition loop, several times faster); the GA repetitions are independent
cells dispatched over one warm :class:`repro.utils.parallel.WorkerPool`
shared by both GA configurations, with the n = 10 instance published once
to the shared-memory problem plane. Every repetition's seed is derived
statelessly from the root seed, so the reported samples are bit-identical
for any ``n_workers``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.baselines.ga import FastMapGA, GAConfig
from repro.core.config import MatchConfig
from repro.core.match import MatchMapper
from repro.experiments import paper_data
from repro.experiments.spec import ScaleProfile, active_profile
from repro.experiments.suite import build_suite
from repro.runstore import current_run
from repro.stats.anova import AnovaResult, one_way_anova
from repro.stats.descriptive import SampleSummary, summarize_sample
from repro.utils.parallel import CellFailure, WorkerPool
from repro.utils.rng import RngStreams
from repro.utils.shared_plane import ProblemRef, resolve_problem
from repro.utils.tables import format_table, render_kv_block

__all__ = ["Table3Result", "compute_table3", "render_table3"]


def _run_ga_rep(task: "tuple[int, int, ProblemRef, int]") -> float:
    """Top-level (picklable) worker: one FastMap-GA repetition's ET.

    The problem arrives as a shared-plane reference (a zero-copy handle
    in pool workers, the live problem in-process).
    """
    pop, gen, problem_ref, run_seed = task
    problem = resolve_problem(problem_ref)
    mapper = FastMapGA(GAConfig(population_size=pop, generations=gen))
    return mapper.map(problem, run_seed).execution_time


@dataclass(frozen=True)
class Table3Result:
    """Measured Table 3: per-heuristic summaries plus the ANOVA verdict.

    ``failures`` lists ``(group label, cell failure)`` pairs for
    repetitions the fault-tolerant dispatch could not complete; the
    statistics are computed over the repetitions that did.
    """

    size: int
    runs: int
    summaries: tuple[SampleSummary, ...]
    anova: AnovaResult
    samples: dict[str, tuple[float, ...]]
    failures: tuple[tuple[str, CellFailure], ...] = ()


def compute_table3(
    profile: ScaleProfile | None = None,
    *,
    seed: int = 2005,
    n_workers: int | None = 1,
) -> Table3Result:
    """Run the three-heuristic ANOVA study at n = 10.

    The MaTCH group runs as one fused multi-chain call; both GA groups
    dispatch their per-repetition cells over one warm
    :class:`WorkerPool` (``n_workers=1`` — the default — runs serially),
    attaching to a single shared-memory copy of the instance. Seeds are
    per repetition, so the samples do not depend on the worker count.
    """
    profile = profile if profile is not None else active_profile()
    size = 10
    instance = build_suite((size,), 1, seed=seed)[size][0]
    streams = RngStreams(seed=seed)

    (pop_a, gen_a), (pop_b, gen_b) = profile.anova_ga_configs
    samples: dict[str, tuple[float, ...]] = {}

    match_seeds = [
        streams.seed_for("anova", heuristic="MaTCH", rep=rep)
        for rep in range(profile.anova_runs)
    ]
    match_mapper = MatchMapper(
        MatchConfig(max_iterations=profile.match_max_iterations)
    )
    samples["MaTCH"] = tuple(
        r.execution_time for r in match_mapper.map_many(instance.problem, match_seeds)
    )

    failures: list[tuple[str, CellFailure]] = []
    with WorkerPool(n_workers) as pool:
        problem_ref = pool.publish_problem(instance.problem)
        for pop, gen in ((pop_a, gen_a), (pop_b, gen_b)):
            name = f"FastMap-GA {pop}/{gen}"
            tasks = [
                (pop, gen, problem_ref,
                 streams.seed_for("anova", heuristic=name, rep=rep))
                for rep in range(profile.anova_runs)
            ]
            report = pool.map_salvage(_run_ga_rep, tasks)
            samples[name] = tuple(et for _, et in report.completed())
            failures.extend((name, f) for f in report.failures)

    if failures:
        named = ", ".join(
            f"{group} rep {f.index} ({f.kind} after {f.attempts} attempts)"
            for group, f in failures
        )
        warnings.warn(
            f"Table 3 salvaged with {len(failures)} failed replication(s): "
            f"{named}; the ANOVA runs on the surviving samples",
            RuntimeWarning,
            stacklevel=2,
        )

    summaries = tuple(
        summarize_sample(vals, label=name) for name, vals in samples.items()
    )
    anova = one_way_anova(list(samples.values()))
    result = Table3Result(
        size=size,
        runs=profile.anova_runs,
        summaries=summaries,
        anova=anova,
        samples=samples,
        failures=tuple(failures),
    )
    run = current_run()
    if run is not None:
        run.record_metrics(
            "table3",
            {
                "size": size,
                "runs": profile.anova_runs,
                "groups": {
                    s.label: {"mean": s.mean, "std": s.std, "median": s.median,
                              "ci_low": s.ci_low, "ci_high": s.ci_high}
                    for s in summaries
                },
                "anova": {"f_value": anova.f_value, "p_value": anova.p_value,
                          "df_between": anova.df_between, "df_within": anova.df_within},
                "failed_replications": len(failures),
            },
        )
    return result


def render_table3(result: Table3Result, *, include_paper: bool = True) -> str:
    """Paper-layout text rendering with the ANOVA block."""
    headers = ["Parameter", *[s.label for s in result.summaries]]
    rows: list[list] = [
        ["Absolute Mean of ET (units)", *[s.mean for s in result.summaries]],
        [
            "95% CI for Mean",
            *[f"{s.ci_low:.0f}-{s.ci_high:.0f}" for s in result.summaries],
        ],
        ["Standard Deviation", *[s.std for s in result.summaries]],
        ["Median", *[s.median for s in result.summaries]],
    ]
    out = format_table(
        headers,
        rows,
        title=(
            f"Table 3 (measured): ET statistics over {result.runs} runs, "
            f"|V_r| = |V_t| = {result.size}"
        ),
    )
    out += "\n\n" + render_kv_block(
        "ANOVA (measured)",
        {
            "F value": result.anova.f_value,
            "P value assuming null hypothesis": result.anova.p_value,
            "df (between, within)": f"({result.anova.df_between}, {result.anova.df_within})",
            "significant at alpha=0.0001": result.anova.p_value < 1e-4,
        },
    )
    if include_paper:
        paper_rows = [
            [param, *[paper_data.TABLE3[h][key] if key != "ci95"
                      else "{}-{}".format(*paper_data.TABLE3[h]["ci95"])
                      for h in paper_data.TABLE3]]
            for param, key in [
                ("Mean (paper)", "mean"),
                ("95% CI (paper)", "ci95"),
                ("Std (paper)", "std"),
                ("Median (paper)", "median"),
            ]
        ]
        out += "\n\n" + format_table(
            ["Parameter", *paper_data.TABLE3.keys()],
            paper_rows,
            title="Table 3 (published)",
        )
        out += "\n\n" + render_kv_block("ANOVA (published)", dict(paper_data.TABLE3_ANOVA))
    return out
