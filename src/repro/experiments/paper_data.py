"""The numbers published in the paper (Tables 1-3), for side-by-side reports.

Every harness prints the paper's value next to the measured one so
EXPERIMENTS.md can record paper-vs-measured without manual transcription.
Values are copied verbatim from the paper text.
"""

from __future__ import annotations

__all__ = [
    "PAPER_SIZES",
    "TABLE1_ET_GA",
    "TABLE1_ET_MATCH",
    "TABLE1_RATIO",
    "TABLE2_MT_GA",
    "TABLE2_MT_MATCH",
    "TABLE2_RATIO",
    "TABLE3",
    "TABLE3_ANOVA",
]

#: Problem sizes of the evaluation grid (§5.2).
PAPER_SIZES: tuple[int, ...] = (10, 20, 30, 40, 50)

#: Table 1 — application execution time (abstract units), FastMap-GA row.
TABLE1_ET_GA: tuple[float, ...] = (16585, 125579, 307158, 534124, 921359)

#: Table 1 — application execution time (abstract units), MaTCH row.
TABLE1_ET_MATCH: tuple[float, ...] = (3516, 8489, 13817, 17610, 23858)

#: Table 1 — published improvement factors ET_GA / ET_MaTCH.
TABLE1_RATIO: tuple[float, ...] = (4.717, 14.793, 23.292, 30.33, 38.618)

#: Table 2 — mapping time in seconds (2005 Pentium III), FastMap-GA row.
TABLE2_MT_GA: tuple[float, ...] = (13.62, 22.25, 32.58, 42.97, 50.66)

#: Table 2 — mapping time in seconds, MaTCH row.
TABLE2_MT_MATCH: tuple[float, ...] = (13.47, 58.65, 268.32, 883.96, 1587.75)

#: Table 2 — published ratios MT_MaTCH / MT_GA.
TABLE2_RATIO: tuple[float, ...] = (0.989, 2.636, 8.23, 20.57, 31.34)

#: Table 3 — per-heuristic statistics over 30 runs at n = 10. The paper's
#: row label says "Mapping Time in seconds" but caption and magnitudes
#: identify the quantity as the execution time of the produced mapping
#: (cf. Table 1's 3516 at n = 10); see DESIGN.md §3.2.
TABLE3: dict[str, dict[str, float | tuple[float, float]]] = {
    "MaTCH": {
        "mean": 3559,
        "ci95": (3143, 3975),
        "std": 207,
        "median": 3535,
    },
    "FastMap-GA 100/10000": {
        "mean": 18720,
        "ci95": (18300, 19132),
        "std": 1789,
        "median": 18770,
    },
    "FastMap-GA 1000/1000": {
        "mean": 16700,
        "ci95": (16288, 17120),
        "std": 836,
        "median": 16730,
    },
}

#: Table 3 — the published ANOVA verdict.
TABLE3_ANOVA: dict[str, float | str] = {
    "F value": 1547,
    "P value assuming null hypothesis": "< 0.0001",
    "runs per heuristic": 30,
    "size": 10,
}
