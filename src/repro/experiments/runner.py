"""Suite runners: execute heuristics over the problem suite and aggregate.

The paper's measurement protocol (§5.3): every reported number is the
average over 5 independent runs of the heuristic on each TIG/resource pair,
then averaged across the pairs of that size. :func:`run_comparison`
implements exactly that protocol for any set of heuristics and returns the
ET and MT series (Tables 1-2 / Figures 7-9 all derive from this one
computation; it is memoized per (profile, seed) so regenerating several
artifacts does not re-run the heuristics).

The (size × pair × heuristic × repetition) cells are mutually independent
and each carries its own derived seed, so :func:`run_comparison` dispatches
them over the persistent execution fabric
(:class:`repro.utils.parallel.WorkerPool`): one warm pool serves instance
generation and every cell, each instance's arrays are published once to the
shared-memory problem plane (cells carry a handle plus a
:class:`~repro.runtime.registry.SolverSpec` instead of pickled graphs), and
cells are scheduled longest-first so big-``n`` stragglers cannot hold the
tail. Every result field except the measured ``mapping_time`` wall-clock is
identical — record for record — to the serial loop for any worker count.

Heuristics are addressed through the solver registry
(:mod:`repro.runtime.registry`): a cell's mapper is rebuilt in the worker
from a picklable :class:`~repro.runtime.registry.SolverSpec` (name +
constructor params), so any registered solver — built-in or third-party —
plugs into the §5.3 protocol by name. ``mappers`` values may be specs
directly or ``size -> spec``/``size -> Mapper`` callables; the historical
:class:`MatchFactory` / :class:`GAFactory` classes remain as thin
spec-backed wrappers.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.baselines.base import Mapper
from repro.exceptions import ConfigurationError
from repro.experiments.spec import ScaleProfile
from repro.experiments.suite import SuiteInstance, build_suite
from repro.runtime.budget import EvaluationBudget
from repro.runtime.checkpoint import CheckpointWriter
from repro.runtime.hooks import SearchHooks
from repro.runtime.registry import SolverSpec
from repro.runstore import current_run
from repro.stats.comparison import SeriesBySize
from repro.utils.parallel import RetryPolicy, WorkerPool
from repro.utils.rng import RngStreams
from repro.utils.shared_plane import ProblemRef, resolve_problem

__all__ = [
    "RunRecord",
    "CellFailureRecord",
    "ComparisonData",
    "run_comparison",
    "get_comparison",
    "default_mappers",
    "MatchFactory",
    "GAFactory",
    "SpecFactory",
    "run_instance",
]

#: A heuristic entry in ``run_comparison``: either a fixed spec, or a
#: callable from instance size to a spec (or to a ready mapper, for
#: heuristics that bypass the registry).
MapperFactory = Callable[[int], "Mapper | SolverSpec"]
MapperLike = "SolverSpec | MapperFactory"


@dataclass(frozen=True)
class RunRecord:
    """One heuristic run on one suite instance."""

    heuristic: str
    size: int
    pair_index: int
    run_index: int
    execution_time: float
    mapping_time: float
    n_evaluations: int


@dataclass(frozen=True)
class CellFailureRecord:
    """A suite cell that permanently failed, mapped back to its identity.

    The execution fabric reports failures by dispatch index; this record
    translates them into experiment coordinates so a salvaged
    :class:`ComparisonData` names exactly which (heuristic, size, pair,
    repetition) runs are missing from its averages.
    """

    heuristic: str
    size: int
    pair_index: int
    run_index: int
    kind: str  # "exception" | "worker-death" | "timeout"
    attempts: int
    message: str


@dataclass
class ComparisonData:
    """Aggregated suite results: the source of Tables 1-2 and Figs 7-9."""

    profile_name: str
    seed: int
    sizes: tuple[int, ...]
    et_series: SeriesBySize
    mt_series: SeriesBySize
    records: list[RunRecord] = field(default_factory=list, repr=False)
    failures: tuple[CellFailureRecord, ...] = ()

    @property
    def complete(self) -> bool:
        """True when every dispatched cell produced a record."""
        return not self.failures

    def atn_series(self, *, seconds_per_unit: float = 1.0) -> SeriesBySize:
        """Fig. 9's ATN = ET·(s/unit) + MT series."""
        scaled_et = SeriesBySize(
            metric="ET(s)",
            sizes=self.et_series.sizes,
            values={
                k: tuple(v * seconds_per_unit for v in vals)
                for k, vals in self.et_series.values.items()
            },
        )
        return scaled_et.combined_with(self.mt_series, metric="ATN (s)")


@dataclass(frozen=True)
class SpecFactory:
    """Picklable factory returning the same registry spec at every size."""

    spec: SolverSpec

    def __call__(self, size: int) -> SolverSpec:
        return self.spec


@dataclass(frozen=True)
class MatchFactory:
    """Picklable factory for the ``"match"`` registry solver at fixed params."""

    max_iterations: int

    def __call__(self, size: int) -> SolverSpec:
        return SolverSpec.of("match", {"max_iterations": self.max_iterations})


@dataclass(frozen=True)
class GAFactory:
    """Picklable factory for the ``"fastmap-ga"`` registry solver at fixed params."""

    population_size: int
    generations: int

    def __call__(self, size: int) -> SolverSpec:
        return SolverSpec.of(
            "fastmap-ga",
            {
                "population_size": self.population_size,
                "generations": self.generations,
            },
        )


def default_mappers(profile: ScaleProfile) -> dict[str, MapperFactory]:
    """The paper's two heuristics at the profile's parameters."""
    return {
        "MaTCH": MatchFactory(max_iterations=profile.match_max_iterations),
        "FastMap-GA": GAFactory(
            population_size=profile.ga_population,
            generations=profile.ga_generations,
        ),
    }


def _build_mapper(entry: "Mapper | SolverSpec | MapperLike", size: int) -> Mapper:
    """Resolve a heuristic entry to a fresh mapper for a given size."""
    if isinstance(entry, SolverSpec):
        return entry.build()
    made = entry(size) if callable(entry) else entry
    if isinstance(made, SolverSpec):
        return made.build()
    if isinstance(made, Mapper):
        return made
    raise ConfigurationError(
        f"mapper entry must yield a Mapper or SolverSpec, got {type(made).__name__}"
    )


def run_instance(
    mapper: Mapper,
    instance: SuiteInstance,
    rng_seed: int,
    *,
    budget: EvaluationBudget | None = None,
    hooks: SearchHooks | None = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 1,
) -> tuple[float, float, int]:
    """Run one heuristic once; returns (ET, MT, evaluations).

    ``checkpoint_path`` attaches a :class:`CheckpointWriter` (writing
    every ``checkpoint_every`` iterations) so the run can be picked up by
    :func:`repro.runtime.resume_run` after a kill; it requires the mapper
    to carry a registry identity (``registry_name``), since that identity
    is what the checkpoint stores to rebuild the mapper on resume.
    """
    checkpointer = None
    if checkpoint_path is not None:
        if mapper.registry_name is None:
            raise ConfigurationError(
                f"{mapper.name} has no solver-registry identity; "
                "checkpointing needs a registered solver"
            )
        checkpointer = CheckpointWriter(
            checkpoint_path,
            solver_name=mapper.registry_name,
            params=mapper.checkpoint_params(),
            problem=instance.problem,
            seed=rng_seed,
            every=checkpoint_every,
        )
    result = mapper.map(
        instance.problem,
        rng_seed,
        budget=budget,
        hooks=hooks,
        checkpointer=checkpointer,
    )
    return result.execution_time, result.mapping_time, result.n_evaluations


def _resolve_solver(entry: "Mapper | SolverSpec | MapperLike", size: int) -> Any:
    """Resolve a heuristic entry to its cheapest picklable form for a cell.

    Registry-backed mappers travel as their :class:`SolverSpec` (name +
    params, a few hundred bytes); unregistered mappers fall back to pickling
    the object itself. Factories are evaluated here, in the parent, so the
    cell carries a concrete solver rather than a closure.
    """
    if isinstance(entry, SolverSpec):
        return entry
    made = entry(size) if callable(entry) and not isinstance(entry, Mapper) else entry
    if isinstance(made, SolverSpec):
        return made
    if isinstance(made, Mapper):
        return SolverSpec.for_mapper(made) or made
    raise ConfigurationError(
        f"mapper entry must yield a Mapper or SolverSpec, got {type(made).__name__}"
    )


@dataclass(frozen=True)
class _ComparisonCell:
    """One self-contained (heuristic, instance, repetition) unit of work.

    Carries everything a worker process needs — and nothing heavy: the
    solver travels as a :class:`SolverSpec` (or, for unregistered
    heuristics, the pickled mapper), the problem as a shared-memory handle
    (:class:`~repro.utils.shared_plane.SharedProblemHandle`) when a plane
    is active, and the cell's own pre-derived seed. Execution order and
    process placement therefore cannot influence any result.
    """

    heuristic: str
    size: int
    pair_index: int
    run_index: int
    solver: Any  # SolverSpec or picklable Mapper
    problem_ref: ProblemRef
    run_seed: int


def _cell_weight(cell: _ComparisonCell) -> float:
    """LPT weight: heuristic cost grows roughly cubically in instance size."""
    return float(cell.size) ** 3


def _run_cell(cell: _ComparisonCell) -> RunRecord:
    """Top-level (picklable) worker: execute one comparison cell.

    The problem is resolved through the shared plane (zero-copy attach in
    a pool worker, passthrough in-process) and the mapper rebuilt from its
    spec, so the only bytes crossing the pipe per cell are the spec, the
    handle, and the seed.
    """
    problem = resolve_problem(cell.problem_ref)
    mapper = cell.solver.build() if isinstance(cell.solver, SolverSpec) else cell.solver
    result = mapper.map(problem, cell.run_seed)
    return RunRecord(
        heuristic=cell.heuristic,
        size=cell.size,
        pair_index=cell.pair_index,
        run_index=cell.run_index,
        execution_time=result.execution_time,
        mapping_time=result.mapping_time,
        n_evaluations=result.n_evaluations,
    )


def run_comparison(
    profile: ScaleProfile,
    *,
    seed: int = 2005,
    mappers: "dict[str, SolverSpec | MapperFactory] | None" = None,
    progress: Callable[[str], None] | None = None,
    n_workers: int | None = None,
    max_retries: int | None = None,
    cell_timeout: float | None = None,
) -> ComparisonData:
    """Execute the full §5.3 measurement protocol.

    For every size, pair, heuristic and repetition: run, record ET/MT;
    report the mean over (pairs × repetitions) per size. The whole
    protocol runs over one :class:`WorkerPool` lifetime
    (``n_workers=None`` picks the host default, ``<= 1`` runs serially):
    the suite is generated on the warm pool, each instance's arrays are
    published once to the shared-memory plane, and the cells are
    dispatched heaviest-first (longest-processing-time order) so the
    big-``n`` stragglers start early. Seeds are derived per cell up
    front, so the records — order included — are identical for every
    worker count, apart from the measured ``mapping_time`` wall-clock.
    ``progress`` messages are emitted as cells are *enqueued*, before any
    of them execute.

    Dispatch is fault tolerant: a cell whose worker dies is retried from
    its own ``(spec, handle, seed)`` tuple (bit-identical by construction),
    and a cell that permanently fails — ``max_retries`` exhausted, or its
    per-attempt ``cell_timeout`` deadline tripped — is recorded in
    :attr:`ComparisonData.failures` while the rest of the sweep completes.
    Both knobs default to :meth:`repro.utils.parallel.RetryPolicy.default`
    (environment overrides included); per-size means over partial data are
    ``nan`` when a (heuristic, size) selection lost every record.
    """
    mappers = mappers if mappers is not None else default_mappers(profile)
    streams = RngStreams(seed=seed)
    policy = RetryPolicy.default().with_overrides(
        max_retries=max_retries, cell_timeout=cell_timeout
    )

    active = current_run()
    if active is not None:
        active.log_event(
            "comparison-started",
            profile=profile.name,
            seed=seed,
            heuristics=sorted(mappers),
            sizes=list(profile.sizes),
        )

    with WorkerPool(n_workers) as pool:
        suite = build_suite(profile.sizes, profile.n_pairs, seed=seed, pool=pool)

        cells: list[_ComparisonCell] = []
        for size in profile.sizes:
            for instance in suite[size]:
                problem_ref = pool.publish_problem(instance.problem)
                for name, factory in mappers.items():
                    solver = _resolve_solver(factory, size)
                    for run in range(profile.runs_per_pair):
                        if progress is not None:
                            progress(
                                f"{name} size={size} pair={instance.pair_index} run={run}"
                            )
                        cells.append(
                            _ComparisonCell(
                                heuristic=name,
                                size=size,
                                pair_index=instance.pair_index,
                                run_index=run,
                                solver=solver,
                                problem_ref=problem_ref,
                                run_seed=streams.seed_for(
                                    "run", heuristic=name, size=size,
                                    pair=instance.pair_index, rep=run,
                                ),
                            )
                        )
        report = pool.map_salvage(
            _run_cell, cells, weight=_cell_weight, policy=policy
        )

    records = [r for r in report.results if r is not None]
    failures = tuple(
        CellFailureRecord(
            heuristic=cells[f.index].heuristic,
            size=cells[f.index].size,
            pair_index=cells[f.index].pair_index,
            run_index=cells[f.index].run_index,
            kind=f.kind,
            attempts=f.attempts,
            message=f.message,
        )
        for f in report.failures
    )
    if failures:
        named = ", ".join(
            f"{f.heuristic}/n={f.size}/pair={f.pair_index}/run={f.run_index}"
            f" ({f.kind} after {f.attempts} attempts)"
            for f in failures
        )
        warnings.warn(
            f"comparison salvaged with {len(failures)} failed cell(s): "
            f"{named}; reported means exclude them",
            RuntimeWarning,
            stacklevel=2,
        )

    def mean_series(metric: str, get: Callable[[RunRecord], float]) -> SeriesBySize:
        values: dict[str, tuple[float, ...]] = {}
        for name in mappers:
            per_size = []
            for size in profile.sizes:
                sel = [get(r) for r in records if r.heuristic == name and r.size == size]
                per_size.append(float(np.mean(sel)) if sel else math.nan)
            values[name] = tuple(per_size)
        return SeriesBySize(metric=metric, sizes=tuple(profile.sizes), values=values)

    data = ComparisonData(
        profile_name=profile.name,
        seed=seed,
        sizes=tuple(profile.sizes),
        et_series=mean_series("ET (units)", lambda r: r.execution_time),
        mt_series=mean_series("MT (s)", lambda r: r.mapping_time),
        records=records,
        failures=failures,
    )
    if active is not None:
        _record_comparison(active, data, n_cells=len(cells))
    return data


def _record_comparison(run: Any, data: ComparisonData, *, n_cells: int) -> None:
    """Log one finished §5.3 comparison into the active run.

    The aggregate series land in ``metrics.json`` (keyed by profile+seed so
    distinct comparisons inside one run never clobber each other) and the
    full per-record payload — everything ``load_comparison`` needs — goes
    to ``artifacts/``.
    """
    from repro.experiments.persistence import comparison_to_dict

    tag = f"{data.profile_name}-seed{data.seed}"
    run.record_metrics(
        f"comparison-{tag}",
        {
            "profile": data.profile_name,
            "seed": data.seed,
            "sizes": list(data.sizes),
            "cells": n_cells,
            "records": len(data.records),
            "failures": len(data.failures),
            "et_mean_by_size": {k: list(v) for k, v in data.et_series.values.items()},
            "mt_mean_by_size": {k: list(v) for k, v in data.mt_series.values.items()},
        },
    )
    run.add_artifact(f"comparison-{tag}.json", payload=comparison_to_dict(data))
    run.log_event(
        "comparison-finished",
        profile=data.profile_name,
        seed=data.seed,
        records=len(data.records),
        failures=len(data.failures),
    )


# -- memoized access (tables + figures share one computation) -------------------
_CACHE: dict[tuple[str, int], ComparisonData] = {}


def get_comparison(
    profile: ScaleProfile, *, seed: int = 2005, n_workers: int | None = None
) -> ComparisonData:
    """Memoized :func:`run_comparison` keyed on ``(profile.name, seed)``.

    ``n_workers`` only affects how a cache miss is computed — results are
    worker-count invariant, so it is deliberately not part of the memo key.
    """
    key = (profile.name, seed)
    if key not in _CACHE:
        _CACHE[key] = run_comparison(profile, seed=seed, n_workers=n_workers)
    return _CACHE[key]
