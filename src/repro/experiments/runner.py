"""Suite runners: execute heuristics over the problem suite and aggregate.

The paper's measurement protocol (§5.3): every reported number is the
average over 5 independent runs of the heuristic on each TIG/resource pair,
then averaged across the pairs of that size. :func:`run_comparison`
implements exactly that protocol for any set of heuristics and returns the
ET and MT series (Tables 1-2 / Figures 7-9 all derive from this one
computation; it is memoized per (profile, seed) so regenerating several
artifacts does not re-run the heuristics).

The (size × pair × heuristic × repetition) cells are mutually independent
and each carries its own derived seed, so :func:`run_comparison` dispatches
them across a process pool (:func:`repro.utils.parallel.parallel_map`);
every result field except the measured ``mapping_time`` wall-clock is
identical — record for record — to the serial loop for any worker count.
The default mapper factories are small frozen dataclasses rather than
closures precisely so cells stay picklable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.baselines.base import Mapper
from repro.baselines.ga import FastMapGA, GAConfig
from repro.core.config import MatchConfig
from repro.core.match import MatchMapper
from repro.experiments.spec import ScaleProfile
from repro.experiments.suite import SuiteInstance, build_suite
from repro.stats.comparison import SeriesBySize
from repro.utils.parallel import parallel_map
from repro.utils.rng import RngStreams

__all__ = [
    "RunRecord",
    "ComparisonData",
    "run_comparison",
    "get_comparison",
    "default_mappers",
    "MatchFactory",
    "GAFactory",
    "run_instance",
]

MapperFactory = Callable[[int], Mapper]


@dataclass(frozen=True)
class RunRecord:
    """One heuristic run on one suite instance."""

    heuristic: str
    size: int
    pair_index: int
    run_index: int
    execution_time: float
    mapping_time: float
    n_evaluations: int


@dataclass
class ComparisonData:
    """Aggregated suite results: the source of Tables 1-2 and Figs 7-9."""

    profile_name: str
    seed: int
    sizes: tuple[int, ...]
    et_series: SeriesBySize
    mt_series: SeriesBySize
    records: list[RunRecord] = field(default_factory=list, repr=False)

    def atn_series(self, *, seconds_per_unit: float = 1.0) -> SeriesBySize:
        """Fig. 9's ATN = ET·(s/unit) + MT series."""
        scaled_et = SeriesBySize(
            metric="ET(s)",
            sizes=self.et_series.sizes,
            values={
                k: tuple(v * seconds_per_unit for v in vals)
                for k, vals in self.et_series.values.items()
            },
        )
        return scaled_et.combined_with(self.mt_series, metric="ATN (s)")


@dataclass(frozen=True)
class MatchFactory:
    """Picklable factory for :class:`MatchMapper` at fixed parameters."""

    max_iterations: int

    def __call__(self, size: int) -> Mapper:
        return MatchMapper(MatchConfig(max_iterations=self.max_iterations))


@dataclass(frozen=True)
class GAFactory:
    """Picklable factory for :class:`FastMapGA` at fixed parameters."""

    population_size: int
    generations: int

    def __call__(self, size: int) -> Mapper:
        return FastMapGA(
            GAConfig(
                population_size=self.population_size,
                generations=self.generations,
            )
        )


def default_mappers(profile: ScaleProfile) -> dict[str, MapperFactory]:
    """The paper's two heuristics at the profile's parameters."""
    return {
        "MaTCH": MatchFactory(max_iterations=profile.match_max_iterations),
        "FastMap-GA": GAFactory(
            population_size=profile.ga_population,
            generations=profile.ga_generations,
        ),
    }


def run_instance(
    mapper: Mapper, instance: SuiteInstance, rng_seed: int
) -> tuple[float, float, int]:
    """Run one heuristic once; returns (ET, MT, evaluations)."""
    result = mapper.map(instance.problem, rng_seed)
    return result.execution_time, result.mapping_time, result.n_evaluations


@dataclass(frozen=True)
class _ComparisonCell:
    """One self-contained (heuristic, instance, repetition) unit of work.

    Carries everything a worker process needs: the picklable mapper
    factory, the problem instance, and the cell's own derived seed — so
    execution order (and process placement) cannot influence any result.
    """

    heuristic: str
    size: int
    pair_index: int
    run_index: int
    factory: MapperFactory
    instance: SuiteInstance
    run_seed: int


def _run_cell(cell: _ComparisonCell) -> RunRecord:
    """Top-level (picklable) worker: execute one comparison cell."""
    mapper = cell.factory(cell.size)
    et, mt, evals = run_instance(mapper, cell.instance, cell.run_seed)
    return RunRecord(
        heuristic=cell.heuristic,
        size=cell.size,
        pair_index=cell.pair_index,
        run_index=cell.run_index,
        execution_time=et,
        mapping_time=mt,
        n_evaluations=evals,
    )


def run_comparison(
    profile: ScaleProfile,
    *,
    seed: int = 2005,
    mappers: dict[str, MapperFactory] | None = None,
    progress: Callable[[str], None] | None = None,
    n_workers: int | None = None,
) -> ComparisonData:
    """Execute the full §5.3 measurement protocol.

    For every size, pair, heuristic and repetition: run, record ET/MT;
    report the mean over (pairs × repetitions) per size. The cells are
    dispatched through :func:`parallel_map` (``n_workers=None`` picks the
    host default, ``<= 1`` runs serially); seeds are derived per cell
    up front, so the records — order included — are identical for every
    worker count, apart from the measured ``mapping_time`` wall-clock.
    ``progress`` messages are emitted as cells are *enqueued*, before any
    of them execute.
    """
    mappers = mappers if mappers is not None else default_mappers(profile)
    suite = build_suite(profile.sizes, profile.n_pairs, seed=seed)
    streams = RngStreams(seed=seed)

    cells: list[_ComparisonCell] = []
    for size in profile.sizes:
        for instance in suite[size]:
            for name, factory in mappers.items():
                for run in range(profile.runs_per_pair):
                    if progress is not None:
                        progress(
                            f"{name} size={size} pair={instance.pair_index} run={run}"
                        )
                    cells.append(
                        _ComparisonCell(
                            heuristic=name,
                            size=size,
                            pair_index=instance.pair_index,
                            run_index=run,
                            factory=factory,
                            instance=instance,
                            run_seed=streams.seed_for(
                                "run", heuristic=name, size=size,
                                pair=instance.pair_index, rep=run,
                            ),
                        )
                    )
    records = parallel_map(_run_cell, cells, n_workers=n_workers)

    def mean_series(metric: str, get: Callable[[RunRecord], float]) -> SeriesBySize:
        values: dict[str, tuple[float, ...]] = {}
        for name in mappers:
            per_size = []
            for size in profile.sizes:
                sel = [get(r) for r in records if r.heuristic == name and r.size == size]
                per_size.append(float(np.mean(sel)))
            values[name] = tuple(per_size)
        return SeriesBySize(metric=metric, sizes=tuple(profile.sizes), values=values)

    return ComparisonData(
        profile_name=profile.name,
        seed=seed,
        sizes=tuple(profile.sizes),
        et_series=mean_series("ET (units)", lambda r: r.execution_time),
        mt_series=mean_series("MT (s)", lambda r: r.mapping_time),
        records=records,
    )


# -- memoized access (tables + figures share one computation) -------------------
_CACHE: dict[tuple[str, int], ComparisonData] = {}


def get_comparison(profile: ScaleProfile, *, seed: int = 2005) -> ComparisonData:
    """Memoized :func:`run_comparison` keyed on ``(profile.name, seed)``."""
    key = (profile.name, seed)
    if key not in _CACHE:
        _CACHE[key] = run_comparison(profile, seed=seed)
    return _CACHE[key]
