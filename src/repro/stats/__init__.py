"""Statistics substrate: descriptive stats, ANOVA, F/t distributions."""

from repro.stats.anova import AnovaResult, one_way_anova
from repro.stats.bootstrap import BootstrapCI, bootstrap_ci, bootstrap_mean_difference
from repro.stats.comparison import SeriesBySize, geometric_mean, improvement_factor
from repro.stats.descriptive import SampleSummary, summarize_sample
from repro.stats.distributions import (
    betainc_regularized,
    f_sf,
    log_beta,
    student_t_ppf,
    student_t_sf,
)

__all__ = [
    "AnovaResult",
    "BootstrapCI",
    "bootstrap_ci",
    "bootstrap_mean_difference",
    "one_way_anova",
    "SampleSummary",
    "summarize_sample",
    "SeriesBySize",
    "improvement_factor",
    "geometric_mean",
    "betainc_regularized",
    "f_sf",
    "log_beta",
    "student_t_ppf",
    "student_t_sf",
]
