"""Descriptive statistics with confidence intervals — the Table 3 row set.

Table 3 reports, per heuristic: absolute mean, a 95% confidence interval
for the mean, standard deviation and median over 30 independent runs.
:func:`summarize_sample` computes exactly those (CI via Student's t, the
correct small-sample interval for n = 30).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.stats.distributions import student_t_ppf

__all__ = ["SampleSummary", "summarize_sample"]


@dataclass(frozen=True)
class SampleSummary:
    """Mean/CI/std/median summary of one sample of run outcomes."""

    label: str
    n: int
    mean: float
    std: float  # sample standard deviation (ddof=1)
    sem: float  # standard error of the mean
    ci_low: float
    ci_high: float
    median: float
    confidence: float = 0.95

    def as_row(self) -> list:
        """Row cells in Table 3's order."""
        return [self.label, self.mean, f"{self.ci_low:.0f}-{self.ci_high:.0f}",
                self.std, self.median]


def summarize_sample(
    values, *, label: str = "", confidence: float = 0.95
) -> SampleSummary:
    """Summarize a 1-D sample with a t-based CI for the mean.

    Requires at least two observations (the CI is undefined for one).
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 2:
        raise ValidationError(
            f"sample must be 1-D with >= 2 observations, got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValidationError("sample contains non-finite values")
    if not 0.0 < confidence < 1.0:
        raise ValidationError(f"confidence must be in (0, 1), got {confidence}")
    n = arr.size
    mean = float(arr.mean())
    std = float(arr.std(ddof=1))
    sem = std / np.sqrt(n)
    t_crit = student_t_ppf(0.5 + confidence / 2.0, n - 1)
    half = t_crit * sem
    return SampleSummary(
        label=label,
        n=n,
        mean=mean,
        std=std,
        sem=float(sem),
        ci_low=mean - half,
        ci_high=mean + half,
        median=float(np.median(arr)),
        confidence=confidence,
    )
