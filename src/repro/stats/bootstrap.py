"""Bootstrap resampling — distribution-free companions to the t-based CIs.

Table 3's confidence intervals assume near-normal run costs; heuristic
outcome distributions are often skewed (a long tail of unlucky runs), so
the harness also offers percentile-bootstrap intervals and a bootstrap
two-sample mean test. Both are plain resampling loops over numpy — no new
theory, but honest uncertainty for the report tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.types import SeedLike
from repro.utils.rng import as_generator

__all__ = ["BootstrapCI", "bootstrap_ci", "bootstrap_mean_difference"]


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile bootstrap confidence interval for a statistic."""

    statistic: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def contains(self, value: float) -> bool:
        """Is ``value`` inside the interval?"""
        return self.low <= value <= self.high


def bootstrap_ci(
    sample,
    statistic: Callable[[np.ndarray], float] = np.mean,
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: SeedLike = None,
) -> BootstrapCI:
    """Percentile bootstrap CI for ``statistic`` of ``sample``."""
    arr = np.asarray(sample, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 2:
        raise ValidationError(
            f"sample must be 1-D with >= 2 observations, got shape {arr.shape}"
        )
    if not 0.0 < confidence < 1.0:
        raise ValidationError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise ValidationError(f"n_resamples must be >= 10, got {n_resamples}")
    gen = as_generator(rng)
    idx = gen.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[idx])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCI(
        statistic=float(statistic(arr)),
        low=float(np.quantile(stats, alpha)),
        high=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def bootstrap_mean_difference(
    sample_a,
    sample_b,
    *,
    n_resamples: int = 5000,
    rng: SeedLike = None,
) -> float:
    """Two-sided bootstrap p-value for ``mean(a) != mean(b)``.

    Permutation-style: pools the samples, resamples group labels, and
    counts how often the permuted mean difference is at least as extreme
    as the observed one. Returns the two-sided p-value (with the standard
    +1 smoothing so it is never exactly 0).
    """
    a = np.asarray(sample_a, dtype=np.float64)
    b = np.asarray(sample_b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1 or a.size < 2 or b.size < 2:
        raise ValidationError("both samples must be 1-D with >= 2 observations")
    if n_resamples < 10:
        raise ValidationError(f"n_resamples must be >= 10, got {n_resamples}")
    gen = as_generator(rng)
    observed = abs(a.mean() - b.mean())
    pooled = np.concatenate([a, b])
    n_a = a.size
    count = 0
    for _ in range(n_resamples):
        perm = gen.permutation(pooled)
        diff = abs(perm[:n_a].mean() - perm[n_a:].mean())
        if diff >= observed - 1e-15:
            count += 1
    return (count + 1) / (n_resamples + 1)
