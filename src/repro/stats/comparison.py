"""Improvement-factor utilities for the comparison tables.

Tables 1 and 2 report ratio rows (``ET_GA / ET_MaTCH`` and
``MT_MaTCH / MT_GA``); these helpers compute them with explicit
zero-handling and build the size-indexed series objects the table and
figure harnesses share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping as MappingT
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["improvement_factor", "SeriesBySize", "geometric_mean"]


def improvement_factor(baseline: float, candidate: float) -> float:
    """``baseline / candidate`` — how many times smaller the candidate is.

    ``inf`` when the candidate is zero but the baseline is not; 1.0 when
    both are zero (no difference).
    """
    if baseline < 0 or candidate < 0:
        raise ValidationError("improvement factors need non-negative inputs")
    if candidate == 0:
        return 1.0 if baseline == 0 else float("inf")
    return baseline / candidate


@dataclass(frozen=True)
class SeriesBySize:
    """A metric measured per problem size for several heuristics.

    The common shape of Tables 1-2 and Figures 7-9: ``values[name]`` is
    the metric sequence aligned with ``sizes``.
    """

    metric: str
    sizes: tuple[int, ...]
    values: MappingT[str, tuple[float, ...]]

    def __post_init__(self) -> None:
        for name, vals in self.values.items():
            if len(vals) != len(self.sizes):
                raise ValidationError(
                    f"series {name!r} has {len(vals)} values for {len(self.sizes)} sizes"
                )

    def ratio_row(self, numerator: str, denominator: str) -> tuple[float, ...]:
        """Element-wise improvement factors ``numerator / denominator``."""
        if numerator not in self.values or denominator not in self.values:
            raise ValidationError(
                f"unknown series; have {sorted(self.values)}, "
                f"asked for {numerator!r}/{denominator!r}"
            )
        num = self.values[numerator]
        den = self.values[denominator]
        return tuple(improvement_factor(a, b) for a, b in zip(num, den))

    def combined_with(self, other: "SeriesBySize", metric: str) -> "SeriesBySize":
        """Element-wise sum with another aligned series (ET + MT → ATN)."""
        if other.sizes != self.sizes:
            raise ValidationError("cannot combine series with different size axes")
        common = set(self.values) & set(other.values)
        if not common:
            raise ValidationError("series share no heuristic names")
        summed = {
            name: tuple(
                a + b for a, b in zip(self.values[name], other.values[name])
            )
            for name in sorted(common)
        }
        return SeriesBySize(metric=metric, sizes=self.sizes, values=summed)

    def as_rows(self) -> list[list]:
        """Rows (one per heuristic) for :func:`repro.utils.tables.format_table`."""
        return [[name, *vals] for name, vals in sorted(self.values.items())]


def geometric_mean(factors: Sequence[float]) -> float:
    """Geometric mean of improvement factors (ignores non-finite entries)."""
    arr = np.asarray([f for f in factors if np.isfinite(f) and f > 0], dtype=np.float64)
    if arr.size == 0:
        raise ValidationError("no finite positive factors to average")
    return float(np.exp(np.log(arr).mean()))
