"""Probability distributions needed by the ANOVA study — from scratch.

The Table 3 reproduction needs the F-distribution survival function (the
ANOVA p-value) and Student's t quantiles (the 95% confidence intervals).
Both reduce to the *regularized incomplete beta function* ``I_x(a, b)``,
implemented here with the standard continued-fraction expansion (modified
Lentz algorithm, cf. Numerical Recipes §6.4) — no scipy dependency in the
library proper. The test suite cross-validates every function against
``scipy.stats`` to tight tolerances.
"""

from __future__ import annotations

import math

from repro.exceptions import ValidationError

__all__ = ["log_beta", "betainc_regularized", "f_sf", "student_t_sf", "student_t_ppf"]

_MAX_ITER = 300
_EPS = 3e-14
_FPMIN = 1e-300


def log_beta(a: float, b: float) -> float:
    """``log B(a, b)`` via log-gamma."""
    if a <= 0 or b <= 0:
        raise ValidationError(f"beta parameters must be > 0, got a={a}, b={b}")
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (modified Lentz)."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _FPMIN:
        d = _FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = 1.0 + aa / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _FPMIN:
            d = _FPMIN
        c = 1.0 + aa / c
        if abs(c) < _FPMIN:
            c = _FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            return h
    raise ValidationError(f"betacf failed to converge for a={a}, b={b}, x={x}")


def betainc_regularized(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta ``I_x(a, b)`` for ``x`` in [0, 1]."""
    if a <= 0 or b <= 0:
        raise ValidationError(f"beta parameters must be > 0, got a={a}, b={b}")
    if not 0.0 <= x <= 1.0:
        raise ValidationError(f"x must be in [0, 1], got {x}")
    if x == 0.0:  # repro: noqa[float-equality] -- exact boundary: I_0(a,b) = 0 by definition
        return 0.0
    if x == 1.0:  # repro: noqa[float-equality] -- exact boundary: I_1(a,b) = 1 by definition
        return 1.0
    ln_front = a * math.log(x) + b * math.log1p(-x) - log_beta(a, b)
    front = math.exp(ln_front)
    # Use the expansion on the side where it converges fastest.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def f_sf(f_value: float, dfn: float, dfd: float) -> float:
    """Survival function ``P(F > f)`` of the F(dfn, dfd) distribution."""
    if dfn <= 0 or dfd <= 0:
        raise ValidationError(f"degrees of freedom must be > 0, got ({dfn}, {dfd})")
    if f_value <= 0:
        return 1.0
    x = dfd / (dfd + dfn * f_value)
    return betainc_regularized(dfd / 2.0, dfn / 2.0, x)


def student_t_sf(t_value: float, df: float) -> float:
    """One-sided survival ``P(T > t)`` of Student's t with ``df`` dof."""
    if df <= 0:
        raise ValidationError(f"df must be > 0, got {df}")
    x = df / (df + t_value * t_value)
    tail = 0.5 * betainc_regularized(df / 2.0, 0.5, x)
    return tail if t_value >= 0 else 1.0 - tail


def student_t_ppf(p: float, df: float, *, tol: float = 1e-12) -> float:
    """Quantile of Student's t: the ``t`` with ``P(T <= t) = p``.

    Bisection on the monotone CDF — plenty fast for the handful of
    confidence-interval lookups the harness performs.
    """
    if df <= 0:
        raise ValidationError(f"df must be > 0, got {df}")
    if not 0.0 < p < 1.0:
        raise ValidationError(f"p must be in (0, 1), got {p}")
    if abs(p - 0.5) < 1e-15:
        return 0.0

    def cdf(t: float) -> float:
        return 1.0 - student_t_sf(t, df)

    lo, hi = -1.0, 1.0
    while cdf(lo) > p:
        lo *= 2.0
        if lo < -1e10:
            raise ValidationError("t quantile bracket failed (lo)")
    while cdf(hi) < p:
        hi *= 2.0
        if hi > 1e10:
            raise ValidationError("t quantile bracket failed (hi)")
    for _ in range(400):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol * max(1.0, abs(mid)):
            break
    return 0.5 * (lo + hi)
