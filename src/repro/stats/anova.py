"""One-way ANalysis Of VAriance — the paper's Table 3 significance test.

The paper runs MaTCH, FastMap-GA 100/10000 and FastMap-GA 1000/1000 thirty
times each at ``n = 10`` and tests the null hypothesis that the three
heuristics produce the same mean execution time. One-way ANOVA decomposes
the total sum of squares into between-group and within-group parts::

    F = (SSB / (k-1)) / (SSW / (N-k))

and the p-value is the F(k-1, N-k) upper tail. The paper reports
``F = 1547, p < 0.0001``; the reproduction asserts the same *verdict*
(F ≫ 1, p below any conventional α), not the same F value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.stats.distributions import f_sf

__all__ = ["AnovaResult", "one_way_anova"]


@dataclass(frozen=True)
class AnovaResult:
    """The classical one-way ANOVA table."""

    f_value: float
    p_value: float
    df_between: int
    df_within: int
    ss_between: float
    ss_within: float
    ms_between: float
    ms_within: float
    group_means: tuple[float, ...]
    grand_mean: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Reject the equal-means null at level ``alpha``?"""
        if not 0.0 < alpha < 1.0:
            raise ValidationError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value < alpha

    def as_dict(self) -> dict:
        """JSON-ready summary (used by the Table 3 harness)."""
        return {
            "F value": self.f_value,
            "P value assuming null hypothesis": self.p_value,
            "df between": self.df_between,
            "df within": self.df_within,
        }


def one_way_anova(groups: Sequence[Sequence[float]]) -> AnovaResult:
    """One-way fixed-effects ANOVA over ``k >= 2`` sample groups.

    Each group needs at least two observations and the pooled within-group
    variance must be positive (identical constants in every group make F
    undefined; that is reported as ``F = inf, p = 0`` only when the group
    means differ, else :class:`ValidationError`).
    """
    if len(groups) < 2:
        raise ValidationError(f"ANOVA needs >= 2 groups, got {len(groups)}")
    arrays = [np.asarray(g, dtype=np.float64) for g in groups]
    for i, arr in enumerate(arrays):
        if arr.ndim != 1 or arr.size < 2:
            raise ValidationError(
                f"group {i} must be 1-D with >= 2 observations, got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise ValidationError(f"group {i} contains non-finite values")

    k = len(arrays)
    sizes = np.array([a.size for a in arrays])
    total_n = int(sizes.sum())
    all_values = np.concatenate(arrays)
    grand_mean = float(all_values.mean())
    group_means = np.array([a.mean() for a in arrays])

    ss_between = float((sizes * (group_means - grand_mean) ** 2).sum())
    ss_within = float(sum(((a - a.mean()) ** 2).sum() for a in arrays))
    df_between = k - 1
    df_within = total_n - k
    ms_between = ss_between / df_between
    ms_within = ss_within / df_within

    if ms_within <= 0:
        if ss_between <= 0:
            raise ValidationError(
                "ANOVA degenerate: zero variance within and between groups"
            )
        f_value, p_value = float("inf"), 0.0
    else:
        f_value = ms_between / ms_within
        p_value = f_sf(f_value, df_between, df_within)

    return AnovaResult(
        f_value=f_value,
        p_value=p_value,
        df_between=df_between,
        df_within=df_within,
        ss_between=ss_between,
        ss_within=ss_within,
        ms_between=ms_between,
        ms_within=ms_within,
        group_means=tuple(float(m) for m in group_means),
        grand_mean=grand_mean,
    )
