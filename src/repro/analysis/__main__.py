"""``python -m repro.analysis`` dispatches to the ``repro-lint`` CLI."""

from repro.analysis.cli import main

raise SystemExit(main())
