"""Linter engine: file discovery, checker dispatch, suppression, baseline.

The engine is deliberately boring: parse each file once, hand the tree to
every selected checker, then peel off findings that are (a) on a
``# repro: noqa[...]`` line, (b) in a rule's default path exemptions, or
(c) recorded in the baseline. Everything downstream (CLI, tests, CI) works
with the returned :class:`LintResult`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, Type

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.checkers.base import Checker, CheckContext
from repro.analysis.checkers.float_equality import FloatEqualityChecker
from repro.analysis.checkers.kernel_discipline import KernelDisciplineChecker
from repro.analysis.checkers.mutable_state import MutableStateChecker
from repro.analysis.checkers.parallel_safety import ParallelSafetyChecker
from repro.analysis.checkers.run_discipline import RunDisciplineChecker
from repro.analysis.checkers.seed_discipline import SeedDisciplineChecker
from repro.analysis.checkers.wallclock import WallclockChecker
from repro.analysis.findings import Finding
from repro.analysis.rules import PARSE_ERROR, RULES
from repro.analysis.suppressions import filter_suppressed, parse_suppressions

__all__ = [
    "ALL_CHECKERS",
    "LintResult",
    "lint_source",
    "lint_paths",
    "flow_paths",
    "iter_python_files",
]

ALL_CHECKERS: tuple[Type[Checker], ...] = (
    SeedDisciplineChecker,
    WallclockChecker,
    FloatEqualityChecker,
    ParallelSafetyChecker,
    MutableStateChecker,
    KernelDisciplineChecker,
    RunDisciplineChecker,
)

#: Directories never worth descending into.
_SKIP_DIRS = frozenset({".git", "__pycache__", ".venv", "build", "dist", ".eggs"})


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def _select_checkers(select: Sequence[str] | None) -> tuple[Type[Checker], ...]:
    if select is None:
        return ALL_CHECKERS
    wanted = set(select)
    unknown = wanted - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return tuple(c for c in ALL_CHECKERS if c.rule_id in wanted)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Sequence[str] | None = None,
) -> tuple[list[Finding], int]:
    """Lint one module's source text.

    Returns ``(findings, n_suppressed)``; ``path`` is used for rule path
    exemptions, so pass something shaped like the real location (tests use
    e.g. ``"src/repro/foo.py"`` to exercise them).
    """
    norm = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=norm)
    except SyntaxError as exc:
        finding = Finding(
            path=norm,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule=PARSE_ERROR,
            message=f"could not parse: {exc.msg}",
        )
        return [finding], 0
    ctx = CheckContext.build(norm, source, tree)
    raw: list[Finding] = []
    for checker_cls in _select_checkers(select):
        if RULES[checker_cls.rule_id].is_exempt(norm):
            continue
        raw.extend(checker_cls(ctx).run())
    kept = filter_suppressed(raw, parse_suppressions(source))
    return sorted(kept), len(raw) - len(kept)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    for path in paths:
        p = Path(path)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    seen.add(sub)
        elif p.suffix == ".py":
            seen.add(p)
    return sorted(seen)


def _display_path(p: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return p.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return p.as_posix()


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: Sequence[str] | None = None,
    baseline_path: str | Path | None = None,
    root: str | Path | None = ".",
) -> LintResult:
    """Lint every ``.py`` file under ``paths``.

    ``root`` anchors the paths reported in findings (and matched against
    the baseline / rule exemptions); it defaults to the working directory
    at call time so reports are repo-relative regardless of how paths were
    spelled. Pass ``None`` to keep paths exactly as given.
    """
    result = LintResult()
    root_path = Path(root) if root is not None else None
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings, suppressed = lint_source(
            source, _display_path(file_path, root_path), select=select
        )
        result.findings.extend(findings)
        result.suppressed += suppressed
        result.files_scanned += 1
    result.findings.sort()
    if baseline_path is not None and Path(baseline_path).exists():
        result.findings, result.baselined = apply_baseline(
            result.findings, load_baseline(baseline_path)
        )
    return result


def flow_paths(
    paths: Sequence[str | Path],
    *,
    select: Sequence[str] | None = None,
    baseline_path: str | Path | None = None,
    root: str | Path | None = ".",
) -> LintResult:
    """Run the whole-program flow rules over every ``.py`` file under ``paths``.

    Same contract as :func:`lint_paths` — repo-relative display paths,
    ``# repro: noqa[...]`` suppression, optional baseline — but the
    analysis is interprocedural: findings may carry a call-chain
    :attr:`~repro.analysis.findings.Finding.trace`. ``select`` restricts
    to a subset of :data:`repro.analysis.rules.FLOW_RULE_IDS`.
    """
    from repro.analysis.flow.project import ProjectIndex
    from repro.analysis.flow.rules import run_flow_rules
    from repro.analysis.rules import FLOW_RULE_IDS

    if select is not None:
        unknown = set(select) - set(RULES)
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        select = [r for r in select if r in FLOW_RULE_IDS]

    index = ProjectIndex.from_paths(paths, root=root)
    raw = run_flow_rules(index, select=select)

    suppressions = {
        mod.path: parse_suppressions(mod.source) for mod in index.modules.values()
    }
    kept: list[Finding] = []
    for finding in raw:
        line_rules = suppressions.get(finding.path, {}).get(finding.line)
        if line_rules is not None and (
            "*" in line_rules or finding.rule in line_rules
        ):
            continue
        kept.append(finding)

    result = LintResult(
        findings=sorted(kept),
        files_scanned=len(index.modules),
        suppressed=len(raw) - len(kept),
    )
    if baseline_path is not None and Path(baseline_path).exists():
        result.findings, result.baselined = apply_baseline(
            result.findings, load_baseline(baseline_path)
        )
    return result
