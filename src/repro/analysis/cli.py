"""``repro-lint`` — the determinism & parallel-safety linter CLI.

Usage::

    repro-lint                       # per-file rules over src/ and tests/
    repro-lint src/repro/ce          # lint a subtree
    repro-lint --flow src/repro      # whole-program flow analysis
    repro-lint --format json         # machine-readable findings
    repro-lint --format sarif        # GitHub code-scanning upload format
    repro-lint --select seed-discipline,wallclock
    repro-lint --write-baseline      # accept current findings as debt
    repro-lint --list-rules          # what is enforced, and why

Exit codes: 0 clean (after noqa + baseline), 1 findings, 2 usage error.
``python -m repro.analysis`` is the same entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, write_baseline
from repro.analysis.engine import LintResult, flow_paths, lint_paths
from repro.analysis.rules import RULE_IDS, RULES
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & parallel-safety linter for the MaTCH "
            "reproduction (see DESIGN.md 'Determinism contract')"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "run the whole-program flow rules (rng-provenance, "
            "shm-lifecycle, budget-flow, worker-purity) instead of the "
            "per-file checkers"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("table", "json", "sarif"),
        default="table",
        help="report format (default: table)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE_NAME,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe every rule and its default exemptions",
    )
    return parser


def _default_paths(flow: bool) -> list[str]:
    if flow and Path("src/repro").is_dir():
        return ["src/repro"]
    candidates = [p for p in ("src", "tests") if Path(p).is_dir()]
    return candidates or ["."]


def _render_rules() -> str:
    rows = [
        [
            rule_id,
            "flow" if RULES[rule_id].flow else "file",
            RULES[rule_id].summary,
            ", ".join(RULES[rule_id].exempt_globs) or "-",
        ]
        for rule_id in RULE_IDS
    ]
    return format_table(
        ["rule", "scope", "enforces", "exempt paths"], rows, title="repro-lint rules"
    )


def _render_table(result: LintResult) -> str:
    lines = []
    if result.findings:
        rows = []
        for f in result.findings:
            message = f.message
            if len(f.trace) > 1:
                message += " [via " + " -> ".join(f.trace) + "]"
            rows.append([f.location(), f.rule, message])
        lines.append(format_table(["location", "rule", "finding"], rows))
    summary = (
        f"repro-lint: {len(result.findings)} finding(s) in "
        f"{result.files_scanned} file(s)"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{result.suppressed} noqa-suppressed")
    if result.baselined:
        extras.append(f"{result.baselined} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_render_rules())
        return 0

    select = None
    if args.select is not None:
        select = [r.strip() for r in args.select.split(",") if r.strip()]

    paths = args.paths or _default_paths(args.flow)
    runner = flow_paths if args.flow else lint_paths
    try:
        result = runner(
            paths,
            select=select,
            baseline_path=None if args.write_baseline else args.baseline,
        )
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        out = write_baseline(result.findings, args.baseline)
        print(f"repro-lint: wrote {len(result.findings)} finding(s) to {out}")
        return 0

    if args.format == "json":
        payload = {
            "findings": [f.to_dict() for f in result.findings],
            "files_scanned": result.files_scanned,
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "ok": result.ok,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        from repro.analysis.sarif import render_sarif

        print(render_sarif(result))
    else:
        print(_render_table(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
