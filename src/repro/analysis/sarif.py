"""SARIF 2.1.0 output for ``repro-lint`` findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests to annotate pull requests inline. One run object, one
``tool.driver`` carrying the full rule catalog, one ``result`` per
finding. Interprocedural findings additionally emit a ``codeFlow`` whose
thread-flow locations spell out the call chain from the analysis root
(dispatch site or solver lifecycle method) to the violating line.

Only stable, widely supported SARIF features are emitted; the output
validates against the 2.1.0 schema (pinned by a subset schema in the
test suite).
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_IDS, RULES

__all__ = ["to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _rule_descriptor(rule_id: str) -> dict[str, Any]:
    rule = RULES[rule_id]
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": "error"},
        "properties": {
            "exemptGlobs": list(rule.exempt_globs),
            "flow": rule.flow,
        },
    }


def _location(finding: Finding) -> dict[str, Any]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": finding.path},
            "region": {
                "startLine": finding.line,
                "startColumn": finding.col,
                **({"snippet": {"text": finding.snippet}} if finding.snippet else {}),
            },
        }
    }


def _code_flow(finding: Finding) -> dict[str, Any]:
    locations = [
        {
            "location": {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": finding.line},
                },
                "message": {"text": qual},
            }
        }
        for qual in finding.trace
    ]
    return {"threadFlows": [{"locations": locations}]}


def _result(finding: Finding) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [_location(finding)],
    }
    if len(finding.trace) > 1:
        result["codeFlows"] = [_code_flow(finding)]
    return result


def to_sarif(result: LintResult, *, tool_version: str | None = None) -> dict[str, Any]:
    """Build the SARIF 2.1.0 log object for one lint run."""
    if tool_version is None:
        try:
            from repro import __version__ as tool_version  # type: ignore[no-redef]
        except ImportError:  # pragma: no cover - repro always importable here
            tool_version = "0"
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": str(tool_version),
                        "informationUri": (
                            "https://github.com/paper-repro/match#linting-the-"
                            "determinism-contract"
                        ),
                        "rules": [_rule_descriptor(r) for r in RULE_IDS],
                    }
                },
                "results": [_result(f) for f in result.findings],
                "properties": {
                    "filesScanned": result.files_scanned,
                    "suppressed": result.suppressed,
                    "baselined": result.baselined,
                },
            }
        ],
    }


def render_sarif(result: LintResult, *, tool_version: str | None = None) -> str:
    """JSON text of :func:`to_sarif` (stable key order)."""
    return json.dumps(
        to_sarif(result, tool_version=tool_version), indent=2, sort_keys=True
    )
