"""Finding value objects produced by the determinism linter.

A :class:`Finding` pinpoints one violation of the reproducibility contract
(see ``DESIGN.md`` § Determinism contract): rule id, location, message and
the offending source line. Findings are ordered by location so reports are
stable across runs and platforms — the linter itself must be deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One linter violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = field(default="", compare=False)
    #: Call chain from the analysis root to the violating function, for
    #: interprocedural (flow) findings; empty for per-file findings.
    trace: tuple[str, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        if self.line < 1:
            raise ValueError(f"line numbers are 1-based, got {self.line}")

    def location(self) -> str:
        """``path:line:col`` string for reports."""
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> tuple[str, str, str]:
        """Identity used by the baseline file.

        Deliberately excludes line/column so unrelated edits that shift a
        baselined finding up or down the file do not resurrect it.
        """
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by ``--format json``)."""
        payload: dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }
        if self.trace:
            payload["trace"] = list(self.trace)
        return payload
