"""Checked-in baseline of accepted findings.

A baseline lets the linter land with zero noise on a tree that still has
known debt: existing findings are recorded once (``repro-lint
--write-baseline``) and only *new* findings fail the build. Entries match
on :meth:`repro.analysis.findings.Finding.fingerprint` — (rule, path,
message), deliberately line-independent — as a multiset, so adding a second
identical violation to a file still fails even if one copy is baselined.

The reproduction's own baseline is empty (every finding in the tree was
either fixed or judged intentional and noqa'd inline with a justification);
the mechanism exists for downstream growth.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding
from repro.utils.serialization import dump_json, load_json

__all__ = ["load_baseline", "write_baseline", "apply_baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_FORMAT_VERSION = 1


def write_baseline(findings: Iterable[Finding], path: str | Path) -> Path:
    """Record ``findings`` as the accepted baseline at ``path``."""
    fingerprints = sorted(f.fingerprint() for f in findings)
    entries = [
        {"rule": rule, "path": file_path, "message": message}
        for rule, file_path, message in fingerprints
    ]
    return dump_json({"version": _FORMAT_VERSION, "findings": entries}, path)


def load_baseline(path: str | Path) -> Counter:
    """Load a baseline file into a fingerprint multiset."""
    payload = load_json(path)
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported baseline format in {path}")
    counter: Counter = Counter()
    for entry in payload.get("findings", []):
        counter[(entry["rule"], entry["path"], entry["message"])] += 1
    return counter


def apply_baseline(
    findings: Iterable[Finding], baseline: Counter
) -> tuple[list[Finding], int]:
    """Split findings into (new, number baselined-away).

    Consumes baseline entries one-for-one so duplicates beyond the
    recorded count still surface.
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    matched = 0
    for finding in sorted(findings):
        fp = finding.fingerprint()
        if remaining[fp] > 0:
            remaining[fp] -= 1
            matched += 1
        else:
            new.append(finding)
    return new, matched
