"""kernel-discipline: compiled-kernel access only through ``repro.kernels``.

The kernel layer's headline guarantee — every backend (numpy, numba, C)
produces bit-identical floats, verified by the cross-backend parity
matrix — only covers code that reaches compiled paths *through* the
:mod:`repro.kernels` dispatch boundary. A ``numba`` / ``cffi`` /
``Cython`` / ``cppyy`` import, an ``@njit`` decoration, or a raw shared-
library load (``ctypes.CDLL``/``WinDLL``/``PyDLL``,
``numpy.ctypeslib.load_library``) anywhere else creates a second,
untested compiled path and a hard dependency on an optional toolchain.
This checker flags those sites; the ``repro/kernels/*`` exemption lives
at the rule level (see :mod:`repro.analysis.rules`).
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker, CheckContext, dotted_name
from repro.analysis.rules import KERNEL_DISCIPLINE

__all__ = ["KernelDisciplineChecker"]

#: numba decorators that compile the decorated function.
JIT_DECORATORS = frozenset({"njit", "jit", "vectorize", "guvectorize", "cfunc"})

#: Top-level packages that are FFI / ahead-of-time compilation toolchains.
FFI_PACKAGES = frozenset({"numba", "cffi", "Cython", "cython", "cppyy", "pyximport"})

#: Call targets that load a shared library directly.
LIBRARY_LOADERS = frozenset(
    {
        "ctypes.CDLL", "ctypes.WinDLL", "ctypes.PyDLL",
        "ctypes.cdll.LoadLibrary", "ctypes.windll.LoadLibrary",
        "ctypes.pydll.LoadLibrary",
        "CDLL", "WinDLL", "PyDLL",
        "numpy.ctypeslib.load_library", "np.ctypeslib.load_library",
        "ctypeslib.load_library",
    }
)


class KernelDisciplineChecker(Checker):
    rule_id = KERNEL_DISCIPLINE

    def __init__(self, ctx: CheckContext) -> None:
        super().__init__(ctx)
        self._jit_aliases: set[str] = set()  # from numba import njit [as ...]

    # -- imports -------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in FFI_PACKAGES:
                self.report(
                    node,
                    f"direct import of {alias.name!r} outside repro.kernels; "
                    "go through repro.kernels.get_backend() so the backend "
                    "stays swappable and parity-tested",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in FFI_PACKAGES:
            self.report(
                node,
                f"direct import from {node.module!r} outside repro.kernels; "
                "go through repro.kernels.get_backend() so the backend "
                "stays swappable and parity-tested",
            )
            if root == "numba":
                for alias in node.names:
                    if alias.name in JIT_DECORATORS:
                        self._jit_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- decorations and loads -----------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_decorators(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_decorators(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted in LIBRARY_LOADERS:
            self.report(
                node,
                "shared-library load outside repro.kernels; compiled code "
                "must sit behind the dispatch layer so pure-python "
                "environments degrade gracefully",
            )
        self.generic_visit(node)

    def _check_decorators(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            dotted = dotted_name(target)
            if dotted is None:
                continue
            parts = dotted.split(".")
            is_jit = (len(parts) == 1 and parts[0] in self._jit_aliases) or (
                len(parts) >= 2 and parts[0] == "numba" and parts[-1] in JIT_DECORATORS
            )
            if is_jit:
                self.report(
                    dec,
                    f"@{dotted} outside repro.kernels; JIT-compiled hot "
                    "loops belong in repro/kernels/_loops.py where the "
                    "parity matrix covers them",
                )
