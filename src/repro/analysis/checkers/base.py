"""Shared infrastructure for AST checkers.

Each checker is an :class:`ast.NodeVisitor` over one module with access to
a :class:`CheckContext` (path, source lines, pre-computed module facts).
Checkers only *collect* findings; suppression (``# repro: noqa[...]``),
rule-level path exemptions and baselines are applied by the engine, so a
checker never needs to know about them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar

from repro.analysis.findings import Finding

__all__ = ["CheckContext", "Checker", "dotted_name"]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass
class CheckContext:
    """One parsed module plus the facts several checkers need."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: Names bound by module-level ``def`` statements (picklable targets).
    module_defs: set[str] = field(default_factory=set)
    #: Names bound by module-level imports (also resolvable by pickle).
    imported_names: set[str] = field(default_factory=set)

    @classmethod
    def build(cls, path: str, source: str, tree: ast.Module) -> "CheckContext":
        ctx = cls(path=path, source=source, tree=tree, lines=source.splitlines())
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                ctx.module_defs.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    ctx.imported_names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        ctx.imported_names.add(alias.asname or alias.name)
        return ctx

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Checker(ast.NodeVisitor):
    """Base class: visit the module tree, accumulate findings."""

    #: Rule id this checker reports under; set by each subclass.
    rule_id: ClassVar[str]

    def __init__(self, ctx: CheckContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, message: str, *, rule: str | None = None) -> None:
        lineno = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule or self.rule_id,
                message=message,
                snippet=self.ctx.line_text(lineno),
            )
        )

    def run(self) -> list[Finding]:
        """Visit the whole module and return the collected findings."""
        self.visit(self.ctx.tree)
        return self.findings
