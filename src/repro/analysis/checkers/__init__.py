"""AST checkers, one module per rule (see :mod:`repro.analysis.rules`)."""

from repro.analysis.checkers.base import Checker, CheckContext, dotted_name
from repro.analysis.checkers.float_equality import FloatEqualityChecker
from repro.analysis.checkers.kernel_discipline import KernelDisciplineChecker
from repro.analysis.checkers.mutable_state import MutableStateChecker
from repro.analysis.checkers.parallel_safety import ParallelSafetyChecker
from repro.analysis.checkers.run_discipline import RunDisciplineChecker
from repro.analysis.checkers.seed_discipline import SeedDisciplineChecker
from repro.analysis.checkers.wallclock import WallclockChecker

__all__ = [
    "Checker",
    "CheckContext",
    "dotted_name",
    "FloatEqualityChecker",
    "KernelDisciplineChecker",
    "MutableStateChecker",
    "ParallelSafetyChecker",
    "RunDisciplineChecker",
    "SeedDisciplineChecker",
    "WallclockChecker",
]
