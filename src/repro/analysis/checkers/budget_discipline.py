"""budget-discipline: search loops must charge an ``EvaluationBudget``.

The solver runtime (:mod:`repro.runtime`) makes the number of Eq. (2)
cost evaluations the common effort currency across heuristics, and the
accounting contract is syntactic on purpose: every function that probes
the cost model inside a ``while``/``for`` search loop must also call
``budget.charge(n)`` (typically once per step, with the aggregated probe
count). This checker enforces exactly that shape in the search-loop
packages (``repro/ce``, ``repro/baselines`` — the rule's ``only_globs``):

* a **cost probe** is a call to one of the cost-model boundary methods
  (``evaluate`` / ``evaluate_batch`` on :class:`CostModel`,
  ``swap_cost`` / ``move_cost`` on :class:`IncrementalEvaluator`) or to a
  user objective (an ``objective``/``score`` callable — the CE library
  modules take the objective as a parameter);
* a loop is flagged when its body contains a cost probe but the
  *enclosing function scope* never calls ``.charge(...)``.

Only the innermost loop around a probe is reported, and nested ``def``
scopes are analyzed independently (a charge inside a helper does not
excuse its caller's loop, and vice versa). Loops that legitimately live
outside the mapping runtime — the generic CE showcases that never see an
``EvaluationBudget`` — carry ``# repro: noqa[budget-discipline]`` with a
justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.base import Checker
from repro.analysis.rules import BUDGET_DISCIPLINE

__all__ = ["BudgetDisciplineChecker"]

#: Attribute calls that cross the cost-model boundary.
COST_ATTRS = frozenset({"evaluate", "evaluate_batch", "swap_cost", "move_cost"})
#: Bare / attribute names under which CE library code holds a user objective.
OBJECTIVE_NAMES = frozenset({"objective", "score"})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)


def _iter_scope(nodes: list[ast.AST], *, stop_at_loops: bool = False) -> Iterator[ast.AST]:
    """Yield every node in this scope, without descending into nested scopes.

    ``stop_at_loops`` additionally keeps out of nested loop bodies, so a
    probe is attributed to its innermost enclosing loop only.
    """
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue  # nested scopes are yielded (as roots) but not entered
        if stop_at_loops and isinstance(node, _LOOP_NODES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_cost_probe(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in COST_ATTRS or func.attr in OBJECTIVE_NAMES
    if isinstance(func, ast.Name):
        return func.id in OBJECTIVE_NAMES
    return False


def _is_charge_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "charge"
    )


class BudgetDisciplineChecker(Checker):
    rule_id = BUDGET_DISCIPLINE

    def run(self) -> list:
        self._scan_scope(list(self.ctx.tree.body))
        return self.findings

    def _scan_scope(self, body: list[ast.AST]) -> None:
        nested: list[list[ast.AST]] = []
        loops: list[ast.stmt] = []
        charged = False
        for node in _iter_scope(body):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.append(list(node.body))
            elif isinstance(node, ast.ClassDef):
                nested.append(list(node.body))
            elif isinstance(node, ast.Lambda):
                nested.append([node.body])
            if isinstance(node, _LOOP_NODES):
                loops.append(node)
            elif _is_charge_call(node):
                charged = True
        # iter_scope yields nested-scope roots themselves but not their
        # bodies, so loops/charges found above all belong to *this* scope.
        if not charged:
            for loop in loops:
                self._check_loop(loop)
        for scope_body in nested:
            self._scan_scope(scope_body)

    def _check_loop(self, loop: ast.stmt) -> None:
        inner = list(loop.body) + list(getattr(loop, "orelse", []) or [])
        for node in _iter_scope(inner, stop_at_loops=True):
            if _is_cost_probe(node):
                self.report(
                    loop,
                    "search loop probes the cost model without "
                    "EvaluationBudget.charge in the enclosing function; "
                    "charge the aggregated probe count (or noqa with a "
                    "justification for non-runtime loops)",
                )
                return
