"""mutable-state: no mutable defaults; declared in-place contracts only.

Two sub-checks:

* **mutable default arguments** — flagged everywhere. A ``def f(x=[])``
  default is one object shared across calls: cross-call state that breaks
  the run-in-any-order property the parallel runner depends on.
* **undeclared parameter mutation in hot paths** — in ``repro/mapping/``
  and ``repro/ce/`` modules, a module-level function (or method) that
  assigns into a subscripted parameter (``buf[i] = ...``) mutates its
  caller's array. That is fine *as a contract* — the incremental
  evaluator's ``_apply_move`` documents exactly that — so the check skips
  functions that declare it: a docstring mentioning "in-place"/"in place",
  or the parameter being named ``out``/``*_out`` (numpy's ``out=``
  convention). Nested helper functions are exempt (their parameters are
  local implementation detail, not API surface).
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker, CheckContext
from repro.analysis.rules import MUTABLE_STATE, path_matches

__all__ = ["MutableStateChecker"]

#: Modules whose hot-path functions get the parameter-mutation check.
HOT_PATH_GLOBS = ("repro/mapping/*", "repro/ce/*")

MUTABLE_CALLS = frozenset({"list", "dict", "set"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in MUTABLE_CALLS
    )


def _declares_inplace(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    doc = ast.get_docstring(fn) or ""
    lowered = doc.lower()
    return "in-place" in lowered or "in place" in lowered


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
    names.discard("self")
    names.discard("cls")
    return names


class MutableStateChecker(Checker):
    rule_id = MUTABLE_STATE

    def __init__(self, ctx: CheckContext) -> None:
        super().__init__(ctx)
        self._hot_path = path_matches(ctx.path, HOT_PATH_GLOBS)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node, nesting=0)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node, nesting=0)

    def _check_function(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, nesting: int
    ) -> None:
        self._check_defaults(fn)
        if self._hot_path and nesting == 0 and not _declares_inplace(fn):
            self._check_param_mutation(fn)
        # Recurse manually so nested defs know their depth.
        for child in ast.walk(fn):
            if child is fn:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_defaults(child)

    def _check_defaults(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = [*fn.args.defaults, *[d for d in fn.args.kw_defaults if d]]
        for default in defaults:
            if _is_mutable_default(default):
                self.report(
                    default,
                    f"mutable default argument in '{fn.name}'; one object is "
                    "shared across calls — default to None and build inside",
                )

    def _check_param_mutation(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        params = {
            p for p in _param_names(fn) if not (p == "out" or p.endswith("_out"))
        }
        if not params:
            return
        # Walk fn's body without descending into nested defs (exempt).
        stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in params
                ):
                    self.report(
                        target,
                        f"'{fn.name}' writes into parameter "
                        f"'{target.value.id}' without declaring an in-place "
                        "contract; document it ('In-place: ...') or take an "
                        "out= parameter",
                    )
