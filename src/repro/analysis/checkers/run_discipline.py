"""run-discipline: result files in run-producing layers go through the run-store.

Applies only inside ``repro/experiments/``, ``repro/service/`` and
``benchmarks/`` — the layers whose output *is* the reproduction's evidence. There, a bare ``json.dump``,
a ``open(path, "w")``, or a ``Path.write_text`` is a result file with no
manifest attached: no git SHA, no env surface, no seeds, nothing a later
cross-run comparison can hold on to. Those layers must route persistent
output through :mod:`repro.runstore` (``RunStore``/``RunHandle``/
``BenchResult``), where provenance is written alongside the numbers.

Reading is fine; only write paths are flagged. Sites with a sanctioned
reason (e.g. a scratch file handed to an external tool) carry
``# repro: noqa[run-discipline]``.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker, CheckContext, dotted_name
from repro.analysis.rules import RUN_DISCIPLINE, path_matches

__all__ = ["RunDisciplineChecker"]

#: The layers where raw result-writing is banned. The service module is in
#: scope since PR 9: a gateway's responses, cache entries and counters are
#: run evidence too, and must land in the run store / the sanctioned
#: ``repro.runstore.cache`` tier rather than ad-hoc files.
SCOPED_GLOBS = ("repro/experiments/*", "repro/service/*", "benchmarks/*")

#: ``open`` mode strings that create or truncate a file for writing.
_WRITE_MODE_CHARS = frozenset("wax")


def _is_write_mode(mode: ast.expr | None) -> bool:
    if mode is None:
        return False
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS & set(mode.value))
    # A computed mode can't be proven read-only; stay quiet rather than
    # guess — the json.dump/write_text checks catch the common cases.
    return False


class RunDisciplineChecker(Checker):
    rule_id = RUN_DISCIPLINE

    def __init__(self, ctx: CheckContext) -> None:
        super().__init__(ctx)
        self._in_scope = path_matches(ctx.path, SCOPED_GLOBS)

    def visit_Call(self, node: ast.Call) -> None:
        if self._in_scope:
            self._check(node)
        self.generic_visit(node)

    def _check(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted in {"json.dump", "json.dumps"}:
            self.report(
                node,
                f"{dotted}() in a run-producing layer writes results without a "
                "manifest; route output through repro.runstore "
                "(RunHandle.record_metrics / BenchResult.write)",
            )
            return
        if dotted == "open" or (dotted is not None and dotted.endswith(".open")):
            mode = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
            if _is_write_mode(mode):
                self.report(
                    node,
                    "open(..., 'w') in a run-producing layer writes a result "
                    "file with no provenance; use the run-store "
                    "(RunHandle.add_artifact / BenchResult.write)",
                )
            return
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "write_text",
            "write_bytes",
        }:
            self.report(
                node,
                f".{node.func.attr}() in a run-producing layer writes a result "
                "file with no provenance; use the run-store "
                "(RunHandle.add_artifact / BenchResult.write)",
            )
