"""float-equality: no ``==`` / ``!=`` between float-valued expressions.

Exact float comparison is the classic source of silent behaviour drift:
the same mapping cost computed by the blocked batch scorer and the
reference loop can differ in the last ulp, so an ``== best_cost`` branch
may flip between vectorization paths. The checker is heuristic (static
analysis cannot type Python): it flags a comparison when either side is a
float *literal*, a unary sign of one, a ``float(...)`` cast, or a call to
a small set of known float-returning methods.

Sites where exact equality *is* the semantics — the Eq. (12) degeneracy
check on probability mass that was explicitly written as 0/1, sentinel
defaults compared against their exact literal — carry an inline
``# repro: noqa[float-equality]`` with a one-line justification.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker
from repro.analysis.rules import FLOAT_EQUALITY

__all__ = ["FloatEqualityChecker"]

#: Method names whose return value is float-valued in this codebase.
FLOAT_RETURNING_ATTRS = frozenset(
    {"volume", "mean", "std", "var", "item", "total_seconds"}
)


def _is_floatish(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_floatish(node.operand)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "float"
        if isinstance(func, ast.Attribute):
            return func.attr in FLOAT_RETURNING_ATTRS
    return False


class FloatEqualityChecker(Checker):
    rule_id = FLOAT_EQUALITY

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_floatish(operands[i]) or _is_floatish(operands[i + 1]):
                sym = "==" if isinstance(op, ast.Eq) else "!="
                self.report(
                    node,
                    f"exact float {sym} comparison; use a tolerance "
                    "(math.isclose / np.isclose) or noqa[float-equality] "
                    "with a justification if exact equality is the semantics",
                )
                break
        self.generic_visit(node)
