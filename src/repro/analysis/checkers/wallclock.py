"""wallclock: no wall-clock reads outside ``repro.utils.timing``.

A ``time.time()`` that leaks into a result record makes reported numbers
depend on when (and on what machine) the run happened; the paper's MT
column is the *only* sanctioned wall-clock output and it flows through
:class:`repro.utils.timing.Stopwatch`. Benchmarks and example scripts are
exempt at the rule level (see :mod:`repro.analysis.rules`) — their whole
purpose is measuring time.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker, CheckContext, dotted_name
from repro.analysis.rules import WALLCLOCK

__all__ = ["WallclockChecker"]

#: time-module functions that read the clock.
TIME_FUNCS = frozenset(
    {
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    }
)

#: datetime constructors that read the clock.
DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


class WallclockChecker(Checker):
    rule_id = WALLCLOCK

    def __init__(self, ctx: CheckContext) -> None:
        super().__init__(ctx)
        self._time_aliases: set[str] = set()
        self._datetime_aliases: set[str] = set()  # datetime module or class
        self._direct_time_funcs: set[str] = set()  # from time import perf_counter

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self._time_aliases.add(alias.asname or "time")
            elif alias.name == "datetime":
                self._datetime_aliases.add(alias.asname or "datetime")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in TIME_FUNCS:
                    self._direct_time_funcs.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in {"datetime", "date"}:
                    self._datetime_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None:
            self._check(node, dotted)
        self.generic_visit(node)

    def _check(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if len(parts) == 1 and parts[0] in self._direct_time_funcs:
            self.report(node, self._msg(f"time.{parts[0]}"))
        elif len(parts) == 2 and parts[0] in self._time_aliases and parts[1] in TIME_FUNCS:
            self.report(node, self._msg(f"time.{parts[1]}"))
        elif parts[-1] in DATETIME_FUNCS and parts[0] in self._datetime_aliases:
            self.report(node, self._msg(dotted))

    @staticmethod
    def _msg(what: str) -> str:
        return (
            f"wall-clock read {what}() outside repro.utils.timing; "
            "use Stopwatch/time_call so timestamps cannot reach results"
        )
