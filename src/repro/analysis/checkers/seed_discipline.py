"""seed-discipline: every RNG draw must flow through ``repro.utils.rng``.

Three layers, strictest first:

* stdlib ``random`` — banned everywhere, import and call alike. It is a
  process-global stream; two call sites that share it are order-coupled.
* numpy's legacy global-state API (``np.random.seed``, ``np.random.rand``,
  ``RandomState``, ...) — banned everywhere for the same reason.
* ``np.random.default_rng`` / ``np.random.Generator`` construction — only
  :mod:`repro.utils.rng` may build generators in library code; everything
  else takes a seed-like value and calls :func:`repro.utils.rng.as_generator`
  so streams stay inside one SeedSequence spawn tree. Tests, benchmarks and
  examples may construct fixed-seed generators directly (they are leaves,
  not library plumbing).
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker, CheckContext, dotted_name
from repro.analysis.rules import SEED_DISCIPLINE, path_matches

__all__ = ["SeedDisciplineChecker"]

#: numpy.random attributes that mutate or read hidden global state.
LEGACY_NP_RANDOM = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "bytes", "choice", "shuffle", "permutation",
        "uniform", "normal", "standard_normal", "binomial", "poisson",
        "beta", "gamma", "exponential", "lognormal", "get_state",
        "set_state", "RandomState",
    }
)

#: Generator constructors that must stay inside repro.utils.rng.
CTOR_NAMES = frozenset({"default_rng", "Generator"})

#: Where direct Generator construction is allowed (see module docstring).
CTOR_EXEMPT_GLOBS = (
    "repro/utils/rng.py",
    "tests/*",
    "benchmarks/*",
    "examples/*",
)


class SeedDisciplineChecker(Checker):
    rule_id = SEED_DISCIPLINE

    def __init__(self, ctx: CheckContext) -> None:
        super().__init__(ctx)
        self._numpy_aliases: set[str] = set()
        self._np_random_aliases: set[str] = set()
        self._stdlib_random_aliases: set[str] = set()
        self._ctor_imports: set[str] = set()
        self._ctor_allowed = path_matches(ctx.path, CTOR_EXEMPT_GLOBS)

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random" or alias.name.startswith("random."):
                self._stdlib_random_aliases.add(bound)
                self.report(
                    node,
                    "import of stdlib 'random' (process-global stream); "
                    "use repro.utils.rng seed streams",
                )
            elif alias.name == "numpy":
                self._numpy_aliases.add(bound)
            elif alias.name == "numpy.random":
                self._np_random_aliases.add(alias.asname or "")
                self._numpy_aliases.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.report(
                node,
                "import from stdlib 'random' (process-global stream); "
                "use repro.utils.rng seed streams",
            )
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._np_random_aliases.add(alias.asname or "random")
        elif node.module == "numpy.random":
            for alias in node.names:
                if alias.name in LEGACY_NP_RANDOM:
                    self.report(
                        node,
                        f"legacy global-state numpy.random.{alias.name}; "
                        "use repro.utils.rng seed streams",
                    )
                elif alias.name in CTOR_NAMES and not self._ctor_allowed:
                    self._ctor_imports.add(alias.asname or alias.name)
                    self.report(
                        node,
                        f"numpy.random.{alias.name} imported outside "
                        "repro.utils.rng; take a seed and call as_generator",
                    )
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted:
            self._check_dotted_call(node, dotted)
        self.generic_visit(node)

    def _check_dotted_call(self, node: ast.Call, dotted: str) -> None:
        head, _, rest = dotted.partition(".")
        if head in self._stdlib_random_aliases and rest:
            self.report(
                node,
                f"call to stdlib random ({dotted}); "
                "use repro.utils.rng seed streams",
            )
            return
        # Normalize np.random.X / npr.X to the numpy.random attribute X.
        attr = ""
        if head in self._numpy_aliases and rest.startswith("random."):
            attr = rest[len("random.") :]
        elif head in self._np_random_aliases and rest:
            attr = rest
        if not attr or "." in attr:
            return
        if attr in LEGACY_NP_RANDOM:
            self.report(
                node,
                f"legacy global-state call numpy.random.{attr}; "
                "use repro.utils.rng seed streams",
            )
        elif attr in CTOR_NAMES and not self._ctor_allowed:
            self.report(
                node,
                f"numpy.random.{attr} constructed outside repro.utils.rng; "
                "take a seed and call as_generator",
            )
