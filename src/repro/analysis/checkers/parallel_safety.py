"""parallel-safety: process-pool tasks must be stateless, picklable, seeded.

``parallel == serial`` — the property the experiment runner's tests assert
— holds only when (a) the dispatched callable is a module-level def that
pickles by qualified name, and (b) every task argument carries its own
integer seed rather than a live ``numpy.random.Generator`` (pickling a
Generator copies its state, so workers would replay *the same* stream the
parent keeps advancing, and results would depend on worker count).

The checker inspects call sites of :func:`repro.utils.parallel.parallel_map`
and of ``submit``/``map``/``starmap``/``apply_async`` methods on
pool/executor-named receivers:

* the callable must not be a ``lambda`` or a function nested inside
  another function (both unpicklable); ``functools.partial`` is unwrapped
  and its target checked instead;
* no argument expression may construct a Generator inline
  (``as_generator`` / ``default_rng`` / ``spawn_generators``) — spawn
  integer seeds and build the Generator inside the worker.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker, CheckContext, dotted_name
from repro.analysis.rules import PARALLEL_SAFETY

__all__ = ["ParallelSafetyChecker"]

DISPATCH_METHODS = frozenset(
    {"submit", "map", "starmap", "imap", "imap_unordered", "apply_async"}
)
POOLISH = ("pool", "executor")
GENERATOR_BUILDERS = frozenset({"as_generator", "default_rng", "spawn_generators"})


def _nested_def_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside other functions (unpicklable)."""
    nested: set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_fn = isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            if is_fn and inside_function:
                nested.add(child.name)
            walk(child, inside_function or is_fn)

    walk(tree, False)
    return nested


class ParallelSafetyChecker(Checker):
    rule_id = PARALLEL_SAFETY

    def __init__(self, ctx: CheckContext) -> None:
        super().__init__(ctx)
        self._nested_defs = _nested_def_names(ctx.tree)

    def visit_Call(self, node: ast.Call) -> None:
        task = self._dispatched_callable(node)
        if task is not None:
            self._check_callable(task)
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                self._check_no_generator_capture(arg)
        self.generic_visit(node)

    # -- dispatch-site detection -------------------------------------------
    def _dispatched_callable(self, node: ast.Call) -> ast.AST | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "parallel_map" and node.args:
            return node.args[0]
        if (
            isinstance(func, ast.Attribute)
            and func.attr in DISPATCH_METHODS
            and node.args
        ):
            base = dotted_name(func.value)
            if base and any(p in base.lower() for p in POOLISH):
                return node.args[0]
        return None

    # -- checks ------------------------------------------------------------
    def _check_callable(self, task: ast.AST) -> None:
        if isinstance(task, ast.Lambda):
            self.report(
                task,
                "lambda dispatched to a process pool is not picklable; "
                "use a module-level def",
            )
            return
        if isinstance(task, ast.Name) and task.id in self._nested_defs:
            self.report(
                task,
                f"nested function '{task.id}' dispatched to a process pool "
                "is not picklable; hoist it to module level",
            )
            return
        if isinstance(task, ast.Call):
            inner = dotted_name(task.func) or ""
            if inner.split(".")[-1] == "partial" and task.args:
                self._check_callable(task.args[0])

    def _check_no_generator_capture(self, arg: ast.AST) -> None:
        for sub in ast.walk(arg):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            if name and name.split(".")[-1] in GENERATOR_BUILDERS:
                self.report(
                    sub,
                    f"{name}(...) inside a process-pool dispatch ships a live "
                    "Generator across the fork; pass integer seeds "
                    "(RngStreams.seed_for / derive_seed) and build the "
                    "Generator inside the worker",
                )
