"""parallel-safety: process-pool tasks must be stateless, picklable, seeded.

``parallel == serial`` — the property the experiment runner's tests assert
— holds only when (a) the dispatched callable is a module-level def that
pickles by qualified name, and (b) every task argument carries its own
integer seed rather than a live ``numpy.random.Generator`` (pickling a
Generator copies its state, so workers would replay *the same* stream the
parent keeps advancing, and results would depend on worker count).

The checker inspects call sites of :func:`repro.utils.parallel.parallel_map`
and of ``submit``/``map``/``starmap``/``apply_async`` methods on
pool/executor-named receivers:

* the callable must not be a ``lambda`` or a function nested inside
  another function (both unpicklable); ``functools.partial`` is unwrapped
  and its target checked instead;
* no argument expression may construct a Generator inline
  (``as_generator`` / ``default_rng`` / ``spawn_generators``) — spawn
  integer seeds and build the Generator inside the worker.

It additionally guards the execution fabric's monopoly on pool
construction: outside ``repro/utils/parallel.py``, instantiating
``ProcessPoolExecutor`` or ``multiprocessing.Pool`` directly is flagged —
raw pools bypass the warm-worker reuse, the shared-memory plane's
guaranteed cleanup, and the ``REPRO_WORKERS`` override that
:class:`repro.utils.parallel.WorkerPool` provides. The same monopoly
covers shared-memory allocation: ``SharedMemory(create=True)`` outside
``repro/utils/shared_plane.py`` is flagged, because only the plane's
owner-tracked segments are guaranteed to be unlinked on close, SIGINT and
abandoned pools — an ad-hoc segment is a leak the fabric cannot see.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers.base import Checker, CheckContext, dotted_name
from repro.analysis.rules import PARALLEL_SAFETY, path_matches

__all__ = ["ParallelSafetyChecker"]

DISPATCH_METHODS = frozenset(
    {"submit", "map", "starmap", "imap", "imap_unordered", "apply_async"}
)
POOLISH = ("pool", "executor")
GENERATOR_BUILDERS = frozenset({"as_generator", "default_rng", "spawn_generators"})
#: The one module allowed to construct raw process pools.
FABRIC_PATHS = ("repro/utils/parallel.py",)
#: The one module allowed to allocate shared-memory segments.
PLANE_PATHS = ("repro/utils/shared_plane.py",)


def _multiprocessing_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """``(names bound to multiprocessing's Pool, multiprocessing module aliases)``."""
    pool_names: set[str] = set()
    module_aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "multiprocessing" or alias.name.startswith(
                    "multiprocessing."
                ):
                    module_aliases.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "multiprocessing" or module.startswith("multiprocessing."):
                for alias in node.names:
                    if alias.name == "Pool":
                        pool_names.add(alias.asname or alias.name)
    return pool_names, module_aliases


def _nested_def_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside other functions (unpicklable)."""
    nested: set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_fn = isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            if is_fn and inside_function:
                nested.add(child.name)
            walk(child, inside_function or is_fn)

    walk(tree, False)
    return nested


class ParallelSafetyChecker(Checker):
    rule_id = PARALLEL_SAFETY

    def __init__(self, ctx: CheckContext) -> None:
        super().__init__(ctx)
        self._nested_defs = _nested_def_names(ctx.tree)
        self._mp_pool_names, self._mp_aliases = _multiprocessing_aliases(ctx.tree)
        self._in_fabric = path_matches(ctx.path, FABRIC_PATHS)
        self._in_plane = path_matches(ctx.path, PLANE_PATHS)

    def visit_Call(self, node: ast.Call) -> None:
        task = self._dispatched_callable(node)
        if task is not None:
            self._check_callable(task)
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                self._check_no_generator_capture(arg)
        self._check_pool_construction(node)
        self._check_shm_allocation(node)
        self.generic_visit(node)

    # -- dispatch-site detection -------------------------------------------
    def _dispatched_callable(self, node: ast.Call) -> ast.AST | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "parallel_map" and node.args:
            return node.args[0]
        if (
            isinstance(func, ast.Attribute)
            and func.attr in DISPATCH_METHODS
            and node.args
        ):
            base = dotted_name(func.value)
            if base and any(p in base.lower() for p in POOLISH):
                return node.args[0]
        return None

    # -- checks ------------------------------------------------------------
    def _check_callable(self, task: ast.AST) -> None:
        if isinstance(task, ast.Lambda):
            self.report(
                task,
                "lambda dispatched to a process pool is not picklable; "
                "use a module-level def",
            )
            return
        if isinstance(task, ast.Name) and task.id in self._nested_defs:
            self.report(
                task,
                f"nested function '{task.id}' dispatched to a process pool "
                "is not picklable; hoist it to module level",
            )
            return
        if isinstance(task, ast.Call):
            inner = dotted_name(task.func) or ""
            if inner.split(".")[-1] == "partial" and task.args:
                self._check_callable(task.args[0])

    def _check_pool_construction(self, node: ast.Call) -> None:
        """Raw pool constructors are the fabric module's exclusive business."""
        if self._in_fabric:
            return
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        constructed = None
        if parts[-1] == "ProcessPoolExecutor":
            constructed = "ProcessPoolExecutor"
        elif parts[-1] == "Pool":
            if len(parts) == 1 and name in self._mp_pool_names:
                constructed = "multiprocessing.Pool"
            elif len(parts) > 1 and (
                parts[0] in self._mp_aliases or parts[0] == "multiprocessing"
            ):
                constructed = "multiprocessing.Pool"
        if constructed is not None:
            self.report(
                node,
                f"direct {constructed}() construction bypasses the execution "
                "fabric; go through repro.utils.parallel (WorkerPool / "
                "parallel_map) so runs get warm-worker reuse, shared-memory "
                "cleanup and the REPRO_WORKERS override",
            )

    def _check_shm_allocation(self, node: ast.Call) -> None:
        """Creating shared-memory segments is the problem plane's business.

        Only ``SharedMemory(create=True)`` is flagged — attaching to an
        existing segment by name is how workers are *supposed* to reach the
        plane. Allocation outside the plane module escapes its owner
        tracking, so nothing unlinks the segment on close/SIGINT and the
        resource tracker reports a leak at interpreter exit.
        """
        if self._in_plane:
            return
        name = dotted_name(node.func)
        if name is None or name.split(".")[-1] != "SharedMemory":
            return
        creates = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
        if creates:
            self.report(
                node,
                "SharedMemory(create=True) outside repro/utils/shared_plane.py "
                "allocates a segment the fabric's cleanup cannot see; go "
                "through the problem plane (publish/attach helpers) so the "
                "segment is owner-tracked and unlinked on close",
            )

    def _check_no_generator_capture(self, arg: ast.AST) -> None:
        for sub in ast.walk(arg):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            if name and name.split(".")[-1] in GENERATOR_BUILDERS:
                self.report(
                    sub,
                    f"{name}(...) inside a process-pool dispatch ships a live "
                    "Generator across the fork; pass integer seeds "
                    "(RngStreams.seed_for / derive_seed) and build the "
                    "Generator inside the worker",
                )
