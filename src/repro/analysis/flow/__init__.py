"""Whole-program flow analysis for the determinism contract.

The per-file checkers in :mod:`repro.analysis.checkers` see one module at
a time; the flow layer sees the program. It builds a project index (module
import graph, function/class tables), a statement-level control-flow graph
per function with dominator/post-dominator trees, and a call graph over
the indexed modules, then runs four interprocedural rules on top:

* ``rng-provenance`` — Generators built in worker- or solver-reachable
  code must be seeded from the per-cell ``(seed, chain)`` stream;
* ``shm-lifecycle`` — every ``SharedMemory(create=True)`` must reach an
  ``unlink``/``weakref.finalize``/ownership-transfer guard on all CFG
  exit paths;
* ``budget-flow`` — cost-model probes reachable from a solver lifecycle
  method must be dominated or post-dominated by a ``charge()``;
* ``worker-purity`` — functions the fabric dispatches must be pure in
  ``(handle, spec, seed)``: no mutable-global state, wall-clock, or
  ambient RNG.

Findings carry call-chain traces (:attr:`repro.analysis.findings.Finding.trace`)
so a violation three calls below a dispatch site reports the whole path.
Soundness limits are documented in ``DESIGN.md`` §12.
"""

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.cfg import CFG, build_cfg
from repro.analysis.flow.project import FunctionInfo, ModuleInfo, ProjectIndex
from repro.analysis.flow.rules import run_flow_rules
from repro.analysis.flow.summaries import FunctionSummary, summarize

__all__ = [
    "CFG",
    "CallGraph",
    "FunctionInfo",
    "FunctionSummary",
    "ModuleInfo",
    "ProjectIndex",
    "build_cfg",
    "run_flow_rules",
    "summarize",
]
