"""The four interprocedural flow rules.

Each rule is a function over the :class:`~repro.analysis.flow.project.ProjectIndex`
plus the shared call graph, returning :class:`~repro.analysis.findings.Finding`
objects whose ``trace`` carries the call chain from the analysis root
(dispatch site or solver lifecycle method) to the violating function.

Scopes:

* **worker scope** — the closure of every function the execution fabric
  dispatches: first arguments of ``pool.map`` / ``map_salvage`` /
  ``submit`` / ``starmap`` / ``apply_async`` on pool-ish receivers
  (name contains ``pool``/``executor`` or stated ``WorkerPool`` type) and
  of :func:`repro.utils.parallel.parallel_map`;
* **solver scope** — the closure of ``start``/``step``/``finalize`` on
  every in-project subclass of ``SearchSolver``;
* ``shm-lifecycle`` has no roots: it is a per-function CFG property
  checked everywhere a segment is created.

Path-level exemptions come from the rule registry
(:mod:`repro.analysis.rules`) exactly as for the per-file checkers;
``# repro: noqa[...]`` suppression is applied by the engine.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Sequence

from repro.analysis.checkers.base import dotted_name
from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import CallGraph, local_types
from repro.analysis.flow.cfg import CFG, build_cfg, walk_scan
from repro.analysis.flow.project import FunctionInfo, ProjectIndex
from repro.analysis.flow.summaries import (
    FunctionSummary,
    is_charge_call,
    is_cost_probe,
    summarize,
)
from repro.analysis.rules import (
    BUDGET_FLOW,
    FLOW_RULE_IDS,
    RNG_PROVENANCE,
    RULES,
    SHM_LIFECYCLE,
    WORKER_PURITY,
)

__all__ = ["run_flow_rules", "worker_roots", "solver_roots"]

#: Pool methods that ship a callable to worker processes.
DISPATCH_METHODS = frozenset(
    {"map", "map_salvage", "submit", "starmap", "apply_async", "imap", "imap_unordered"}
)
#: Receiver-name fragments that mark a pool-ish object.
POOLISH = ("pool", "executor")
#: Stated receiver types that dispatch regardless of variable name.
POOL_CLASS_NAMES = frozenset({"WorkerPool"})
#: Free functions that dispatch their first argument.
DISPATCH_FUNCTIONS = frozenset({"parallel_map"})

#: The solver base class whose lifecycle methods anchor budget/rng scope.
SOLVER_BASE = "SearchSolver"
LIFECYCLE_METHODS = ("start", "step", "finalize")


def _finding(
    fn: FunctionInfo,
    node: ast.AST,
    rule: str,
    message: str,
    trace: tuple[str, ...],
    source_lines: list[str],
) -> Finding:
    lineno = getattr(node, "lineno", fn.lineno)
    snippet = (
        source_lines[lineno - 1].strip() if 1 <= lineno <= len(source_lines) else ""
    )
    return Finding(
        path=fn.path,
        line=lineno,
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        message=message,
        snippet=snippet,
        trace=trace,
    )


# -- roots --------------------------------------------------------------------


def _is_poolish(receiver: ast.expr, env: dict[str, str]) -> bool:
    dotted = dotted_name(receiver)
    if dotted is not None:
        lowered = dotted.lower()
        if any(fragment in lowered for fragment in POOLISH):
            return True
        head = dotted.split(".")[0]
        stated = env.get(head, "")
        if stated.split(".")[-1] in POOL_CLASS_NAMES:
            return True
    return False


def worker_roots(index: ProjectIndex, graph: CallGraph) -> dict[str, str]:
    """Dispatched functions: qualname → 'path:line' of the dispatch site."""
    roots: dict[str, str] = {}
    for fn in index.functions.values():
        module = index.modules[fn.module]
        env = local_types(fn, module, index)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            task_arg: ast.expr | None = None
            if (
                isinstance(func, ast.Attribute)
                and func.attr in DISPATCH_METHODS
                and node.args
                and _is_poolish(func.value, env)
            ):
                task_arg = node.args[0]
            elif (
                isinstance(func, ast.Name)
                and func.id in DISPATCH_FUNCTIONS
                and node.args
            ):
                task_arg = node.args[0]
            if task_arg is None or not isinstance(task_arg, ast.Name):
                continue
            target = graph.resolve_call(
                ast.Call(func=task_arg, args=[], keywords=[]), fn, module, env
            )
            if target is not None:
                roots.setdefault(
                    target.qualname, f"{fn.path}:{getattr(node, 'lineno', fn.lineno)}"
                )
    return roots


def solver_roots(index: ProjectIndex) -> list[str]:
    """``start``/``step``/``finalize`` of every SearchSolver subclass."""
    roots: list[str] = []
    for cls in index.subclasses_of(SOLVER_BASE):
        for method in LIFECYCLE_METHODS:
            info = cls.methods.get(method)
            if info is not None:
                roots.append(info.qualname)
    return sorted(set(roots))


# -- rule: shm-lifecycle ------------------------------------------------------


def _node_of(cfg: CFG, target: ast.AST) -> int | None:
    for node_id, roots in cfg.scan.items():
        for sub in walk_scan(roots):
            if sub is target:
                return node_id
    return None


def _bare_uses(roots: tuple[ast.AST, ...], name: str) -> bool:
    """True if ``name`` is used bare (not as ``name.attr``) in these roots."""
    parents: dict[int, ast.AST] = {}
    for root in roots:
        for parent in ast.walk(root):
            for child in ast.iter_child_nodes(parent):
                parents[id(child)] = parent
    for root in roots:
        for sub in ast.walk(root):
            if (
                isinstance(sub, ast.Name)
                and sub.id == name
                and isinstance(sub.ctx, ast.Load)
            ):
                parent = parents.get(id(sub))
                if not isinstance(parent, ast.Attribute):
                    return True
    return False


def _is_unlink_guard(roots: tuple[ast.AST, ...], name: str) -> bool:
    for root in roots:
        for sub in ast.walk(root):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "unlink"
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == name
            ):
                return True
    return False


def _shm_creations(fn: FunctionInfo) -> list[tuple[ast.Assign, str]]:
    out: list[tuple[ast.Assign, str]] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        callee = dotted_name(node.value.func) or ""
        if callee.split(".")[-1] != "SharedMemory":
            continue
        creates = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.value.keywords
        )
        if not creates:
            continue
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            out.append((node, node.targets[0].id))
    return out


def check_shm_lifecycle(index: ProjectIndex, graph: CallGraph) -> list[Finding]:
    findings: list[Finding] = []
    for fn in index.functions.values():
        creations = _shm_creations(fn)
        if not creations:
            continue
        lines = index.modules[fn.module].source.splitlines()
        cfg = build_cfg(fn.node)
        for assign, name in creations:
            created_at = _node_of(cfg, assign)
            if created_at is None:
                continue
            guards = {
                node_id
                for node_id, roots in cfg.scan.items()
                if node_id != created_at
                and (
                    _is_unlink_guard(roots, name) or _bare_uses(roots, name)
                )
            }
            if cfg.reaches_exit_avoiding(created_at, guards):
                findings.append(
                    _finding(
                        fn,
                        assign,
                        SHM_LIFECYCLE,
                        f"SharedMemory segment {name!r} can reach a function "
                        "exit without unlink/finalize/ownership transfer; "
                        "guard every path (try/finally or escape to an owner)",
                        (fn.qualname,),
                        lines,
                    )
                )
    return findings


# -- rule: budget-flow --------------------------------------------------------


def _probe_and_charge_nodes(cfg: CFG) -> tuple[dict[int, ast.AST], set[int]]:
    probes: dict[int, ast.AST] = {}
    charges: set[int] = set()
    for node_id, roots in cfg.scan.items():
        for sub in walk_scan(roots):
            if is_cost_probe(sub) and node_id not in probes:
                probes[node_id] = sub
            if is_charge_call(sub):
                charges.add(node_id)
    # ``charge()`` rejects zero, so the repo idiom is
    # ``if probes: budget.charge(probes)``. The guard only skips the call
    # when there is nothing to charge, so for coverage purposes the if
    # header counts as the charge site (it post-dominates probes the
    # charge itself would not, because of the guard's skip edge).
    for node_id, stmt in cfg.stmt.items():
        if isinstance(stmt, ast.If) and cfg.scan.get(node_id) == (stmt.test,):
            for inner in stmt.body:
                if any(is_charge_call(s) for s in ast.walk(inner)):
                    charges.add(node_id)
                    break
    return probes, charges


def _covered(node: int, charges: set[int], dom, postdom) -> bool:
    return bool(charges & dom.get(node, set())) or bool(
        charges & postdom.get(node, set())
    )


def check_budget_flow(index: ProjectIndex, graph: CallGraph) -> list[Finding]:
    roots = solver_roots(index)
    scope = graph.reachable(roots)
    findings: list[Finding] = []
    cfg_cache: dict[str, CFG] = {}
    cov_cache: dict[str, tuple[dict[int, ast.AST], set[int], dict, dict]] = {}

    def analysis(qual: str):
        if qual not in cov_cache:
            fn = index.functions[qual]
            cfg = cfg_cache.setdefault(qual, build_cfg(fn.node))
            probes, charges = _probe_and_charge_nodes(cfg)
            cov_cache[qual] = (probes, charges, cfg.dominators(), cfg.postdominators())
        return cov_cache[qual]

    def call_sites_excused(qual: str) -> bool:
        """True if every in-scope call of ``qual`` is charge-covered."""
        sites = 0
        for caller, chain in scope.items():
            for callee, call_node in graph.edges.get(caller, ()):
                if callee != qual:
                    continue
                sites += 1
                probes, charges, dom, postdom = analysis(caller)
                cfg = cfg_cache[caller]
                site_node = _node_of(cfg, call_node)
                if site_node is None or not charges:
                    return False
                if not _covered(site_node, charges, dom, postdom):
                    return False
        return sites > 0

    for qual, chain in scope.items():
        fn = index.functions[qual]
        if RULES[BUDGET_FLOW].is_exempt(fn.path):
            continue
        probes, charges, dom, postdom = analysis(qual)
        if not probes:
            continue
        lines = index.modules[fn.module].source.splitlines()
        excused = not charges and call_sites_excused(qual)
        for node_id, probe in sorted(probes.items()):
            if _covered(node_id, charges, dom, postdom):
                continue
            if excused:
                continue
            findings.append(
                _finding(
                    fn,
                    probe,
                    BUDGET_FLOW,
                    "cost-model probe reachable from the solver lifecycle "
                    "is not dominated or post-dominated by an "
                    "EvaluationBudget.charge() on this path",
                    chain,
                    lines,
                )
            )
    return findings


# -- rule: rng-provenance -----------------------------------------------------


def check_rng_provenance(index: ProjectIndex, graph: CallGraph) -> list[Finding]:
    w_roots = worker_roots(index, graph)
    scope = graph.reachable(list(w_roots) + solver_roots(index))
    findings: list[Finding] = []
    for qual, chain in scope.items():
        fn = index.functions[qual]
        if RULES[RNG_PROVENANCE].is_exempt(fn.path):
            continue
        module = index.modules[fn.module]
        summary = summarize(fn, module, index)
        lines = module.source.splitlines()
        for build in summary.generator_builds:
            if build.verdict != "bad":
                continue
            findings.append(
                _finding(
                    fn,
                    build.node,
                    RNG_PROVENANCE,
                    f"{build.builder}() in dispatched/solver code seeded from "
                    f"{build.detail}; derive the seed from the per-cell "
                    "(seed, chain) stream instead",
                    chain,
                    lines,
                )
            )
    return findings


# -- rule: worker-purity ------------------------------------------------------


def check_worker_purity(index: ProjectIndex, graph: CallGraph) -> list[Finding]:
    w_roots = worker_roots(index, graph)
    scope = graph.reachable(w_roots)
    findings: list[Finding] = []
    for qual, chain in scope.items():
        fn = index.functions[qual]
        if RULES[WORKER_PURITY].is_exempt(fn.path):
            continue
        module = index.modules[fn.module]
        summary = summarize(fn, module, index)
        lines = module.source.splitlines()
        dispatched_at = w_roots.get(chain[0], "")
        suffix = f" (dispatched at {dispatched_at})" if dispatched_at else ""
        for node, what in summary.wallclock:
            findings.append(
                _finding(
                    fn, node, WORKER_PURITY,
                    f"worker-reachable wall-clock read {what}(){suffix}; "
                    "workers must be pure in (handle, spec, seed)",
                    chain, lines,
                )
            )
        for node, what in summary.ambient_rng:
            findings.append(
                _finding(
                    fn, node, WORKER_PURITY,
                    f"worker-reachable ambient RNG {what}(){suffix}; "
                    "draw from the per-cell seed stream instead",
                    chain, lines,
                )
            )
        for node, name in summary.global_reads:
            findings.append(
                _finding(
                    fn, node, WORKER_PURITY,
                    f"worker-reachable read of mutable module global "
                    f"{name!r}{suffix}; pass the value through the cell task",
                    chain, lines,
                )
            )
        for node, name in summary.global_writes:
            findings.append(
                _finding(
                    fn, node, WORKER_PURITY,
                    f"worker-reachable write to module global {name!r}{suffix}; "
                    "worker results must flow only through return values",
                    chain, lines,
                )
            )
    return findings


# -- entry --------------------------------------------------------------------

_RULE_IMPLS: dict[str, Callable[[ProjectIndex, CallGraph], list[Finding]]] = {
    SHM_LIFECYCLE: check_shm_lifecycle,
    BUDGET_FLOW: check_budget_flow,
    RNG_PROVENANCE: check_rng_provenance,
    WORKER_PURITY: check_worker_purity,
}


def run_flow_rules(
    index: ProjectIndex, select: Sequence[str] | None = None
) -> list[Finding]:
    """Run the flow rules over an indexed project; findings are sorted."""
    graph = CallGraph(index)
    wanted: Iterable[str] = FLOW_RULE_IDS if select is None else [
        r for r in FLOW_RULE_IDS if r in set(select)
    ]
    findings: list[Finding] = []
    for rule_id in wanted:
        findings.extend(_RULE_IMPLS[rule_id](index, graph))
    return sorted(findings)
