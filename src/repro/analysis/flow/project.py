"""Project index: modules, imports, functions, classes, mutable globals.

The index is the ground layer of the flow analysis: it parses every module
once, maps file paths to dotted module names, records what each module
imports under which local name, and tables every function and class so the
call graph can resolve ``helper()``, ``self.method()`` and
``module.function()`` to concrete definitions.

Two constructors: :meth:`ProjectIndex.from_paths` walks real files (the
CLI path), :meth:`ProjectIndex.from_sources` takes ``{path: source}``
dicts so rule tests can build small multi-module programs inline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.analysis.checkers.base import dotted_name

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "ProjectIndex", "module_name_for"]

#: Method calls that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "add", "append", "extend", "insert", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
    }
)


def module_name_for(path: str) -> str:
    """Dotted module name for a repo-relative ``.py`` path.

    ``src/repro/ce/optimizer.py`` → ``repro.ce.optimizer``;
    ``src/repro/ce/__init__.py`` → ``repro.ce``. A leading ``src/`` (or any
    absolute prefix up to it) is stripped so display paths and real paths
    agree.
    """
    norm = path.replace("\\", "/")
    parts = [p for p in norm.split("/") if p]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  #: ``module.func`` or ``module.Class.func``
    module: str
    name: str
    cls: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    params: tuple[str, ...] = ()
    #: Parameter name → dotted annotation text (``"WorkerPool"``, ``"int"``).
    annotations: dict[str, str] = field(default_factory=dict)

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition: bases (as written) and its method table."""

    qualname: str
    module: str
    name: str
    bases: tuple[str, ...]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and the facts the flow rules need from it."""

    name: str
    path: str
    source: str
    tree: ast.Module
    #: Local name → fully qualified import target.
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Names assigned at module level (module globals).
    global_names: set[str] = field(default_factory=set)
    #: Module globals written or mutated from function scope anywhere in
    #: the module — the "shared mutable state" worker purity cares about.
    mutated_globals: set[str] = field(default_factory=set)


def _annotation_text(node: ast.expr | None) -> str:
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value  # string annotation ("WorkerPool")
    text = dotted_name(node)
    if text is not None:
        return text
    if isinstance(node, ast.Subscript):  # Optional[X], list[X] — keep the head
        return _annotation_text(node.value)
    return ""


def _function_info(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    module: str,
    path: str,
    cls: str | None,
) -> FunctionInfo:
    args = node.args
    params = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    annotations = {
        a.arg: _annotation_text(a.annotation)
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if a.annotation is not None
    }
    qual = f"{module}.{cls}.{node.name}" if cls else f"{module}.{node.name}"
    return FunctionInfo(
        qualname=qual,
        module=module,
        name=node.name,
        cls=cls,
        node=node,
        path=path,
        params=tuple(params),
        annotations=annotations,
    )


def _collect_imports(tree: ast.Module, module: str) -> dict[str, str]:
    """Map every locally bound import name to its fully qualified target."""
    imports: dict[str, str] = {}
    package_parts = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; dotted uses resolve
                    # through the bound root name.
                    root = alias.name.split(".")[0]
                    imports.setdefault(root, root)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: ``from .base import X`` in pkg.mod →
                # pkg.base.X (level counts packages stripped off).
                base_parts = package_parts[: len(package_parts) - node.level]
                prefix = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{prefix}.{alias.name}" if prefix else alias.name
                imports[alias.asname or alias.name] = target
    return imports


def _collect_mutated_globals(info: ModuleInfo) -> set[str]:
    """Module globals written or mutated from inside any function body."""
    mutated: set[str] = set()
    for fn in _all_function_nodes(info):
        declared_global: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for tgt in targets:
                    if isinstance(tgt, ast.Name) and tgt.id in declared_global:
                        mutated.add(tgt.id)
                    elif (
                        isinstance(tgt, ast.Subscript)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id in info.global_names
                    ):
                        mutated.add(tgt.value.id)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in info.global_names
                ):
                    mutated.add(func.value.id)
    return mutated


def _all_function_nodes(info: ModuleInfo) -> Iterable[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(info.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class ProjectIndex:
    """All indexed modules plus cross-module name resolution."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        #: qualname → FunctionInfo for every function/method in the project.
        self.functions: dict[str, FunctionInfo] = {}
        #: qualname → ClassInfo.
        self.classes: dict[str, ClassInfo] = {}
        for mod in modules.values():
            self.functions.update(mod.functions)
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls
                self.functions.update(
                    {m.qualname: m for m in cls.methods.values()}
                )

    # -- construction --------------------------------------------------------
    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "ProjectIndex":
        """Index in-memory ``{display_path: source}`` modules (test entry)."""
        modules: dict[str, ModuleInfo] = {}
        for path, source in sources.items():
            norm = path.replace("\\", "/")
            try:
                tree = ast.parse(source, filename=norm)
            except SyntaxError:
                continue  # the per-file engine reports parse errors
            name = module_name_for(norm)
            info = ModuleInfo(name=name, path=norm, source=source, tree=tree)
            info.imports = _collect_imports(tree, name)
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fi = _function_info(node, name, norm, None)
                    info.functions[fi.qualname] = fi
                elif isinstance(node, ast.ClassDef):
                    bases = tuple(
                        b for b in (dotted_name(base) for base in node.bases) if b
                    )
                    ci = ClassInfo(
                        qualname=f"{name}.{node.name}",
                        module=name,
                        name=node.name,
                        bases=bases,
                    )
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            mi = _function_info(item, name, norm, node.name)
                            ci.methods[item.name] = mi
                    info.classes[node.name] = ci
                elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for tgt in targets:
                        if isinstance(tgt, ast.Name):
                            info.global_names.add(tgt.id)
            modules[name] = info
        for info in modules.values():
            info.mutated_globals = _collect_mutated_globals(info)
        return cls(modules)

    @classmethod
    def from_paths(
        cls, paths: Iterable[str | Path], *, root: str | Path | None = "."
    ) -> "ProjectIndex":
        """Index every ``.py`` file under ``paths`` (CLI entry)."""
        from repro.analysis.engine import iter_python_files

        root_path = Path(root) if root is not None else None
        sources: dict[str, str] = {}
        for file_path in iter_python_files(paths):
            display = file_path.as_posix()
            if root_path is not None:
                try:
                    display = (
                        file_path.resolve().relative_to(root_path.resolve()).as_posix()
                    )
                except ValueError:
                    pass
            sources[display] = file_path.read_text(encoding="utf-8")
        return cls.from_sources(sources)

    # -- resolution ----------------------------------------------------------
    def expand(self, module: ModuleInfo, dotted: str) -> str:
        """Expand a dotted name's first segment through ``module``'s imports."""
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_qualified(self, qualified: str) -> FunctionInfo | None:
        """Find a project function for a fully qualified dotted name.

        Tries the name as ``module.func``, ``module.Class.method`` and —
        for a bare class reference — ``module.Class.__init__``.
        """
        direct = self.functions.get(qualified)
        if direct is not None:
            return direct
        cls = self.classes.get(qualified)
        if cls is not None:
            return cls.methods.get("__init__")
        # ``package.Class.method`` spelled through a re-exporting package:
        # try matching the trailing ``Class.method`` / ``func`` segments.
        parts = qualified.split(".")
        for split in range(len(parts) - 1, 0, -1):
            tail = ".".join(parts[split:])
            for candidate in self.functions:
                if candidate.endswith("." + tail) or candidate == tail:
                    head = ".".join(parts[:split])
                    if candidate[: -(len(tail) + 1)].startswith(head.split(".")[0]):
                        return self.functions[candidate]
            break  # only the longest tail is trustworthy
        return None

    def mro_classes(self, cls: ClassInfo) -> list[ClassInfo]:
        """``cls`` plus its in-project base classes, nearest first."""
        out: list[ClassInfo] = []
        queue = [cls]
        seen: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            out.append(current)
            module = self.modules[current.module]
            for base in current.bases:
                expanded = self.expand(module, base)
                target = self.classes.get(expanded)
                if target is None:
                    # Same-module base written bare.
                    target = self.classes.get(f"{current.module}.{base}")
                if target is None:
                    # Last resort: unique class-name match anywhere.
                    tail = expanded.split(".")[-1]
                    matches = [
                        c for c in self.classes.values() if c.name == tail
                    ]
                    if len(matches) == 1:
                        target = matches[0]
                if target is not None:
                    queue.append(target)
        return out

    def subclasses_of(self, base_name: str) -> list[ClassInfo]:
        """Every in-project class whose MRO contains a class named ``base_name``."""
        out = []
        for cls in self.classes.values():
            mro = self.mro_classes(cls)
            if any(c.name == base_name for c in mro[1:]) or cls.name == base_name:
                out.append(cls)
        return out
