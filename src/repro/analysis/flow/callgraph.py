"""Call graph over the project index, with call-chain traces.

Resolution is deliberately syntactic — no type inference beyond what the
code states. A call resolves when it is one of:

* a bare name defined in the same module (function or class → ``__init__``);
* a bare name imported from an indexed module (``from m import f``);
* ``self.method()`` / ``cls.method()`` — looked up through the in-project
  MRO of the enclosing class;
* ``alias.attr(...)`` where ``alias`` is an imported module or class;
* ``var.method()`` where ``var``'s class is stated locally — a parameter
  annotation, ``var: T = ...``, ``var = ClassName(...)`` or
  ``with ClassName(...) as var``.

Unresolvable calls (duck-typed receivers, callables passed as values) are
simply absent from the graph; DESIGN.md §12 lists this as the main
soundness limit.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.checkers.base import dotted_name
from repro.analysis.flow.project import FunctionInfo, ModuleInfo, ProjectIndex

__all__ = ["CallGraph", "local_types"]


def _class_for(index: ProjectIndex, module: ModuleInfo, name: str) -> str | None:
    """Resolve a (possibly dotted) class reference to a class qualname."""
    if not name:
        return None
    expanded = index.expand(module, name)
    if expanded in index.classes:
        return expanded
    local = f"{module.name}.{name}"
    if local in index.classes:
        return local
    tail = expanded.split(".")[-1]
    matches = [c.qualname for c in index.classes.values() if c.name == tail]
    if len(matches) == 1:
        return matches[0]
    return None


def local_types(
    fn: FunctionInfo, module: ModuleInfo, index: ProjectIndex
) -> dict[str, str]:
    """Map local variable names to stated class qualnames.

    Sources: parameter annotations (of the function and any nested defs),
    ``x: T`` annotations, ``x = ClassName(...)`` constructor assignments and
    ``with ClassName(...) as x`` blocks.
    """
    env: dict[str, str] = {}
    for name, ann in fn.annotations.items():
        cls = _class_for(index, module, ann)
        if cls is not None:
            env[name] = cls
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn.node:
            for arg in (*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs):
                if arg.annotation is not None:
                    text = dotted_name(arg.annotation) or (
                        arg.annotation.value
                        if isinstance(arg.annotation, ast.Constant)
                        and isinstance(arg.annotation.value, str)
                        else ""
                    )
                    cls = _class_for(index, module, text)
                    if cls is not None:
                        env[arg.arg] = cls
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            cls = _class_for(index, module, dotted_name(node.annotation) or "")
            if cls is not None:
                env[node.target.id] = cls
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            ctor = dotted_name(node.value.func)
            cls = _class_for(index, module, ctor or "") if ctor else None
            if cls is not None:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        env[tgt.id] = cls
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    isinstance(item.context_expr, ast.Call)
                    and item.optional_vars is not None
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    ctor = dotted_name(item.context_expr.func)
                    cls = _class_for(index, module, ctor or "") if ctor else None
                    if cls is not None:
                        env[item.optional_vars.id] = cls
    return env


class CallGraph:
    """Resolved call edges plus reachability with traces."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: caller qualname → list of (callee qualname, call node).
        self.edges: dict[str, list[tuple[str, ast.Call]]] = {}
        for fn in index.functions.values():
            module = index.modules[fn.module]
            self.edges[fn.qualname] = list(self._resolve_calls(fn, module))

    # -- resolution ----------------------------------------------------------
    def _resolve_calls(
        self, fn: FunctionInfo, module: ModuleInfo
    ) -> Iterator[tuple[str, ast.Call]]:
        env = local_types(fn, module, self.index)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            target = self.resolve_call(node, fn, module, env)
            if target is not None:
                yield target.qualname, node

    def resolve_call(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        module: ModuleInfo,
        env: dict[str, str] | None = None,
    ) -> FunctionInfo | None:
        """Resolve one call expression to a project function, if possible."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] in ("self", "cls") and fn.cls is not None and len(parts) == 2:
            return self._method_lookup(f"{fn.module}.{fn.cls}", parts[1])
        if len(parts) == 1:
            name = parts[0]
            local_fn = module.functions.get(f"{module.name}.{name}")
            if local_fn is not None:
                return local_fn
            if name in module.classes:
                return module.classes[name].methods.get("__init__")
            if name in module.imports:
                return self.index.resolve_qualified(module.imports[name])
            return None
        if env and parts[0] in env and len(parts) == 2:
            return self._method_lookup(env[parts[0]], parts[1])
        expanded = self.index.expand(module, dotted)
        if expanded != dotted or parts[0] in module.imports:
            return self.index.resolve_qualified(expanded)
        return None

    def _method_lookup(self, cls_qual: str, method: str) -> FunctionInfo | None:
        cls = self.index.classes.get(cls_qual)
        if cls is None:
            return None
        for klass in self.index.mro_classes(cls):
            if method in klass.methods:
                return klass.methods[method]
        return None

    # -- reachability --------------------------------------------------------
    def reachable(self, roots: Iterable[str]) -> dict[str, tuple[str, ...]]:
        """BFS closure: qualname → call chain from its nearest root.

        The chain includes both endpoints: ``(root, ..., qualname)``.
        Roots map to one-element chains. Deterministic: roots and edges are
        visited in sorted/insertion order, shortest chain wins.
        """
        order: dict[str, tuple[str, ...]] = {}
        queue: list[str] = []
        for root in sorted(set(roots)):
            if root in self.index.functions and root not in order:
                order[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee, _node in self.edges.get(current, ()):
                if callee not in order:
                    order[callee] = order[current] + (callee,)
                    queue.append(callee)
        return order
