"""Statement-level control-flow graphs with dominator analysis.

One CFG node per statement keeps the construction simple and the queries
the flow rules need — "does a charge dominate/post-dominate this probe?",
"can execution reach the function exit from this allocation without
passing a guard?" — directly answerable with textbook set-based dominator
iteration (functions here are small; O(n²) is fine and deterministic).

Exception modeling (the soundness line, documented in DESIGN.md §12):

* explicit ``raise`` statements always get exit edges — to the innermost
  enclosing ``except``/``finally`` frame if one exists, else straight to
  the function exit;
* *implicit* exceptions (any call may throw) are modeled only inside
  ``try`` statements: every statement in a ``try`` body gets an edge to
  its handlers/finally, because the programmer declared the possibility.
  Outside any ``try``, calls are assumed not to throw — otherwise every
  statement would be an exit path and the rules would drown in noise;
* a ``finally`` body entered exceptionally continues both to its normal
  successor and outward (next frame or the exit), so a ``try/finally``
  guard protects the exceptional path exactly as at runtime.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["CFG", "build_cfg", "walk_scan"]

_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def walk_scan(roots: tuple[ast.AST, ...]) -> Iterator[ast.AST]:
    """Walk the scan roots of one CFG node, skipping nested scopes.

    Comprehensions execute inline and are entered; nested ``def``/
    ``lambda``/``class`` bodies belong to other scopes and are not (the
    def *statement* only binds a name at this node).
    """
    stack = list(roots)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _NESTED_SCOPES):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    entry: int = 0
    exit: int = 1
    succs: dict[int, set[int]] = field(default_factory=dict)
    preds: dict[int, set[int]] = field(default_factory=dict)
    #: node → AST subtrees executed *at* that node (header exprs for
    #: compound statements, the whole statement for simple ones).
    scan: dict[int, tuple[ast.AST, ...]] = field(default_factory=dict)
    #: node → owning statement (line/col anchor for findings).
    stmt: dict[int, ast.AST] = field(default_factory=dict)
    #: Nodes that are explicit ``raise`` statements.
    raise_nodes: set[int] = field(default_factory=set)

    def nodes(self) -> list[int]:
        return sorted(self.succs)

    def ensure(self, node: int) -> None:
        self.succs.setdefault(node, set())
        self.preds.setdefault(node, set())

    def add_edge(self, src: int, dst: int) -> None:
        self.ensure(src)
        self.ensure(dst)
        self.succs[src].add(dst)
        self.preds[dst].add(src)

    # -- dominators ----------------------------------------------------------
    def _dominators_from(
        self, root: int, edges: dict[int, set[int]]
    ) -> dict[int, set[int]]:
        all_nodes = set(self.succs)
        dom: dict[int, set[int]] = {n: set(all_nodes) for n in all_nodes}
        dom[root] = {root}
        changed = True
        while changed:
            changed = False
            for n in sorted(all_nodes):
                if n == root:
                    continue
                preds = edges.get(n, set())
                if preds:
                    new = set.intersection(*(dom[p] for p in preds))
                else:
                    new = set(all_nodes)
                new.add(n)
                if new != dom[n]:
                    dom[n] = new
                    changed = True
        return dom

    def dominators(self) -> dict[int, set[int]]:
        """node → set of nodes that dominate it (including itself)."""
        return self._dominators_from(self.entry, self.preds)

    def postdominators(self) -> dict[int, set[int]]:
        """node → set of nodes that post-dominate it (including itself)."""
        return self._dominators_from(self.exit, self.succs)

    # -- path queries --------------------------------------------------------
    def reaches_exit_avoiding(self, start: int, blocked: set[int]) -> bool:
        """True if some path ``start → exit`` avoids every blocked node."""
        stack = [s for s in self.succs.get(start, ()) if s not in blocked]
        seen: set[int] = set(stack)
        while stack:
            node = stack.pop()
            if node == self.exit:
                return True
            for nxt in self.succs.get(node, ()):
                if nxt not in blocked and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False


@dataclass
class _Loop:
    header: int
    breaks: list[int] = field(default_factory=list)


@dataclass
class _Frame:
    """One enclosing ``try``: where exceptions raised in its body land."""

    targets: list[int]  # handler entry nodes, or the finally junction
    entered: bool = False  # did anything actually route an exception here?


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.cfg.ensure(self.cfg.entry)
        self.cfg.ensure(self.cfg.exit)
        self._next = 2
        self._loops: list[_Loop] = []
        self._frames: list[_Frame] = []

    def new_node(self, stmt: ast.AST, scan: tuple[ast.AST, ...]) -> int:
        node = self._next
        self._next += 1
        self.cfg.ensure(node)
        self.cfg.scan[node] = tuple(s for s in scan if s is not None)
        self.cfg.stmt[node] = stmt
        return node

    def link(self, preds: set[int], node: int) -> None:
        for p in sorted(preds):
            self.cfg.add_edge(p, node)

    def _route_exception(self, node: int) -> None:
        """Edge ``node`` to the innermost frame's landing pads (or exit)."""
        if self._frames:
            frame = self._frames[-1]
            frame.entered = True
            for target in frame.targets:
                self.cfg.add_edge(node, target)
        else:
            self.cfg.add_edge(node, self.cfg.exit)

    # -- statement dispatch --------------------------------------------------
    def seq(self, stmts: list[ast.stmt], preds: set[int]) -> set[int]:
        for stmt in stmts:
            preds = self.stmt(stmt, preds)
        return preds

    def stmt(self, stmt: ast.stmt, preds: set[int]) -> set[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, ast.While):
            return self._loop(stmt, preds, header_scan=(stmt.test,))
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds, header_scan=(stmt.target, stmt.iter))
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self.new_node(stmt, tuple(stmt.items))
            self.link(preds, node)
            return self.seq(stmt.body, {node})
        if isinstance(stmt, ast.Return):
            node = self.new_node(stmt, (stmt,))
            self.link(preds, node)
            self.cfg.add_edge(node, self.cfg.exit)
            return set()
        if isinstance(stmt, ast.Raise):
            node = self.new_node(stmt, (stmt,))
            self.link(preds, node)
            self.cfg.raise_nodes.add(node)
            self._route_exception(node)
            return set()
        if isinstance(stmt, ast.Break):
            node = self.new_node(stmt, ())
            self.link(preds, node)
            if self._loops:
                self._loops[-1].breaks.append(node)
            return set()
        if isinstance(stmt, ast.Continue):
            node = self.new_node(stmt, ())
            self.link(preds, node)
            if self._loops:
                self.cfg.add_edge(node, self._loops[-1].header)
            return set()
        # Simple statement (assign, expr, assert, import, nested def, ...).
        node = self.new_node(stmt, (stmt,))
        self.link(preds, node)
        if self._frames:
            # Inside a try body any statement may raise (module docstring).
            self._route_exception(node)
        elif isinstance(stmt, ast.Assert):
            self.cfg.add_edge(node, self.cfg.exit)
        return {node}

    def _if(self, stmt: ast.If, preds: set[int]) -> set[int]:
        node = self.new_node(stmt, (stmt.test,))
        self.link(preds, node)
        body_exits = self.seq(stmt.body, {node})
        else_exits = self.seq(stmt.orelse, {node}) if stmt.orelse else {node}
        return body_exits | else_exits

    def _loop(
        self,
        stmt: ast.While | ast.For | ast.AsyncFor,
        preds: set[int],
        *,
        header_scan: tuple[ast.AST, ...],
    ) -> set[int]:
        header = self.new_node(stmt, header_scan)
        self.link(preds, header)
        loop = _Loop(header=header)
        self._loops.append(loop)
        body_exits = self.seq(stmt.body, {header})
        self._loops.pop()
        self.link(body_exits, header)
        normal = self.seq(stmt.orelse, {header}) if stmt.orelse else {header}
        return normal | set(loop.breaks)

    def _try(self, stmt: ast.Try, preds: set[int]) -> set[int]:
        handler_entries = [
            self.new_node(h, (h.type,) if h.type else ()) for h in stmt.handlers
        ]
        junction: int | None = None
        if stmt.finalbody:
            junction = self.new_node(stmt, ())

        # Exceptions in the body land on the handlers if there are any,
        # else directly on the finally junction.
        targets = handler_entries if handler_entries else (
            [junction] if junction is not None else []
        )
        frame = _Frame(targets=list(targets))
        if frame.targets:
            self._frames.append(frame)
            body_exits = self.seq(stmt.body, preds)
            self._frames.pop()
        else:
            body_exits = self.seq(stmt.body, preds)

        handler_exits: set[int] = set()
        for entry, handler in zip(handler_entries, stmt.handlers):
            handler_exits |= self.seq(handler.body, {entry})
        else_exits = self.seq(stmt.orelse, body_exits) if stmt.orelse else body_exits
        normal_exits = else_exits | handler_exits

        if junction is None:
            return normal_exits

        # finally: normal path and (for incomplete handlers) uncaught
        # exceptions both flow through the junction into the finalbody.
        self.link(normal_exits, junction)
        uncaught = False
        if handler_entries and frame.entered and self._handlers_incomplete(stmt):
            uncaught = True
            # Route every exception source that reached the handlers to the
            # junction as well: an uncaught type skips the handlers.
            for entry in handler_entries:
                for src in list(self.cfg.preds.get(entry, ())):
                    self.cfg.add_edge(src, junction)
        final_exits = self.seq(stmt.finalbody, {junction})
        if (not handler_entries and frame.entered) or uncaught:
            # Entered exceptionally: after the finally, propagation
            # continues outward as well as falling through.
            for node in final_exits:
                self._route_exception(node)
        return final_exits

    @staticmethod
    def _handlers_incomplete(stmt: ast.Try) -> bool:
        """True unless some handler catches everything (bare/BaseException)."""
        for handler in stmt.handlers:
            if handler.type is None:
                return False  # bare except catches everything
            names = (
                [getattr(e, "id", "") for e in handler.type.elts]
                if isinstance(handler.type, ast.Tuple)
                else [getattr(handler.type, "id", "")]
            )
            if "BaseException" in names:
                return False
        return True


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG of one function's body."""
    builder = _Builder()
    exits = builder.seq(fn.body, {builder.cfg.entry})
    for node in sorted(exits):
        builder.cfg.add_edge(node, builder.cfg.exit)
    return builder.cfg
