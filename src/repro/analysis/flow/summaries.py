"""Per-function summaries: the facts the interprocedural rules consume.

One :class:`FunctionSummary` per function records where it reads the wall
clock, touches ambient RNG state, reads or writes mutable module globals,
and builds ``numpy`` Generators — each with the AST node so findings can
point at the exact line, and for generator builds a seed-provenance
verdict from a small intraprocedural dataflow walk.

Provenance classes (``ok`` / ``bad`` / ``unknown``): values derived from
function parameters (including tuple-unpacks and attribute reads off a
parameter), from :func:`repro.utils.rng.derive_seed` /
``RngStreams.seed_for`` / ``generator_from_state`` / ``spawn_generators``
results, or from arithmetic over those are ``ok``. Module globals and
literal constants are ``bad`` in dispatched code — a worker seeded from
shared state or a fixed literal collapses the per-cell ``(seed, chain)``
stream. Anything the walk cannot see (an unresolvable call's result, a
subscript of unknown origin) is ``unknown`` and deliberately not flagged:
the rule is tuned for high-confidence findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.checkers.base import dotted_name
from repro.analysis.checkers.seed_discipline import LEGACY_NP_RANDOM
from repro.analysis.checkers.wallclock import DATETIME_FUNCS, TIME_FUNCS
from repro.analysis.flow.project import (
    MUTATOR_METHODS,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
)

__all__ = [
    "FunctionSummary",
    "GeneratorBuild",
    "summarize",
    "COST_ATTRS",
    "OBJECTIVE_NAMES",
    "is_cost_probe",
    "is_charge_call",
]

#: Attribute calls that cross the cost-model boundary (Eq. (2) probes).
COST_ATTRS = frozenset({"evaluate", "evaluate_batch", "swap_cost", "move_cost"})
#: Bare / attribute names under which library code holds a user objective.
OBJECTIVE_NAMES = frozenset({"objective", "score"})

#: Functions whose result is sanctioned seed material.
_SEED_DERIVERS = frozenset(
    {
        "derive_seed", "seed_for", "spawn_generators", "generator_from_state",
        "as_generator", "int", "abs", "hash", "min", "max",
    }
)

#: Generator-building entry points (fully expanded target names).
_BUILDER_TARGETS = {
    "repro.utils.rng.as_generator": "as_generator",
    "repro.utils.rng.spawn_generators": "spawn_generators",
    "numpy.random.default_rng": "default_rng",
}


def is_cost_probe(node: ast.AST) -> bool:
    """True for a call that probes the cost model or a user objective."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in COST_ATTRS or func.attr in OBJECTIVE_NAMES
    if isinstance(func, ast.Name):
        return func.id in OBJECTIVE_NAMES
    return False


def is_charge_call(node: ast.AST) -> bool:
    """True for an ``<anything>.charge(...)`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "charge"
    )


@dataclass
class GeneratorBuild:
    """One Generator construction site with its seed provenance verdict."""

    node: ast.Call
    builder: str  # as_generator / default_rng / spawn_generators
    verdict: str  # ok / bad / unknown
    detail: str


@dataclass
class FunctionSummary:
    """Everything the flow rules need to know about one function."""

    fn: FunctionInfo
    wallclock: list[tuple[ast.AST, str]] = field(default_factory=list)
    ambient_rng: list[tuple[ast.AST, str]] = field(default_factory=list)
    global_reads: list[tuple[ast.AST, str]] = field(default_factory=list)
    global_writes: list[tuple[ast.AST, str]] = field(default_factory=list)
    generator_builds: list[GeneratorBuild] = field(default_factory=list)


_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _own_scope(fn_node: ast.FunctionDef | ast.AsyncFunctionDef):
    """Walk ``fn_node``'s own scope: skip nested def/class/lambda bodies."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _NESTED_SCOPES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _local_names(fn: FunctionInfo) -> set[str]:
    """Names bound inside the function (params, assigns, loops, withs)."""
    names = set(fn.params)
    for node in _own_scope(fn.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.comprehension):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


class _Provenance:
    """Intraprocedural seed-provenance evaluator for one function."""

    def __init__(self, fn: FunctionInfo, module: ModuleInfo) -> None:
        self.fn = fn
        self.module = module
        self.named: dict[str, tuple[str, str]] = {
            p: ("ok", f"parameter {p!r}") for p in fn.params
        }
        self._scan_assignments()

    def _scan_assignments(self) -> None:
        for node in _own_scope(self.fn.node):
            if isinstance(node, ast.Assign):
                verdict = self.classify(node.value)
                for tgt in node.targets:
                    self._bind_target(tgt, verdict, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind_target(node.target, self.classify(node.value), node.value)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                verdict = self.classify(node.iter)
                self._bind_target(node.target, verdict, node.iter)
            elif isinstance(node, ast.comprehension):
                verdict = self.classify(node.iter)
                self._bind_target(node.target, verdict, node.iter)

    def _bind_target(
        self, target: ast.expr, verdict: tuple[str, str], value: ast.expr
    ) -> None:
        if isinstance(target, ast.Name):
            # First binding wins ties only when the later one is worse-known;
            # simple last-write-wins is fine for the straight-line code the
            # rule targets.
            self.named[target.id] = verdict
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, verdict, value)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, verdict, value)

    def classify(self, expr: ast.expr | None) -> tuple[str, str]:
        """(verdict, detail) for the value of ``expr`` as seed material."""
        if expr is None:
            return "bad", "no seed argument (ambient entropy)"
        if isinstance(expr, ast.Constant):
            if expr.value is None:
                return "bad", "seed=None (ambient entropy)"
            return "bad", f"constant seed {expr.value!r} shared by every call"
        if isinstance(expr, ast.Name):
            if expr.id in self.named:
                return self.named[expr.id]
            if expr.id in self.module.global_names:
                return "bad", f"module-level state {expr.id!r}"
            return "unknown", f"unresolved name {expr.id!r}"
        if isinstance(expr, ast.Attribute):
            root = expr
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                if root.id in ("self", "cls") or root.id in self.named:
                    return "ok", f"derived from {root.id!r}"
                if root.id in self.module.global_names:
                    return "bad", f"module-level state {root.id!r}"
            return "unknown", "attribute of unknown origin"
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            tail = (name or "").split(".")[-1]
            if tail in _SEED_DERIVERS:
                return "ok", f"result of {tail}()"
            return "unknown", f"result of {tail or '<call>'}()"
        if isinstance(expr, ast.BinOp):
            left = self.classify(expr.left)
            right = self.classify(expr.right)
            for side in (left, right):
                if side[0] == "bad":
                    return side
            if "ok" in (left[0], right[0]):
                return "ok", "arithmetic over parameter-derived values"
            return "unknown", "arithmetic over unknown values"
        if isinstance(expr, ast.Subscript):
            return self.classify(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List)):
            verdicts = [self.classify(e) for e in expr.elts]
            for v in verdicts:
                if v[0] == "bad":
                    return v
            if verdicts and all(v[0] == "ok" for v in verdicts):
                return "ok", "container of parameter-derived values"
            return "unknown", "container with unknown elements"
        return "unknown", "expression the dataflow walk cannot see"


def _seed_argument(call: ast.Call) -> ast.expr | None:
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg in ("seed", "rng", "root_seed", "state"):
            return kw.value
    return None


def summarize(
    fn: FunctionInfo, module: ModuleInfo, index: ProjectIndex
) -> FunctionSummary:
    """Compute the flow summary of one function."""
    summary = FunctionSummary(fn=fn)
    locals_ = _local_names(fn)
    prov = _Provenance(fn, module)
    declared_global: set[str] = set()
    for node in _own_scope(fn.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    for node in _own_scope(fn.node):
        if isinstance(node, ast.Call):
            _scan_call(node, module, prov, summary, locals_)
        elif (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id not in locals_
            and node.id in module.mutated_globals
        ):
            summary.global_reads.append((node, node.id))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for tgt in targets:
                if isinstance(tgt, ast.Name) and tgt.id in declared_global:
                    summary.global_writes.append((node, tgt.id))
                elif (
                    isinstance(tgt, ast.Subscript)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id not in locals_
                    and tgt.value.id in module.global_names
                ):
                    summary.global_writes.append((node, tgt.value.id))
    # An augmented/subscript write reads its target too; report it once,
    # as the (more serious) write.
    written = {(getattr(n, "lineno", 0), name) for n, name in summary.global_writes}
    summary.global_reads = [
        (n, name)
        for n, name in summary.global_reads
        if (getattr(n, "lineno", 0), name) not in written
    ]
    return summary


def _scan_call(
    call: ast.Call,
    module: ModuleInfo,
    prov: _Provenance,
    summary: FunctionSummary,
    locals_: set[str],
) -> None:
    dotted = dotted_name(call.func)
    if dotted is None:
        return
    head, _, rest = dotted.partition(".")
    target = module.imports.get(head)
    expanded = f"{target}.{rest}" if target and rest else (target or dotted)
    parts = expanded.split(".")

    # Wall-clock reads.
    if parts[0] == "time" and len(parts) == 2 and parts[1] in TIME_FUNCS:
        summary.wallclock.append((call, f"time.{parts[1]}"))
    elif parts[0] == "datetime" and parts[-1] in DATETIME_FUNCS:
        summary.wallclock.append((call, expanded))

    # Ambient RNG: stdlib random and numpy's legacy global-state API.
    if parts[0] == "random" and len(parts) == 2:
        summary.ambient_rng.append((call, expanded))
    elif (
        len(parts) >= 3
        and parts[0] == "numpy"
        and parts[1] == "random"
        and parts[2] in LEGACY_NP_RANDOM
    ):
        summary.ambient_rng.append((call, f"numpy.random.{parts[2]}"))

    # Mutator-method calls on module globals.
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in MUTATOR_METHODS
        and isinstance(func.value, ast.Name)
        and func.value.id in module.global_names
        and func.value.id not in locals_
    ):
        summary.global_writes.append((call, func.value.id))

    # Generator builds with seed provenance.
    builder = _BUILDER_TARGETS.get(expanded)
    if builder is None and parts[-1] in ("as_generator", "default_rng", "spawn_generators"):
        builder = parts[-1]
    if builder is not None:
        verdict, detail = prov.classify(_seed_argument(call))
        summary.generator_builds.append(
            GeneratorBuild(node=call, builder=builder, verdict=verdict, detail=detail)
        )
