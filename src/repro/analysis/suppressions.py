"""Inline ``# repro: noqa[...]`` suppression comments.

A finding is suppressed when its physical line carries a marker::

    x == 0.0  # repro: noqa[float-equality] -- exact boundary is the semantics

``# repro: noqa`` with no bracket suppresses every rule on that line; the
bracketed form takes a comma-separated rule list and is strongly preferred
(it survives a new rule being added without silently widening). Text after
the bracket is free-form justification. Parse errors are never
suppressible — a file that does not parse cannot be verified at all.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.rules import PARSE_ERROR

__all__ = ["parse_suppressions", "filter_suppressed"]

#: Sentinel rule-set meaning "all rules suppressed on this line".
ALL_RULES = frozenset({"*"})

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[^\]]*)\])?", re.IGNORECASE
)


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> frozenset of suppressed rule ids.

    The value :data:`ALL_RULES` (``{"*"}``) means a bare ``noqa`` that
    silences every rule on the line.
    """
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = ALL_RULES
        else:
            ids = frozenset(r.strip() for r in rules.split(",") if r.strip())
            out[lineno] = ids or ALL_RULES
    return out


def filter_suppressed(
    findings: Iterable[Finding], suppressions: dict[int, frozenset[str]]
) -> list[Finding]:
    """Drop findings whose line carries a matching noqa marker."""
    kept: list[Finding] = []
    for finding in findings:
        rules = suppressions.get(finding.line)
        if (
            rules is not None
            and finding.rule != PARSE_ERROR
            and (rules is ALL_RULES or "*" in rules or finding.rule in rules)
        ):
            continue
        kept.append(finding)
    return kept
