"""Static analysis enforcing the reproduction's determinism contract.

The headline claims of this codebase — seed-for-seed multi-chain parity,
parallel == serial experiment results, the 30-run ANOVA study — hold only
while every RNG draw flows through :mod:`repro.utils.rng` seed streams and
everything dispatched to :func:`repro.utils.parallel.parallel_map` is a
stateless, picklable, seed-carrying callable. This package enforces those
invariants mechanically, in two layers: an AST-visitor linter
(``repro-lint`` / ``python -m repro.analysis``) with per-file rules,
and a whole-program flow analysis (``repro-lint --flow``, see
:mod:`repro.analysis.flow`) that builds a call graph, per-function CFGs
and interprocedural summaries to verify RNG seed provenance, shared-memory
lifecycles, budget charging and worker purity across module boundaries.
Both honor inline ``# repro: noqa[rule]`` suppressions and the checked-in
baseline for accepted debt. ``DESIGN.md`` § "Determinism contract" and
§12 "Flow analysis" document the rationale rule by rule.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    ALL_CHECKERS,
    LintResult,
    flow_paths,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import FLOW_RULE_IDS, RULE_IDS, RULES, Rule

__all__ = [
    "ALL_CHECKERS",
    "DEFAULT_BASELINE_NAME",
    "FLOW_RULE_IDS",
    "Finding",
    "LintResult",
    "RULES",
    "RULE_IDS",
    "Rule",
    "apply_baseline",
    "flow_paths",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]
