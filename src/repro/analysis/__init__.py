"""Static analysis enforcing the reproduction's determinism contract.

The headline claims of this codebase — seed-for-seed multi-chain parity,
parallel == serial experiment results, the 30-run ANOVA study — hold only
while every RNG draw flows through :mod:`repro.utils.rng` seed streams and
everything dispatched to :func:`repro.utils.parallel.parallel_map` is a
stateless, picklable, seed-carrying callable. This package enforces those
invariants mechanically: an AST-visitor linter (``repro-lint`` /
``python -m repro.analysis``) with five codebase-specific rules, inline
``# repro: noqa[rule]`` suppressions and a checked-in baseline for
accepted debt. ``DESIGN.md`` § "Determinism contract" documents the
rationale rule by rule.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    ALL_CHECKERS,
    LintResult,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_IDS, RULES, Rule

__all__ = [
    "ALL_CHECKERS",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintResult",
    "RULES",
    "RULE_IDS",
    "Rule",
    "apply_baseline",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]
