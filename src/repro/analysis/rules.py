"""Rule registry for the determinism & parallel-safety linter.

Each rule guards one invariant that the reproduction's headline claims
(seed-for-seed multi-chain parity, parallel == serial experiment results,
the 30-run ANOVA study) depend on. Rules carry their own default path
exemptions: e.g. wall-clock reads are the whole point of
``repro.utils.timing``, and the test suite asserts *bitwise* seed-for-seed
reproducibility, so exact float equality is the point there, not a bug.

Paths are matched with :func:`fnmatch.fnmatch` against ``/``-normalized
paths; every pattern is also tried with a ``*/`` prefix so configuration
can say ``repro/utils/timing.py`` regardless of whether files are linted
as ``src/repro/...`` or via an absolute path.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch

__all__ = [
    "Rule",
    "RULES",
    "RULE_IDS",
    "path_matches",
    "SEED_DISCIPLINE",
    "WALLCLOCK",
    "FLOAT_EQUALITY",
    "PARALLEL_SAFETY",
    "MUTABLE_STATE",
    "BUDGET_DISCIPLINE",
    "KERNEL_DISCIPLINE",
    "PARSE_ERROR",
]

SEED_DISCIPLINE = "seed-discipline"
WALLCLOCK = "wallclock"
FLOAT_EQUALITY = "float-equality"
PARALLEL_SAFETY = "parallel-safety"
MUTABLE_STATE = "mutable-state"
BUDGET_DISCIPLINE = "budget-discipline"
KERNEL_DISCIPLINE = "kernel-discipline"
#: Pseudo-rule for files the linter cannot parse; not suppressible.
PARSE_ERROR = "parse-error"


def path_matches(path: str, patterns: tuple[str, ...]) -> bool:
    """True if ``path`` (``/``-separated) matches any of ``patterns``."""
    norm = path.replace("\\", "/")
    return any(fnmatch(norm, p) or fnmatch(norm, "*/" + p) for p in patterns)


@dataclass(frozen=True)
class Rule:
    """Metadata for one checker: id, docs, and default path exemptions."""

    id: str
    summary: str
    rationale: str
    #: Files where the whole rule is off by default (see module docstring).
    exempt_globs: tuple[str, ...] = ()
    #: When non-empty, the rule applies *only* to matching files (e.g.
    #: budget-discipline guards the search-loop packages, nothing else).
    only_globs: tuple[str, ...] = ()

    def is_exempt(self, path: str) -> bool:
        if self.only_globs and not path_matches(path, self.only_globs):
            return True
        return path_matches(path, self.exempt_globs)


RULES: dict[str, Rule] = {
    r.id: r
    for r in (
        Rule(
            id=SEED_DISCIPLINE,
            summary="all randomness must flow through repro.utils.rng seed streams",
            rationale=(
                "stdlib random and numpy's legacy global-state API are hidden "
                "global state; Generators built outside repro.utils.rng escape "
                "the SeedSequence spawn tree that makes whole tables "
                "replayable from one integer"
            ),
            # Generator *construction* is additionally allowed in tests,
            # benchmarks and examples (fixed-seed fixtures); that carve-out
            # lives in the checker, not here — legacy global-state calls are
            # banned everywhere.
        ),
        Rule(
            id=WALLCLOCK,
            summary="no wall-clock reads outside repro.utils.timing",
            rationale=(
                "timestamps that reach result records make reported numbers "
                "run-dependent; all MT measurements go through Stopwatch so "
                "results carry time only where the paper's tables expect it"
            ),
            exempt_globs=(
                "repro/utils/timing.py",
                "benchmarks/*",
                "examples/*",
            ),
        ),
        Rule(
            id=FLOAT_EQUALITY,
            summary="no == / != between float-valued expressions",
            rationale=(
                "exact float comparison silently changes behaviour across "
                "BLAS builds and vectorization paths; use tolerances, or "
                "noqa the site when exact equality is the semantics (e.g. "
                "the Eq. (12) degeneracy check on exact 0/1 probability mass)"
            ),
            # The test-suite's whole job is asserting bitwise seed-for-seed
            # parity, so exact equality there is intentional.
            exempt_globs=("tests/*",),
        ),
        Rule(
            id=PARALLEL_SAFETY,
            summary="process-pool tasks must be module-level, seed-carrying callables",
            rationale=(
                "parallel == serial only holds when workers receive picklable "
                "top-level functions and integer seeds; lambdas/closures fail "
                "to pickle and shipped Generator objects fork their streams"
            ),
        ),
        Rule(
            id=MUTABLE_STATE,
            summary="no mutable default args; no undeclared in-place writes in hot paths",
            rationale=(
                "mutable defaults are cross-call shared state, and silent "
                "mutation of array arguments in mapping/ and ce/ hot paths "
                "breaks the run-in-any-order property parallel dispatch needs; "
                "declare in-place contracts in the docstring or an out= param"
            ),
        ),
        Rule(
            id=BUDGET_DISCIPLINE,
            summary="search loops must charge cost evaluations to an EvaluationBudget",
            rationale=(
                "the Table 1/3 head-to-head claims only hold under matched "
                "effort; a while/for loop that calls the cost model without "
                "EvaluationBudget.charge spends evaluations the budget cannot "
                "see, so budget-capped comparisons silently over-run; charge "
                "the aggregated probe count in the same function, or noqa "
                "with a justification for loops outside the mapping runtime"
            ),
            only_globs=("repro/ce/*", "repro/baselines/*"),
        ),
        Rule(
            id=KERNEL_DISCIPLINE,
            summary="compiled-kernel access only through repro.kernels",
            rationale=(
                "the bit-exactness contract (numpy == numba == C, golden "
                "fixtures invariant under REPRO_KERNEL) is enforced at the "
                "repro.kernels dispatch boundary; a numba import, @njit "
                "decoration, or ctypes CDLL elsewhere creates a compiled "
                "path the parity matrix never tests and that breaks "
                "environments without the optional toolchain"
            ),
            exempt_globs=("repro/kernels/*",),
        ),
        Rule(
            id=PARSE_ERROR,
            summary="file could not be parsed",
            rationale="a file that does not parse cannot be verified at all",
        ),
    )
}

#: Selectable rule ids (excludes the parse-error pseudo-rule).
RULE_IDS: tuple[str, ...] = tuple(r for r in RULES if r != PARSE_ERROR)
