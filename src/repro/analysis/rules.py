"""Rule registry for the determinism & parallel-safety linter.

Each rule guards one invariant that the reproduction's headline claims
(seed-for-seed multi-chain parity, parallel == serial experiment results,
the 30-run ANOVA study) depend on. Rules carry their own default path
exemptions: e.g. wall-clock reads are the whole point of
``repro.utils.timing``, and the test suite asserts *bitwise* seed-for-seed
reproducibility, so exact float equality is the point there, not a bug.

Two rule families share this registry: the per-file AST checkers
(:mod:`repro.analysis.checkers`) and the whole-program flow rules
(:mod:`repro.analysis.flow`). Flow rules see the call graph, so their
exemptions mark *sanctioned boundaries* — the execution fabric itself may
read monotonic clocks for liveness, the solver registry is an idempotent
per-process cache — rather than "places we don't look".

Paths are matched with :func:`fnmatch.fnmatch` against ``/``-normalized
paths; every pattern is also tried with a ``*/`` prefix so configuration
can say ``repro/utils/timing.py`` regardless of whether files are linted
as ``src/repro/...`` or via an absolute path.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch

__all__ = [
    "Rule",
    "RULES",
    "RULE_IDS",
    "FLOW_RULE_IDS",
    "path_matches",
    "SEED_DISCIPLINE",
    "WALLCLOCK",
    "FLOAT_EQUALITY",
    "PARALLEL_SAFETY",
    "MUTABLE_STATE",
    "KERNEL_DISCIPLINE",
    "RUN_DISCIPLINE",
    "RNG_PROVENANCE",
    "SHM_LIFECYCLE",
    "BUDGET_FLOW",
    "WORKER_PURITY",
    "PARSE_ERROR",
]

SEED_DISCIPLINE = "seed-discipline"
WALLCLOCK = "wallclock"
FLOAT_EQUALITY = "float-equality"
PARALLEL_SAFETY = "parallel-safety"
MUTABLE_STATE = "mutable-state"
KERNEL_DISCIPLINE = "kernel-discipline"
RUN_DISCIPLINE = "run-discipline"
# Whole-program flow rules (repro.analysis.flow).
RNG_PROVENANCE = "rng-provenance"
SHM_LIFECYCLE = "shm-lifecycle"
BUDGET_FLOW = "budget-flow"
WORKER_PURITY = "worker-purity"
#: Pseudo-rule for files the linter cannot parse; not suppressible.
PARSE_ERROR = "parse-error"


def path_matches(path: str, patterns: tuple[str, ...]) -> bool:
    """True if ``path`` (``/``-separated) matches any of ``patterns``."""
    norm = path.replace("\\", "/")
    return any(fnmatch(norm, p) or fnmatch(norm, "*/" + p) for p in patterns)


@dataclass(frozen=True)
class Rule:
    """Metadata for one checker: id, docs, and default path exemptions."""

    id: str
    summary: str
    rationale: str
    #: Files where the whole rule is off by default (see module docstring).
    exempt_globs: tuple[str, ...] = ()
    #: True for the whole-program rules run under ``repro-lint --flow``.
    flow: bool = False

    def is_exempt(self, path: str) -> bool:
        return path_matches(path, self.exempt_globs)


RULES: dict[str, Rule] = {
    r.id: r
    for r in (
        Rule(
            id=SEED_DISCIPLINE,
            summary="all randomness must flow through repro.utils.rng seed streams",
            rationale=(
                "stdlib random and numpy's legacy global-state API are hidden "
                "global state; Generators built outside repro.utils.rng escape "
                "the SeedSequence spawn tree that makes whole tables "
                "replayable from one integer"
            ),
            # Generator *construction* is additionally allowed in tests,
            # benchmarks and examples (fixed-seed fixtures); that carve-out
            # lives in the checker, not here — legacy global-state calls are
            # banned everywhere.
        ),
        Rule(
            id=WALLCLOCK,
            summary="no wall-clock reads outside repro.utils.timing",
            rationale=(
                "timestamps that reach result records make reported numbers "
                "run-dependent; all MT measurements go through Stopwatch so "
                "results carry time only where the paper's tables expect it"
            ),
            exempt_globs=(
                "repro/utils/timing.py",
                "benchmarks/*",
                "examples/*",
            ),
        ),
        Rule(
            id=FLOAT_EQUALITY,
            summary="no == / != between float-valued expressions",
            rationale=(
                "exact float comparison silently changes behaviour across "
                "BLAS builds and vectorization paths; use tolerances, or "
                "noqa the site when exact equality is the semantics (e.g. "
                "the Eq. (12) degeneracy check on exact 0/1 probability mass)"
            ),
            # The test-suite's whole job is asserting bitwise seed-for-seed
            # parity, so exact equality there is intentional.
            exempt_globs=("tests/*",),
        ),
        Rule(
            id=PARALLEL_SAFETY,
            summary="process-pool tasks must be module-level, seed-carrying callables",
            rationale=(
                "parallel == serial only holds when workers receive picklable "
                "top-level functions and integer seeds; lambdas/closures fail "
                "to pickle and shipped Generator objects fork their streams"
            ),
        ),
        Rule(
            id=MUTABLE_STATE,
            summary="no mutable default args; no undeclared in-place writes in hot paths",
            rationale=(
                "mutable defaults are cross-call shared state, and silent "
                "mutation of array arguments in mapping/ and ce/ hot paths "
                "breaks the run-in-any-order property parallel dispatch needs; "
                "declare in-place contracts in the docstring or an out= param"
            ),
        ),
        Rule(
            id=KERNEL_DISCIPLINE,
            summary="compiled-kernel access only through repro.kernels",
            rationale=(
                "the bit-exactness contract (numpy == numba == C, golden "
                "fixtures invariant under REPRO_KERNEL) is enforced at the "
                "repro.kernels dispatch boundary; a numba/cffi/Cython/cppyy "
                "import, @njit decoration, or ctypes/CDLL load elsewhere "
                "creates a compiled path the parity matrix never tests and "
                "that breaks environments without the optional toolchain"
            ),
            exempt_globs=("repro/kernels/*",),
        ),
        Rule(
            id=RUN_DISCIPLINE,
            summary="experiments/benches must write results through the run-store",
            rationale=(
                "a result file written with a bare json.dump or "
                "open(..., 'w') carries no manifest — no git SHA, env "
                "surface, kernel backend, or seeds — so the numbers it holds "
                "cannot be attributed or replayed; run-producing layers "
                "(repro/experiments, repro/service, benchmarks) must route "
                "output through repro.runstore (RunStore/RunHandle/"
                "BenchResult), which is where provenance is attached"
            ),
            # The rule only *applies* inside the run-producing layers; the
            # positive scoping (experiments/ + service/ + benchmarks/) lives
            # in the checker, since exempt_globs can only subtract.
        ),
        Rule(
            id=RNG_PROVENANCE,
            summary="dispatched/solver code must seed Generators from the per-cell stream",
            rationale=(
                "parallel == serial and salvage-replay identity require every "
                "worker draw to come from the cell's (seed, chain) stream; a "
                "Generator seeded from module state, a literal, or ambient "
                "entropy anywhere in the dispatched call chain couples cells "
                "or collapses them onto one stream — flow analysis tracks the "
                "seed back through assignments and call chains to prove "
                "provenance"
            ),
            # The generator factory itself, and leaf code with fixed-seed
            # fixtures, build Generators by design.
            exempt_globs=(
                "repro/utils/rng.py",
                "tests/*",
                "benchmarks/*",
                "examples/*",
            ),
            flow=True,
        ),
        Rule(
            id=SHM_LIFECYCLE,
            summary="SharedMemory(create=True) must be guarded on every CFG exit path",
            rationale=(
                "a segment whose unlink is skipped on one exception path "
                "outlives the run and poisons later runs on the same host "
                "(the CI leak check would fail); every creation must reach "
                "unlink(), a weakref.finalize guard, or transfer ownership "
                "(return/store/pass the segment) on all paths to the exit"
            ),
            flow=True,
        ),
        Rule(
            id=BUDGET_FLOW,
            summary="solver-reachable cost probes must be charge-covered on their path",
            rationale=(
                "the Table 1/3 head-to-head claims only hold under matched "
                "effort; a cost-model probe reachable from a SearchSolver "
                "start/step/finalize must be dominated or post-dominated by "
                "an EvaluationBudget.charge() — otherwise some path spends "
                "evaluations the budget cannot see; callees with no budget "
                "access are excused when every call site is charge-covered "
                "in its caller"
            ),
            # The cost model's own implementation (repro/mapping) IS the
            # boundary being charged — probes there are the thing itself,
            # not un-accounted consumption.
            exempt_globs=("repro/mapping/*",),
            flow=True,
        ),
        Rule(
            id=WORKER_PURITY,
            summary="fabric-dispatched functions must be pure in (handle, spec, seed)",
            rationale=(
                "worker-count invariance and deterministic salvage replay "
                "hold only if a cell's result is a function of its task "
                "tuple: no wall-clock reads, no ambient RNG, no reads or "
                "writes of mutable module globals anywhere in the dispatched "
                "call chain; the fabric's own liveness plumbing (parallel, "
                "shared_plane, faults, timing) and the idempotent per-process "
                "caches (solver registry, kernel dispatch) are sanctioned "
                "boundaries and exempt by path"
            ),
            exempt_globs=(
                "repro/utils/parallel.py",
                "repro/utils/shared_plane.py",
                "repro/utils/faults.py",
                "repro/utils/timing.py",
                "repro/runtime/registry.py",
                "repro/kernels/*",
                "tests/*",
                "benchmarks/*",
                "examples/*",
            ),
            flow=True,
        ),
        Rule(
            id=PARSE_ERROR,
            summary="file could not be parsed",
            rationale="a file that does not parse cannot be verified at all",
        ),
    )
}

#: Selectable rule ids (excludes the parse-error pseudo-rule).
RULE_IDS: tuple[str, ...] = tuple(r for r in RULES if r != PARSE_ERROR)

#: The whole-program rules run by ``repro-lint --flow``.
FLOW_RULE_IDS: tuple[str, ...] = tuple(r for r in RULE_IDS if RULES[r].flow)
