"""Mapping quality analysis and reporting.

Turns a produced mapping into the quantities a practitioner reads before
trusting it: per-resource load table, compute/communication split, load
imbalance, the gap to the instance's lower bound, and the co-location
structure (which heavy interactions were placed on cheap links).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapping.bounds import combined_lower_bound
from repro.mapping.problem import MappingProblem
from repro.types import AssignmentVector
from repro.utils.tables import format_table

__all__ = ["MappingAnalysis", "analyze_mapping"]


@dataclass(frozen=True)
class MappingAnalysis:
    """All derived quality measures of one mapping."""

    execution_time: float
    lower_bound: float
    per_resource_compute: np.ndarray
    per_resource_comm: np.ndarray
    busiest_resource: int
    imbalance: float  # max / mean of per-resource totals
    comm_fraction: float  # communication share of total work
    edge_link_costs: np.ndarray  # per-TIG-edge unit link cost paid

    @property
    def optimality_gap(self) -> float:
        """``ET / lower_bound`` — 1.0 would be provably optimal.

        The bound is loose in general, so a gap of 2-4× is normal; the
        measure is for *comparing* mappings on the same instance.
        """
        if self.lower_bound <= 0:
            return float("inf")
        return self.execution_time / self.lower_bound

    def render(self) -> str:
        """Printable per-resource load table plus summary lines."""
        totals = self.per_resource_compute + self.per_resource_comm
        rows = []
        for r in range(totals.shape[0]):
            marker = " <- busiest" if r == self.busiest_resource else ""
            rows.append(
                [f"r{r}{marker}", self.per_resource_compute[r],
                 self.per_resource_comm[r], totals[r]]
            )
        table = format_table(
            ["resource", "compute", "comm", "total"],
            rows,
            title="Per-resource execution times (Eq. 1)",
        )
        gap = (
            f"(gap {self.optimality_gap:.2f}x)"
            if self.lower_bound > 0
            else "(n/a for many-to-one instances)"
        )
        summary = (
            f"\nET (Eq. 2)      : {self.execution_time:,.1f}\n"
            f"lower bound     : {self.lower_bound:,.1f} {gap}\n"
            f"imbalance       : {self.imbalance:.3f} (max/mean)\n"
            f"comm share      : {self.comm_fraction:.1%} of total work"
        )
        return table + summary


def analyze_mapping(
    problem: MappingProblem, assignment: AssignmentVector
) -> MappingAnalysis:
    """Compute the full quality analysis of ``assignment`` on ``problem``."""
    x = problem.check_assignment(np.asarray(assignment, dtype=np.int64))
    n_r = problem.n_resources

    comp = np.bincount(
        x, weights=problem.task_weights * problem.proc_weights[x], minlength=n_r
    )
    comm = np.zeros(n_r)
    if problem.edges.size:
        s = x[problem.edges[:, 0]]
        b = x[problem.edges[:, 1]]
        link = problem.edge_weights * problem.comm_costs[s, b]
        comm += np.bincount(s, weights=link, minlength=n_r)
        comm += np.bincount(b, weights=link, minlength=n_r)
        edge_link_costs = problem.comm_costs[s, b]
    else:
        edge_link_costs = np.empty(0)

    totals = comp + comm
    et = float(totals.max())
    total_work = float(totals.sum())
    lb = combined_lower_bound(problem) if problem.n_tasks <= problem.n_resources else 0.0

    return MappingAnalysis(
        execution_time=et,
        lower_bound=lb,
        per_resource_compute=comp,
        per_resource_comm=comm,
        busiest_resource=int(np.argmax(totals)),
        imbalance=float(totals.max() / totals.mean()) if totals.mean() > 0 else 1.0,
        comm_fraction=float(comm.sum() / total_work) if total_work > 0 else 0.0,
        edge_link_costs=edge_link_costs,
    )
