"""Application turnaround time (ATN) accounting — §5.3 / Figure 9.

The paper combines the two costs of scheduling into a single figure of
merit: ``ATN = ET + MT`` where ET is the application execution time of the
produced mapping (Eq. (2), abstract units) and MT is the wall-clock seconds
the heuristic itself consumed. The paper implicitly treats one ET unit as
one second when summing ("the application execution time … is a much larger
quantity in reality"); :class:`TurnaroundRecord` makes that unit bridge an
explicit, adjustable parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TurnaroundRecord"]


@dataclass(frozen=True)
class TurnaroundRecord:
    """ET/MT pair for one heuristic run and its combined turnaround."""

    heuristic: str
    execution_time: float  # ET, abstract cost units
    mapping_time: float  # MT, wall-clock seconds
    seconds_per_unit: float = 1.0  # ET-unit → seconds bridge (paper: 1)

    def __post_init__(self) -> None:
        if self.execution_time < 0 or self.mapping_time < 0:
            raise ValueError("ET and MT must be non-negative")
        if self.seconds_per_unit <= 0:
            raise ValueError(f"seconds_per_unit must be > 0, got {self.seconds_per_unit}")

    @property
    def turnaround(self) -> float:
        """ATN = ET · seconds_per_unit + MT, in seconds."""
        return self.execution_time * self.seconds_per_unit + self.mapping_time

    def speedup_over(self, other: "TurnaroundRecord") -> float:
        """How many times smaller this ATN is than ``other``'s.

        Two zero-turnaround records are equally fast, so 0/0 is defined as
        ``1.0`` (no speedup either way); only a strictly positive ``other``
        against a zero ``self`` yields ``inf``.
        """
        if self.turnaround == 0:
            return 1.0 if other.turnaround == 0 else float("inf")
        return other.turnaround / self.turnaround
