"""Incremental (delta) evaluation of mapping moves.

Local-search style optimizers (hill climbing, simulated annealing, tabu)
probe many single-task *moves* and pairwise *swaps* per accepted change.
Re-running the full Eq. (1) evaluation for each probe costs O(n + E);
:class:`IncrementalEvaluator` maintains the per-resource execution times
and updates only the terms a move touches — O(deg(t)) per probe plus an
O(n_r) max — which is the standard trick that makes neighborhood search
competitive on TIG mapping.

Probes dispatch through the compiled kernel layer
(:mod:`repro.kernels`): the scalar :meth:`~IncrementalEvaluator.move_cost`
/ :meth:`~IncrementalEvaluator.swap_cost` probes and the batched
:meth:`~IncrementalEvaluator.swap_costs` sweep all run the same O(deg)
update the historical pure-Python code performed, in the same float
order, on whichever backend ``REPRO_KERNEL`` resolved — so a compiled
probe is bit-identical to the numpy one. *Applying* a move mutates the
evaluator's own state and stays in Python (it is O(deg), never hot).

The invariant (``exec_s`` always equals the reference Eq. (1) value for
the current assignment) is enforced by property-based tests, which run
under every available backend.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MappingError
from repro.mapping.cost_model import CostModel
from repro.types import AssignmentVector

__all__ = ["IncrementalEvaluator"]


class IncrementalEvaluator:
    """Maintains Eq. (1) per-resource times under moves and swaps.

    Parameters
    ----------
    model:
        The (shared, immutable) cost model of the instance. Its CSR
        :class:`~repro.kernels.ProblemPack` and resolved kernel backend
        are reused, so constructing evaluators is cheap.
    assignment:
        Initial assignment; copied.
    """

    def __init__(self, model: CostModel, assignment: AssignmentVector) -> None:
        self.model = model
        problem = model.problem
        self._x = problem.check_assignment(np.asarray(assignment, dtype=np.int64)).copy()
        self._exec = model.per_resource_times(self._x).astype(np.float64)
        # CSR adjacency over tasks (shared with every evaluator of this
        # model): neighbors of t are _nbr[_off[t]:_off[t+1]] with volumes
        # _vol[...], in historical append order (see kernels/csr.py).
        self._pack = model.pack
        self._kernel = model._kernel
        self._off = self._pack.off
        self._nbr = self._pack.nbr
        self._vol = self._pack.nbr_vol

    # -- read access -------------------------------------------------------------
    @property
    def assignment(self) -> np.ndarray:
        """Copy of the current assignment vector."""
        return self._x.copy()

    @property
    def per_resource_times(self) -> np.ndarray:
        """Copy of the current Eq. (1) per-resource times."""
        return self._exec.copy()

    @property
    def current_cost(self) -> float:
        """Current Eq. (2) application execution time."""
        return float(self._exec.max())

    # -- move machinery ------------------------------------------------------------
    def _apply_move(self, exec_s: np.ndarray, x: np.ndarray, task: int, dest: int) -> None:
        """In-place: relocate ``task`` to ``dest`` updating ``exec_s`` and ``x``."""
        problem = self.model.problem
        W = problem.task_weights
        w = problem.proc_weights
        ccm = problem.comm_costs
        src = x[task]
        if src == dest:
            return
        exec_s[src] -= W[task] * w[src]
        exec_s[dest] += W[task] * w[dest]
        lo, hi = self._off[task], self._off[task + 1]
        for k in range(lo, hi):
            a = self._nbr[k]
            c_vol = self._vol[k]
            m = x[a]
            if m != src:
                exec_s[src] -= c_vol * ccm[src, m]
                exec_s[m] -= c_vol * ccm[m, src]
            if m != dest:
                exec_s[dest] += c_vol * ccm[dest, m]
                exec_s[m] += c_vol * ccm[m, dest]
        x[task] = dest

    # -- public operations -----------------------------------------------------------
    def move_cost(self, task: int, dest: int) -> float:
        """Eq. (2) cost if ``task`` were moved to ``dest`` (no state change)."""
        self._check_task(task)
        self._check_resource(dest)
        return self._kernel.move_cost(self._pack, self._exec, self._x, int(task), int(dest))

    def apply_move(self, task: int, dest: int) -> float:
        """Relocate ``task`` to ``dest``; returns the new cost."""
        self._check_task(task)
        self._check_resource(dest)
        self._apply_move(self._exec, self._x, task, dest)
        return self.current_cost

    def swap_cost(self, t1: int, t2: int) -> float:
        """Eq. (2) cost if tasks ``t1`` and ``t2`` exchanged resources."""
        self._check_task(t1)
        self._check_task(t2)
        return self._kernel.swap_cost(self._pack, self._exec, self._x, int(t1), int(t2))

    def swap_costs(self, pairs: np.ndarray) -> np.ndarray:
        """Batched :meth:`swap_cost`: one kernel call for ``(K, 2)`` pairs.

        ``out[p]`` is bit-identical to ``swap_cost(*pairs[p])``; the
        sweep-based searches (local search, tabu, CE elite refinement)
        use this to amortize per-probe dispatch overhead while keeping
        their historical sequential selection semantics (they pick from
        ``out`` exactly as the probe-by-probe loop did).
        """
        pairs = np.ascontiguousarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or (pairs.size and pairs.shape[1] != 2):
            raise MappingError(f"pairs must have shape (K, 2), got {pairs.shape}")
        if pairs.size == 0:
            return np.empty(0, dtype=np.float64)
        n_t = self.model.problem.n_tasks
        if pairs.min() < 0 or pairs.max() >= n_t:
            raise MappingError("pairs contain out-of-range task indices")
        return self._kernel.swap_costs(self._pack, self._exec, self._x, pairs)

    def apply_swap(self, t1: int, t2: int) -> float:
        """Exchange the resources of ``t1`` and ``t2``; returns the new cost."""
        self._check_task(t1)
        self._check_task(t2)
        s1, s2 = self._x[t1], self._x[t2]
        self._apply_move(self._exec, self._x, t1, s2)
        self._apply_move(self._exec, self._x, t2, s1)
        return self.current_cost

    def resync(self) -> None:
        """Recompute the per-resource times from scratch (drift guard)."""
        self._exec = self.model.per_resource_times(self._x).astype(np.float64)

    # -- checkpoint support --------------------------------------------------------
    def export_state(self) -> dict:
        """JSON-able snapshot of the live state (assignment + delta-maintained times).

        The per-resource times are serialized verbatim rather than recomputed
        on restore: ``_exec`` is delta-maintained, so a fresh Eq. (1) pass can
        differ from the accumulated floats in the last ulps — enough to flip a
        ``cost < current - 1e-12`` comparison and desynchronize a resumed
        search from the uninterrupted one.
        """
        return {"assignment": self._x.tolist(), "exec": self._exec.tolist()}

    @classmethod
    def from_state(cls, model: CostModel, state: dict) -> "IncrementalEvaluator":
        """Rebuild an evaluator mid-run from :meth:`export_state` output."""
        inc = cls(model, np.asarray(state["assignment"], dtype=np.int64))
        exec_s = np.asarray(state["exec"], dtype=np.float64)
        if exec_s.shape != inc._exec.shape:
            raise MappingError(
                f"checkpointed per-resource times have shape {exec_s.shape}, "
                f"expected {inc._exec.shape}"
            )
        inc._exec = exec_s
        return inc

    # -- checks --------------------------------------------------------------------
    def _check_task(self, task: int) -> None:
        if not 0 <= task < self.model.problem.n_tasks:
            raise MappingError(f"task {task} out of range")

    def _check_resource(self, resource: int) -> None:
        if not 0 <= resource < self.model.problem.n_resources:
            raise MappingError(f"resource {resource} out of range")
