"""The execution-time cost model — Eqs. (1) and (2) of the paper.

For a mapping ``M`` (``assignment[t] = s`` meaning task ``v_t`` runs on
resource ``r_s``):

* per-resource execution time, Eq. (1)::

      Exec_s = Σ_{t → s} W_t · w_s
             + Σ_{t → s} Σ_{a ~ t, a → b, b ≠ s} C^{t,a} · c_{s,b}

* application execution time, Eq. (2)::

      Exec = max_s Exec_s

Two implementations are provided and cross-validated in the test suite:

* :func:`evaluate_reference` — direct nested loops transcribing Eq. (1),
  used as the executable specification;
* :class:`CostModel` — a fully vectorized evaluator whose
  :meth:`CostModel.evaluate_batch` scores thousands of candidate mappings
  per call with numpy gathers and ``bincount`` scatter-adds. One CE
  iteration at ``n = 50`` evaluates ``N = 2·50² = 5000`` mappings; this is
  the library's hot path (see the hpc guide note in
  :mod:`repro.graphs.base`).
"""

from __future__ import annotations

import numpy as np

from repro.mapping.problem import MappingProblem
from repro.types import AssignmentBatch, AssignmentVector, CostVector, as_assignment_batch
from repro.utils.dedup import DedupStats, collapse_duplicate_rows

__all__ = ["evaluate_reference", "per_resource_times_reference", "CostModel"]


def per_resource_times_reference(
    problem: MappingProblem, assignment: AssignmentVector
) -> np.ndarray:
    """Eq. (1) computed with explicit loops — the executable specification.

    Intentionally unoptimized; every vectorized path must agree with this
    to machine precision.
    """
    x = problem.check_assignment(assignment)
    n_r = problem.n_resources
    W = problem.task_weights
    w = problem.proc_weights
    C = problem.edge_weights
    ccm = problem.comm_costs
    exec_s = np.zeros(n_r, dtype=np.float64)

    # Processing term: Σ_{t -> s} W_t * w_s.
    for t in range(problem.n_tasks):
        s = x[t]
        exec_s[s] += W[t] * w[s]

    # Communication term: every interacting pair on distinct resources
    # charges both endpoints' resources.
    for e in range(problem.edges.shape[0]):
        t, a = problem.edges[e]
        s, b = x[t], x[a]
        if s != b:
            exec_s[s] += C[e] * ccm[s, b]
            exec_s[b] += C[e] * ccm[b, s]
    return exec_s


def evaluate_reference(problem: MappingProblem, assignment: AssignmentVector) -> float:
    """Eq. (2) via the reference Eq. (1) loop implementation."""
    return float(per_resource_times_reference(problem, assignment).max())


class CostModel:
    """Vectorized evaluator of the paper's cost model for a fixed problem.

    The constructor snapshots the problem's flat arrays; evaluation methods
    are pure functions of the assignment argument, so one ``CostModel`` can
    be shared by every optimizer attacking the same instance (the only
    mutable state is the :attr:`dedup_stats` diagnostics counter, which
    never influences returned costs).
    """

    __slots__ = (
        "problem", "_W", "_w", "_C", "_ccm", "_ccm_flat", "_eu", "_ev",
        "_n_r", "_n_t", "dedup_stats",
    )

    def __init__(self, problem: MappingProblem) -> None:
        self.problem = problem
        self._W = problem.task_weights
        self._w = problem.proc_weights
        self._C = problem.edge_weights
        self._ccm = problem.comm_costs
        self._ccm_flat = np.ascontiguousarray(problem.comm_costs).ravel()
        self._eu = problem.edges[:, 0] if problem.edges.size else np.empty(0, dtype=np.int64)
        self._ev = problem.edges[:, 1] if problem.edges.size else np.empty(0, dtype=np.int64)
        self._n_r = problem.n_resources
        self._n_t = problem.n_tasks
        self.dedup_stats = DedupStats()

    # -- single-assignment API ----------------------------------------------
    def per_resource_times(self, assignment: AssignmentVector) -> np.ndarray:
        """Vectorized Eq. (1): per-resource execution times for one mapping."""
        x = self.problem.check_assignment(assignment)
        exec_s = np.bincount(x, weights=self._W * self._w[x], minlength=self._n_r)
        if self._eu.size:
            s = x[self._eu]
            b = x[self._ev]
            link = self._C * self._ccm[s, b]  # 0 where s == b (zero diagonal)
            exec_s += np.bincount(s, weights=link, minlength=self._n_r)
            exec_s += np.bincount(b, weights=link, minlength=self._n_r)
        return exec_s

    def evaluate(self, assignment: AssignmentVector) -> float:
        """Eq. (2): the application execution time of one mapping."""
        return float(self.per_resource_times(assignment).max())

    # -- batch API -------------------------------------------------------------
    def _times_block(self, X: np.ndarray) -> np.ndarray:
        """Eq. (1) for one block of rows: returns ``(N, n_resources)`` times.

        Strategy: flatten the (row, resource) bucket space to
        ``row * n_r + resource`` and use a single ``bincount`` scatter-add
        per term — no Python-level loop over samples.
        """
        N = X.shape[0]
        n_r = self._n_r
        row_offsets = (np.arange(N, dtype=np.int64) * n_r)[:, np.newaxis]

        # Processing term.
        comp_w = self._W[np.newaxis, :] * self._w[X]  # (N, n_t)
        flat_proc = (row_offsets + X).ravel()
        totals = np.bincount(flat_proc, weights=comp_w.ravel(), minlength=N * n_r)

        # Communication term (both endpoint resources pay). The cost matrix
        # lookup goes through a flat 1-D take (``s·n_r + b``) rather than a
        # 2-D fancy index — same values, substantially cheaper per element.
        if self._eu.size:
            s = X[:, self._eu]  # (N, E)
            b = X[:, self._ev]  # (N, E)
            link = self._C[np.newaxis, :] * np.take(
                self._ccm_flat, s * n_r + b, mode="clip"
            )
            totals += np.bincount(
                (row_offsets + s).ravel(), weights=link.ravel(), minlength=N * n_r
            )
            totals += np.bincount(
                (row_offsets + b).ravel(), weights=link.ravel(), minlength=N * n_r
            )
        return totals.reshape(N, n_r)

    def per_resource_times_batch(self, assignments: AssignmentBatch) -> np.ndarray:
        """Eq. (1) for a whole batch: returns ``(N, n_resources)`` times.

        Large batches are processed in row blocks sized so the ``(N, E)``
        link intermediates stay a couple of MB: past the cache the fused
        pass turns memory-bound and goes *superlinear* in ``N`` (measured
        on a 352-edge, n = 50 instance: 20 000 rows cost 0.45 s in one
        pass vs 0.11 s in 1 000-row blocks). Block boundaries cannot
        change any value — every term is row-local.
        """
        X = as_assignment_batch(assignments)
        if X.shape[1] != self._n_t:
            raise ValueError(f"batch must have {self._n_t} columns, got {X.shape[1]}")
        if X.size and (X.min() < 0 or X.max() >= self._n_r):
            raise ValueError("batch contains out-of-range resource indices")
        N = X.shape[0]
        widest = max(int(self._eu.size), self._n_t, 1)
        block = max(512, 262_144 // widest)
        if N <= block:
            return self._times_block(X)
        out = np.empty((N, self._n_r))
        for start in range(0, N, block):
            out[start : start + block] = self._times_block(X[start : start + block])
        return out

    def evaluate_batch(self, assignments: AssignmentBatch) -> CostVector:
        """Eq. (2) for a whole batch: one cost per row (lower is better)."""
        return self.per_resource_times_batch(assignments).max(axis=1)

    def evaluate_batch_dedup(self, assignments: AssignmentBatch) -> CostVector:
        """Eq. (2) for a batch, collapsing duplicate rows before scoring.

        Exact: duplicate rows receive the identical float computed for
        their unique representative (the cost model is a pure row-wise
        function). Each call records the batch's collapse on
        :attr:`dedup_stats`, whose ``hit_rate`` exposes the fraction of
        rows the collapse avoided scoring.
        """
        X = as_assignment_batch(assignments)
        unique_rows, inverse = collapse_duplicate_rows(X, self._n_r)
        self.dedup_stats.record(X.shape[0], unique_rows.shape[0])
        return self.evaluate_batch(unique_rows)[inverse]

    # -- diagnostics -------------------------------------------------------------
    def breakdown(self, assignment: AssignmentVector) -> dict[str, float]:
        """Cost decomposition for reporting: compute vs. communication share."""
        x = self.problem.check_assignment(assignment)
        comp = np.bincount(x, weights=self._W * self._w[x], minlength=self._n_r)
        comm = np.zeros(self._n_r)
        if self._eu.size:
            s = x[self._eu]
            b = x[self._ev]
            link = self._C * self._ccm[s, b]
            comm += np.bincount(s, weights=link, minlength=self._n_r)
            comm += np.bincount(b, weights=link, minlength=self._n_r)
        total = comp + comm
        busiest = int(np.argmax(total))
        return {
            "execution_time": float(total.max()),
            "busiest_resource": busiest,
            "busiest_compute": float(comp[busiest]),
            "busiest_comm": float(comm[busiest]),
            "total_compute": float(comp.sum()),
            "total_comm": float(comm.sum()),
            "mean_resource_time": float(total.mean()),
            "imbalance": float(total.max() / total.mean()) if total.mean() > 0 else 1.0,
        }
