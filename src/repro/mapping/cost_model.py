"""The execution-time cost model — Eqs. (1) and (2) of the paper.

For a mapping ``M`` (``assignment[t] = s`` meaning task ``v_t`` runs on
resource ``r_s``):

* per-resource execution time, Eq. (1)::

      Exec_s = Σ_{t → s} W_t · w_s
             + Σ_{t → s} Σ_{a ~ t, a → b, b ≠ s} C^{t,a} · c_{s,b}

* application execution time, Eq. (2)::

      Exec = max_s Exec_s

Two implementations are provided and cross-validated in the test suite:

* :func:`evaluate_reference` — direct nested loops transcribing Eq. (1),
  used as the executable specification;
* :class:`CostModel` — the production evaluator. Its batch methods
  dispatch through :mod:`repro.kernels` (DESIGN.md §11): the problem is
  snapshotted once into a CSR-packed :class:`~repro.kernels.ProblemPack`
  and scored by whichever backend ``REPRO_KERNEL`` selected — numba JIT,
  the on-demand-compiled C kernels, or the vectorized numpy reference.
  All backends are bit-identical (the cross-backend parity suite pins
  them against each other and against :func:`evaluate_reference`), so
  the choice affects throughput only. One CE iteration at ``n = 50``
  evaluates ``N = 2·50² = 5000`` mappings; this is the library's hot
  path (see the hpc guide note in :mod:`repro.graphs.base`).
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.mapping.problem import MappingProblem
from repro.types import AssignmentBatch, AssignmentVector, CostVector, as_assignment_batch
from repro.utils.dedup import DedupStats, collapse_duplicate_rows

__all__ = [
    "evaluate_reference",
    "per_resource_times_reference",
    "CostModel",
    "DEDUP_MIN_CELLS",
]

#: Minimum batch area (``rows · n_tasks``) for the dedup collapse to pay.
#: Below this the Horner packing + ``np.unique`` overhead exceeds the
#: scoring it saves — measured on the bench instances: the n=10 CE batch
#: (200 × 10 = 2 000 cells) ran at 0.94× with unconditional dedup while
#: n=50 (5 000 × 50 = 250 000 cells) enjoys 1.36×; the crossover sits
#: around a few tens of thousands of cells on current hardware.
DEDUP_MIN_CELLS = 32_768


def per_resource_times_reference(
    problem: MappingProblem, assignment: AssignmentVector
) -> np.ndarray:
    """Eq. (1) computed with explicit loops — the executable specification.

    Intentionally unoptimized; every vectorized path must agree with this
    to machine precision.
    """
    x = problem.check_assignment(assignment)
    n_r = problem.n_resources
    W = problem.task_weights
    w = problem.proc_weights
    C = problem.edge_weights
    ccm = problem.comm_costs
    exec_s = np.zeros(n_r, dtype=np.float64)

    # Processing term: Σ_{t -> s} W_t * w_s.
    for t in range(problem.n_tasks):
        s = x[t]
        exec_s[s] += W[t] * w[s]

    # Communication term: every interacting pair on distinct resources
    # charges both endpoints' resources.
    for e in range(problem.edges.shape[0]):
        t, a = problem.edges[e]
        s, b = x[t], x[a]
        if s != b:
            exec_s[s] += C[e] * ccm[s, b]
            exec_s[b] += C[e] * ccm[b, s]
    return exec_s


def evaluate_reference(problem: MappingProblem, assignment: AssignmentVector) -> float:
    """Eq. (2) via the reference Eq. (1) loop implementation."""
    return float(per_resource_times_reference(problem, assignment).max())


class CostModel:
    """Kernel-dispatched evaluator of the paper's cost model for a fixed problem.

    The constructor snapshots the problem into a CSR
    :class:`~repro.kernels.ProblemPack` and resolves the process-active
    kernel backend once; evaluation methods are pure functions of the
    assignment argument, so one ``CostModel`` can be shared by every
    optimizer attacking the same instance (the only mutable state is the
    :attr:`dedup_stats` diagnostics counter, which never influences
    returned costs).
    """

    __slots__ = ("problem", "pack", "_kernel", "_W", "_w", "_C", "_ccm",
                 "_eu", "_ev", "_n_r", "_n_t", "dedup_stats")

    def __init__(self, problem: MappingProblem) -> None:
        self.problem = problem
        self.pack = kernels.build_pack(problem)
        self._kernel = kernels.get_backend()
        self._W = problem.task_weights
        self._w = problem.proc_weights
        self._C = problem.edge_weights
        self._ccm = problem.comm_costs
        self._eu = self.pack.eu
        self._ev = self.pack.ev
        self._n_r = problem.n_resources
        self._n_t = problem.n_tasks
        self.dedup_stats = DedupStats()

    @property
    def kernel_name(self) -> str:
        """Name of the kernel backend this model dispatches to."""
        return self._kernel.name

    # -- single-assignment API ----------------------------------------------
    def per_resource_times(self, assignment: AssignmentVector) -> np.ndarray:
        """Vectorized Eq. (1): per-resource execution times for one mapping."""
        x = self.problem.check_assignment(assignment)
        exec_s = np.bincount(x, weights=self._W * self._w[x], minlength=self._n_r)
        if self._eu.size:
            s = x[self._eu]
            b = x[self._ev]
            link = self._C * self._ccm[s, b]  # 0 where s == b (zero diagonal)
            exec_s += np.bincount(s, weights=link, minlength=self._n_r)
            exec_s += np.bincount(b, weights=link, minlength=self._n_r)
        return exec_s

    def evaluate(self, assignment: AssignmentVector) -> float:
        """Eq. (2): the application execution time of one mapping."""
        return float(self.per_resource_times(assignment).max())

    # -- batch API -------------------------------------------------------------
    def _check_batch(self, assignments: AssignmentBatch) -> np.ndarray:
        X = as_assignment_batch(assignments)
        if X.shape[1] != self._n_t:
            raise ValueError(f"batch must have {self._n_t} columns, got {X.shape[1]}")
        if X.size and (X.min() < 0 or X.max() >= self._n_r):
            raise ValueError("batch contains out-of-range resource indices")
        return X

    def _times_block(self, X: np.ndarray) -> np.ndarray:
        """Eq. (1) for one (pre-validated) block via the kernel backend."""
        return self._kernel.times_batch(self.pack, X)

    def per_resource_times_batch(self, assignments: AssignmentBatch) -> np.ndarray:
        """Eq. (1) for a whole batch: returns ``(N, n_resources)`` times.

        Dispatches to the resolved kernel backend; the numpy backend
        internally processes large batches in cache-sized row blocks
        (block boundaries cannot change any value — every term is
        row-local), the compiled backends stream row by row.
        """
        return self._kernel.times_batch(self.pack, self._check_batch(assignments))

    def evaluate_batch(self, assignments: AssignmentBatch) -> CostVector:
        """Eq. (2) for a whole batch: one cost per row (lower is better)."""
        return self._kernel.eval_batch(self.pack, self._check_batch(assignments))

    def evaluate_batch_dedup(self, assignments: AssignmentBatch) -> CostVector:
        """Eq. (2) for a batch, collapsing duplicate rows before scoring.

        Exact: duplicate rows receive the identical float computed for
        their unique representative (the cost model is a pure row-wise
        function). Small batches (area below :data:`DEDUP_MIN_CELLS`)
        bypass the collapse entirely — the packing overhead outruns the
        savings there (the measured n=10 regression) — and the bypass is
        recorded on :attr:`dedup_stats` so diagnostics can tell "no
        duplicates found" from "did not look".
        """
        X = as_assignment_batch(assignments)
        if X.shape[0] * self._n_t < DEDUP_MIN_CELLS:
            self.dedup_stats.record_bypass(X.shape[0])
            return self.evaluate_batch(X)
        unique_rows, inverse = collapse_duplicate_rows(X, self._n_r)
        self.dedup_stats.record(X.shape[0], unique_rows.shape[0])
        return self.evaluate_batch(unique_rows)[inverse]

    # -- diagnostics -------------------------------------------------------------
    def breakdown(self, assignment: AssignmentVector) -> dict[str, float]:
        """Cost decomposition for reporting: compute vs. communication share."""
        x = self.problem.check_assignment(assignment)
        comp = np.bincount(x, weights=self._W * self._w[x], minlength=self._n_r)
        comm = np.zeros(self._n_r)
        if self._eu.size:
            s = x[self._eu]
            b = x[self._ev]
            link = self._C * self._ccm[s, b]
            comm += np.bincount(s, weights=link, minlength=self._n_r)
            comm += np.bincount(b, weights=link, minlength=self._n_r)
        total = comp + comm
        busiest = int(np.argmax(total))
        return {
            "execution_time": float(total.max()),
            "busiest_resource": busiest,
            "busiest_compute": float(comp[busiest]),
            "busiest_comm": float(comm[busiest]),
            "total_compute": float(comp.sum()),
            "total_comm": float(comm.sum()),
            "mean_resource_time": float(total.mean()),
            "imbalance": float(total.max() / total.mean()) if total.mean() > 0 else 1.0,
        }
