"""The :class:`Mapping` value object: one concrete task→resource assignment.

Optimizers internally shuffle raw assignment vectors for speed; at their
API boundary they return a :class:`Mapping`, which pins the vector to its
problem, validates it once, caches its cost, and offers the inverse views
(which tasks a resource hosts) that examples and reports need.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MappingError
from repro.mapping.cost_model import CostModel
from repro.mapping.problem import MappingProblem
from repro.types import AssignmentVector

__all__ = ["Mapping"]


class Mapping:
    """An immutable task→resource assignment for a specific problem."""

    __slots__ = ("problem", "_assignment", "_cost")

    def __init__(self, problem: MappingProblem, assignment: AssignmentVector) -> None:
        self.problem = problem
        arr = problem.check_assignment(np.asarray(assignment, dtype=np.int64))
        arr = arr.copy()
        arr.setflags(write=False)
        self._assignment = arr
        self._cost: float | None = None

    # -- views -----------------------------------------------------------------
    @property
    def assignment(self) -> np.ndarray:
        """Read-only assignment vector; ``assignment[t]`` is task t's resource."""
        return self._assignment

    def resource_of(self, task: int) -> int:
        """Resource index hosting ``task``."""
        if not 0 <= task < self.problem.n_tasks:
            raise MappingError(f"task {task} out of range [0, {self.problem.n_tasks - 1}]")
        return int(self._assignment[task])

    def tasks_on(self, resource: int) -> np.ndarray:
        """Sorted task indices mapped to ``resource``."""
        if not 0 <= resource < self.problem.n_resources:
            raise MappingError(
                f"resource {resource} out of range [0, {self.problem.n_resources - 1}]"
            )
        return np.flatnonzero(self._assignment == resource)

    def is_one_to_one(self) -> bool:
        """True iff no two tasks share a resource."""
        return self.problem.is_one_to_one(self._assignment)

    # -- cost -----------------------------------------------------------------
    def cost(self, model: CostModel | None = None) -> float:
        """Application execution time Eq. (2); cached after first call."""
        if self._cost is None:
            model = model if model is not None else CostModel(self.problem)
            if model.problem is not self.problem:
                raise MappingError("cost model belongs to a different problem instance")
            self._cost = model.evaluate(self._assignment)
        return self._cost

    # -- dunder ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self.problem is other.problem and np.array_equal(
            self._assignment, other._assignment
        )

    def __hash__(self) -> int:
        return hash((id(self.problem), self._assignment.tobytes()))

    def __repr__(self) -> str:
        cost = f", cost={self._cost:.6g}" if self._cost is not None else ""
        return f"Mapping(n_tasks={self.problem.n_tasks}{cost})"
