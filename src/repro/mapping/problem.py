"""The mapping problem instance: a TIG coupled to a resource graph.

:class:`MappingProblem` validates the pair, pre-extracts the flat arrays
the vectorized cost model consumes (task weights, interaction edge list,
processing weights, closed communication-cost matrix) and caches them, so
that every optimizer in the library evaluates candidates against the same
immutable numeric view of the instance.
"""

from __future__ import annotations

from typing import Mapping as TypingMapping

import numpy as np

from repro.exceptions import MappingError, ValidationError
from repro.graphs.resource_graph import ResourceGraph
from repro.graphs.task_graph import TaskInteractionGraph
from repro.types import AssignmentVector

__all__ = ["MappingProblem"]


class MappingProblem:
    """An instance of the heterogeneous mapping problem of §2.

    Parameters
    ----------
    tig:
        The application's Task Interaction Graph.
    resources:
        The heterogeneous resource graph.
    require_square:
        If True (the paper's setting), enforce ``|V_t| == |V_r|``.

    Attributes
    ----------
    task_weights:
        ``(n_tasks,)`` computation weights ``W_t``.
    proc_weights:
        ``(n_resources,)`` processing costs ``w_s``.
    comm_costs:
        ``(n_resources, n_resources)`` closed per-unit communication cost
        matrix ``c_{s,b}`` with zero diagonal.
    edges / edge_weights:
        The TIG interaction edges and volumes ``C^{t,a}``.
    """

    __slots__ = (
        "tig",
        "resources",
        "task_weights",
        "proc_weights",
        "comm_costs",
        "edges",
        "edge_weights",
    )

    def __init__(
        self,
        tig: TaskInteractionGraph,
        resources: ResourceGraph,
        *,
        require_square: bool = False,
    ) -> None:
        if not isinstance(tig, TaskInteractionGraph):
            raise ValidationError(f"tig must be a TaskInteractionGraph, got {type(tig).__name__}")
        if not isinstance(resources, ResourceGraph):
            raise ValidationError(
                f"resources must be a ResourceGraph, got {type(resources).__name__}"
            )
        if require_square and tig.n_nodes != resources.n_nodes:
            raise ValidationError(
                f"require_square: |V_t|={tig.n_nodes} != |V_r|={resources.n_nodes}"
            )
        self.tig = tig
        self.resources = resources
        self.task_weights = tig.computation_weights
        self.proc_weights = resources.processing_weights
        self.comm_costs = resources.comm_cost_matrix()  # raises if disconnected
        self.comm_costs.setflags(write=False)
        self.edges = tig.edges
        self.edge_weights = tig.edge_weights

    # -- shape ------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        """Number of application tasks ``|V_t|``."""
        return self.tig.n_nodes

    @property
    def n_resources(self) -> int:
        """Number of platform resources ``|V_r|``."""
        return self.resources.n_nodes

    @property
    def is_square(self) -> bool:
        """True iff ``|V_t| == |V_r|`` (the paper's setting)."""
        return self.n_tasks == self.n_resources

    # -- assignment validation ----------------------------------------------
    def check_assignment(self, assignment: AssignmentVector) -> np.ndarray:
        """Validate that ``assignment`` maps every task to a valid resource."""
        arr = np.asarray(assignment)
        if arr.ndim != 1 or arr.shape[0] != self.n_tasks:
            raise MappingError(
                f"assignment must have shape ({self.n_tasks},), got {arr.shape}"
            )
        if not np.issubdtype(arr.dtype, np.integer):
            raise MappingError(f"assignment must be integer-typed, got dtype {arr.dtype}")
        if arr.size and (arr.min() < 0 or arr.max() >= self.n_resources):
            raise MappingError(
                f"assignment values must be in [0, {self.n_resources - 1}], "
                f"got range [{arr.min()}, {arr.max()}]"
            )
        return arr.astype(np.int64, copy=False)

    def is_one_to_one(self, assignment: AssignmentVector) -> bool:
        """True iff no two tasks share a resource (a permutation when square)."""
        arr = self.check_assignment(assignment)
        return np.unique(arr).size == arr.size

    # -- shared-memory plane export/attach ----------------------------------
    def plane_arrays(self) -> dict[str, np.ndarray]:
        """Every numeric array a worker needs, keyed for the problem plane.

        This is the instance's complete wire format for
        :mod:`repro.utils.shared_plane`: the TIG arrays, the resource-graph
        arrays, and the already-closed communication-cost matrix (published
        so workers skip re-running the Floyd–Warshall closure).
        :meth:`from_plane_arrays` inverts it bit-for-bit.
        """
        return {
            "task_weights": self.task_weights,
            "tig_edges": self.edges,
            "tig_edge_weights": self.edge_weights,
            "proc_weights": self.proc_weights,
            "res_edges": self.resources.edges,
            "res_edge_weights": self.resources.edge_weights,
            "comm_costs": self.comm_costs,
        }

    @classmethod
    def from_plane_arrays(
        cls,
        arrays: "TypingMapping[str, np.ndarray]",
        *,
        tig_name: str = "",
        res_name: str = "",
    ) -> "MappingProblem":
        """Rebuild a problem from :meth:`plane_arrays` output (zero-copy).

        The graphs are reconstructed through their normal validating
        constructors (the arrays are tiny and already canonical), but the
        dense ``comm_costs`` matrix — the one O(n²) payload — is adopted
        as-is instead of being recomputed, so a worker attaching to a
        shared-memory segment reads the parent's pages directly. The result
        is numerically identical to the published problem: same weights,
        same canonical edge order, same closed cost matrix.
        """
        tig = TaskInteractionGraph(
            arrays["task_weights"],
            arrays["tig_edges"],
            arrays["tig_edge_weights"],
            name=tig_name,
        )
        resources = ResourceGraph(
            arrays["proc_weights"],
            arrays["res_edges"],
            arrays["res_edge_weights"],
            name=res_name,
        )
        problem = cls.__new__(cls)
        problem.tig = tig
        problem.resources = resources
        problem.task_weights = tig.computation_weights
        problem.proc_weights = resources.processing_weights
        comm = np.asarray(arrays["comm_costs"], dtype=np.float64)
        if comm.shape != (resources.n_nodes, resources.n_nodes):
            raise ValidationError(
                f"comm_costs must be ({resources.n_nodes}, {resources.n_nodes}), "
                f"got {comm.shape}"
            )
        comm.setflags(write=False)
        problem.comm_costs = comm
        problem.edges = tig.edges
        problem.edge_weights = tig.edge_weights
        return problem

    # -- misc ---------------------------------------------------------------
    def search_space_size(self) -> float:
        """Number of one-to-one mappings: ``n_r! / (n_r - n_t)!`` (as float)."""
        from math import lgamma

        if self.n_tasks > self.n_resources:
            return 0.0
        return float(
            np.exp(lgamma(self.n_resources + 1) - lgamma(self.n_resources - self.n_tasks + 1))
        )

    def __repr__(self) -> str:
        return (
            f"MappingProblem(n_tasks={self.n_tasks}, n_resources={self.n_resources}, "
            f"n_interactions={self.edges.shape[0]})"
        )
