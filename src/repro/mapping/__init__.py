"""Mapping core: problem instances, the Eq. (1)/(2) cost model, mappings."""

from repro.mapping.analysis import MappingAnalysis, analyze_mapping
from repro.mapping.bounds import (
    combined_lower_bound,
    communication_lower_bound,
    compute_lower_bound,
    sorted_matching_bound,
)
from repro.mapping.cost_model import (
    CostModel,
    evaluate_reference,
    per_resource_times_reference,
)
from repro.mapping.incremental import IncrementalEvaluator
from repro.mapping.mapping import Mapping
from repro.mapping.problem import MappingProblem
from repro.mapping.problem_key import problem_key
from repro.mapping.turnaround import TurnaroundRecord

__all__ = [
    "MappingProblem",
    "problem_key",
    "MappingAnalysis",
    "analyze_mapping",
    "combined_lower_bound",
    "communication_lower_bound",
    "compute_lower_bound",
    "sorted_matching_bound",
    "Mapping",
    "CostModel",
    "evaluate_reference",
    "per_resource_times_reference",
    "IncrementalEvaluator",
    "TurnaroundRecord",
]
