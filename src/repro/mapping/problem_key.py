"""The canonical problem hash: one key per mathematically-equal instance.

``problem_key`` is the public identity function for
:class:`~repro.mapping.problem.MappingProblem` instances: two problems get
the same key iff their plane arrays describe the same instance, no matter
how or where each was built. It is the key the service result cache, the
run-store manifests and cross-run comparisons all hang on, so it must be
stable across

* **processes and hosts** — only array *values* are hashed, never object
  ids, memory layout or dict ordering;
* **construction paths** — a problem built from graph objects, rebuilt
  from :meth:`~repro.mapping.problem.MappingProblem.plane_arrays`, or
  attached zero-copy from a shared-memory segment hashes identically;
* **dtype accidents** — an edge list that arrived as ``int32`` (a common
  default on Windows / from ``np.array`` literals) or weights passed as
  ``float32`` hash the same as their 64-bit twins, because every array is
  canonicalized to a C-contiguous 64-bit representation before hashing.
  Note this canonicalizes *representation*, not values: a ``float32``
  array whose values are not exactly representable round-trips through
  ``float64`` unchanged (the cast is exact), so equal values always mean
  equal keys;
* **kernel backends** — the key never looks at the kernel tier. Backends
  are bit-identical (the parity suite enforces it), so one cache entry
  serves every backend exactly.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

__all__ = ["problem_key", "canonical_array"]

#: Version tag mixed into every digest so a future canonicalization change
#: can never silently collide with keys minted under the old scheme.
_KEY_SCHEMA = b"repro.problem-key/1"


def canonical_array(arr: Any) -> np.ndarray:
    """The canonical 64-bit C-contiguous representation of ``arr``.

    Float kinds map to ``float64``, integer/bool kinds to ``int64`` —
    exact casts for every dtype the problem planes carry, so values (not
    storage accidents) determine the hash.
    """
    a = np.asarray(arr)
    if a.dtype.kind in "fc":
        a = a.astype(np.float64, copy=False)
    elif a.dtype.kind in "iub":
        a = a.astype(np.int64, copy=False)
    else:
        raise TypeError(f"cannot canonicalize array of dtype {a.dtype}")
    return np.ascontiguousarray(a)


def problem_key(problem: Any) -> str:
    """Stable sha256 hex digest identifying a mapping problem instance.

    Hashes the canonicalized plane arrays (see
    :meth:`~repro.mapping.problem.MappingProblem.plane_arrays`) in
    sorted-name order: name, canonical dtype, shape, then the raw bytes.
    Equal instances — built in different processes, from different
    construction paths, with different input dtypes — produce equal keys.
    """
    digest = hashlib.sha256(_KEY_SCHEMA)
    arrays = problem.plane_arrays()
    for name in sorted(arrays):
        arr = canonical_array(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(arr.dtype).encode("utf-8"))
        digest.update(str(arr.shape).encode("utf-8"))
        digest.update(arr.tobytes())
    return digest.hexdigest()
