"""Lower bounds on the Eq. (2) execution time of any one-to-one mapping.

No heuristic can report a cost below these, which makes them powerful
sanity oracles in tests and useful context in reports ("MaTCH is within
x% of the compute bound"). Three bounds, each valid for every one-to-one
mapping:

* **compute bound** — a perfectly balanced, communication-free schedule:
  the busiest resource hosts at least the average computation priced at
  the cheapest processing weight, and at least one task pays its own
  weight times the cheapest weight;
* **single-task bound** — pairing the heaviest tasks with the cheapest
  resources optimally (sorted products): some resource must pay at least
  the *minimum over assignments* of its own compute term, bounded by the
  sorted-product matching;
* **communication bound** — under a one-to-one mapping every TIG edge is
  remote, paying at least ``C^{t,a} · c_min`` on both endpoint resources;
  the total communication charge is therefore at least
  ``2 · ΣC · c_min`` spread over ``n_r`` resources.

``combined_lower_bound`` takes the max of all of them.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.mapping.problem import MappingProblem

__all__ = [
    "compute_lower_bound",
    "sorted_matching_bound",
    "communication_lower_bound",
    "combined_lower_bound",
]


def _off_diag_min(ccm: np.ndarray) -> float:
    n = ccm.shape[0]
    if n < 2:
        return 0.0
    mask = ~np.eye(n, dtype=bool)
    return float(ccm[mask].min())


def compute_lower_bound(problem: MappingProblem) -> float:
    """Balanced, communication-free floor on the busiest resource's load."""
    W = problem.task_weights
    w_min = float(problem.proc_weights.min())
    if W.size == 0:
        return 0.0
    per_resource_avg = float(W.sum()) / problem.n_resources
    heaviest_task = float(W.max())
    return max(per_resource_avg, heaviest_task) * w_min


def sorted_matching_bound(problem: MappingProblem) -> float:
    """Best-case compute pairing: heavy tasks on cheap resources.

    For any one-to-one mapping, the maximum of ``W_t · w_{x(t)}`` over
    tasks is minimized by pairing the sorted task weights (descending)
    with the sorted processing weights (ascending) — the classic
    rearrangement argument. The resulting max product lower-bounds
    every mapping's busiest-resource compute term, hence Eq. (2).
    """
    if problem.n_tasks > problem.n_resources:
        raise ValidationError("sorted matching bound requires n_tasks <= n_resources")
    W = np.sort(problem.task_weights)[::-1]
    w = np.sort(problem.proc_weights)[: problem.n_tasks]
    products = W * w
    return float(products.max()) if products.size else 0.0


def communication_lower_bound(problem: MappingProblem) -> float:
    """Floor from unavoidable communication under one-to-one mappings.

    Every edge is remote (endpoints never share a resource), charging at
    least ``C · c_min`` to each endpoint resource; total charge
    ``>= 2 ΣC c_min`` over ``n_r`` resources, so the busiest pays at least
    the average.
    """
    if problem.edge_weights.size == 0:
        return 0.0
    c_min = _off_diag_min(problem.comm_costs)
    total = 2.0 * float(problem.edge_weights.sum()) * c_min
    return total / problem.n_resources


def combined_lower_bound(problem: MappingProblem) -> float:
    """Max of all applicable bounds (each valid alone; the max is too).

    Note compute and communication floors may NOT be summed in general —
    the resource paying the most communication need not be the one paying
    the most computation — so the combination is a max, not a sum.
    """
    bounds = [compute_lower_bound(problem), communication_lower_bound(problem)]
    if problem.n_tasks <= problem.n_resources:
        bounds.append(sorted_matching_bound(problem))
    return max(bounds)
