"""Parameter smoothing — Eq. (13) of the paper.

``P_{k+1} = ζ Q_{k+1} + (1 - ζ) P_k`` where ``Q`` is the raw elite-count
update. Smoothing slows convergence, protecting the CE method against the
premature lock-in a coarse update can cause; the paper uses ``ζ = 0.3``.

This module also provides *dynamic* smoothing (Rubinstein's
``ζ_k = β (1 - 1/k)^q`` schedule), an optional extension exercised by the
ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.types import ProbabilityMatrix

__all__ = ["smooth", "dynamic_smoothing_factor"]


def smooth(
    previous: ProbabilityMatrix, update: ProbabilityMatrix, zeta: float
) -> ProbabilityMatrix:
    """Eq. (13): convex combination of the old matrix and the raw update.

    Both inputs must share a shape; the result is row-stochastic whenever
    both inputs are (a convex combination of stochastic matrices).
    """
    P = np.asarray(previous, dtype=np.float64)
    Q = np.asarray(update, dtype=np.float64)
    if P.shape != Q.shape:
        raise ValidationError(f"shape mismatch: previous {P.shape} vs update {Q.shape}")
    if not 0.0 < zeta <= 1.0:
        raise ValidationError(f"zeta must be in (0, 1], got {zeta}")
    return zeta * Q + (1.0 - zeta) * P


def dynamic_smoothing_factor(iteration: int, *, beta: float = 0.8, q: float = 5.0) -> float:
    """Rubinstein's dynamic schedule ``ζ_k = β (1 - 1/k)^q`` for ``k ≥ 2``.

    Early iterations get a small ``ζ`` (heavy smoothing, cautious updates);
    as ``k`` grows ``ζ`` rises towards ``β`` so late iterations can lock
    in. The literal formula gives ``ζ_1 = 0`` (no update at all), so the
    first iteration returns ``β`` instead.
    """
    if iteration < 1:
        raise ValidationError(f"iteration must be >= 1, got {iteration}")
    if not 0.0 < beta <= 1.0:
        raise ValidationError(f"beta must be in (0, 1], got {beta}")
    if q <= 0:
        raise ValidationError(f"q must be > 0, got {q}")
    if iteration == 1:
        return beta
    return float(beta * (1.0 - 1.0 / iteration) ** q)
