"""CE for rare-event simulation (RES) — the method's original home (§3).

The paper grounds MaTCH in the CE method's roots: estimating
``ℓ(γ) = P_u(S(X) ≥ γ)`` when ``ℓ`` is tiny (Eq. (4)), via an adaptively
tilted importance-sampling density and the likelihood-ratio estimator
(Eq. (5)/(6)). This module implements the classical multilevel algorithm
for product families with analytic CE updates:

* :class:`ExponentialFamily` — independent ``Exp(mean v_i)`` components;
* :class:`BernoulliFamily` — independent ``Bernoulli(v_i)`` components.

Both admit the closed-form tilted update
``v_i ← Σ_k W_k I_k X_{ki} / Σ_k W_k I_k`` (the weighted elite mean), which
is exactly the ``argmax`` of Eq. (6) for these families.

:func:`estimate_rare_event` runs the two-phase scheme: adapt levels
``γ_1 < γ_2 < … → γ`` with the elite quantile, then estimate ``ℓ`` with a
final likelihood-ratio batch. Tests validate it against analytically
tractable targets (e.g. ``P(Σ X_i ≥ γ)`` for i.i.d. exponentials, an
Erlang tail).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.types import SeedLike
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range

__all__ = [
    "ExponentialFamily",
    "BernoulliFamily",
    "RareEventResult",
    "estimate_rare_event",
]


class TiltableFamily(Protocol):
    """A product sampling family with analytic CE (tilted-mean) updates."""

    def sample(self, v: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` i.i.d. vectors from ``f(·; v)``."""
        ...

    def log_ratio(self, x: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """``log f(x; u) - log f(x; v)`` per sample (the LR exponent)."""
        ...

    def update(self, x: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Weighted-mean CE update of the parameter vector."""
        ...


class ExponentialFamily:
    """Independent exponentials parameterized by their *means* ``v_i > 0``."""

    def sample(self, v: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        return rng.exponential(v, size=(n, v.shape[0]))

    def log_ratio(self, x: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        # log f(x; u) = -log u - x / u  (componentwise, summed).
        return ((np.log(v) - np.log(u)) + x * (1.0 / v - 1.0 / u)).sum(axis=1)

    def update(self, x: np.ndarray, weights: np.ndarray) -> np.ndarray:
        wsum = weights.sum()
        if wsum <= 0:
            raise ConvergenceError("all importance weights vanished in CE update")
        return (weights[:, np.newaxis] * x).sum(axis=0) / wsum


class BernoulliFamily:
    """Independent Bernoulli components with success probabilities ``v_i``."""

    def __init__(self, *, clip: float = 1e-6) -> None:
        if not 0 < clip < 0.5:
            raise ConfigurationError(f"clip must be in (0, 0.5), got {clip}")
        self.clip = clip

    def sample(self, v: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
        v = np.asarray(v, dtype=np.float64)
        return (rng.random((n, v.shape[0])) < v).astype(np.float64)

    def log_ratio(self, x: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        u = np.clip(np.asarray(u, dtype=np.float64), self.clip, 1 - self.clip)
        v = np.clip(np.asarray(v, dtype=np.float64), self.clip, 1 - self.clip)
        return (
            x * (np.log(u) - np.log(v)) + (1 - x) * (np.log1p(-u) - np.log1p(-v))
        ).sum(axis=1)

    def update(self, x: np.ndarray, weights: np.ndarray) -> np.ndarray:
        wsum = weights.sum()
        if wsum <= 0:
            raise ConvergenceError("all importance weights vanished in CE update")
        p = (weights[:, np.newaxis] * x).sum(axis=0) / wsum
        return np.clip(p, self.clip, 1 - self.clip)


@dataclass
class RareEventResult:
    """Outcome of a CE rare-event estimation."""

    probability: float
    relative_error: float
    gamma_levels: list[float] = field(default_factory=list)
    n_iterations: int = 0
    final_parameters: np.ndarray | None = field(default=None, repr=False)


def estimate_rare_event(
    score: Callable[[np.ndarray], np.ndarray],
    family: TiltableFamily,
    u: np.ndarray,
    gamma: float,
    *,
    n_samples: int = 1000,
    rho: float = 0.1,
    max_iterations: int = 100,
    final_samples: int | None = None,
    rng: SeedLike = None,
) -> RareEventResult:
    """Estimate ``ℓ = P_u(S(X) ≥ γ)`` with the multilevel CE algorithm.

    Parameters
    ----------
    score:
        Batch performance function ``(N, d) -> (N,)`` (larger = rarer).
    family:
        The tiltable sampling family.
    u:
        Nominal (true) parameter vector.
    gamma:
        Target level.
    n_samples:
        Batch size per adaptation iteration.
    rho:
        Elite fraction: each level is the ``(1-ρ)`` sample quantile.
    max_iterations:
        Budget for the level-adaptation phase.
    final_samples:
        Size of the final LR estimation batch (default ``10 × n_samples``).
    rng:
        Seed or generator.

    Raises
    ------
    ConvergenceError
        If the levels stop making progress toward ``gamma``.
    """
    check_in_range("rho", rho, 0.0, 1.0, inclusive=(False, False))
    if n_samples < 10:
        raise ConfigurationError(f"n_samples must be >= 10, got {n_samples}")
    gen = as_generator(rng)
    u = np.asarray(u, dtype=np.float64)
    v = u.copy()
    levels: list[float] = []

    for it in range(1, max_iterations + 1):
        x = family.sample(v, n_samples, gen)
        s = np.asarray(score(x), dtype=np.float64)
        gamma_t = float(np.quantile(s, 1.0 - rho))
        gamma_t = min(gamma_t, gamma)
        levels.append(gamma_t)
        hit = s >= gamma_t
        if not hit.any():
            raise ConvergenceError(f"no samples reached level {gamma_t} at iteration {it}")
        # Likelihood ratios back to the nominal density.
        log_w = family.log_ratio(x, u, v)
        weights = np.where(hit, np.exp(log_w), 0.0)
        v = family.update(x, weights)
        if gamma_t >= gamma:
            break
        if it >= 3 and abs(levels[-1] - levels[-3]) < 1e-12:
            raise ConvergenceError(
                f"levels stalled at {levels[-1]:.6g} before reaching gamma={gamma}"
            )
    else:
        raise ConvergenceError(
            f"failed to reach gamma={gamma} in {max_iterations} iterations "
            f"(best level {levels[-1]:.6g})"
        )

    n_final = final_samples if final_samples is not None else 10 * n_samples
    x = family.sample(v, n_final, gen)
    s = np.asarray(score(x), dtype=np.float64)
    hit = s >= gamma
    lr = np.where(hit, np.exp(family.log_ratio(x, u, v)), 0.0)
    ell = float(lr.mean())
    std = float(lr.std(ddof=1)) if n_final > 1 else float("inf")
    rel_err = std / (ell * np.sqrt(n_final)) if ell > 0 else float("inf")
    return RareEventResult(
        probability=ell,
        relative_error=rel_err,
        gamma_levels=levels,
        n_iterations=len(levels),
        final_parameters=v,
    )
