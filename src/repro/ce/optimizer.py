"""Generic cross-entropy optimizer for combinatorial problems (Fig. 2 / §3).

This is the reusable engine under MaTCH: it owns the CE iteration
(sample → score → elite quantile → matrix update → stopping check) while
remaining agnostic of *what* is being optimized. The sampling family is
pluggable:

* ``"permutation"`` — GenPerm one-to-one sampling (the MaTCH setting);
* ``"independent"`` — unconstrained per-row categorical sampling (Eq. (8));
* any callable ``(P, n_samples, rng) -> AssignmentBatch``.

The objective is a batch function mapping an ``(N, n_rows)`` integer batch
to ``(N,)`` costs — lower is better. The engine minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

import numpy as np

from repro.ce.genperm import sample_assignments, sample_permutations
from repro.ce.quantile import select_elites, select_top_k
from repro.ce.stochastic_matrix import StochasticMatrix
from repro.ce.stopping import (
    AnyOf,
    DegenerateMatrix,
    GammaStagnation,
    IterationState,
    MaxIterations,
    RowMaximaStable,
    StopKind,
    StoppingCriterion,
)
from repro.exceptions import ConfigurationError
from repro.types import AssignmentBatch, BatchObjectiveFn, ProbabilityMatrix, SeedLike
from repro.utils.dedup import collapse_duplicate_rows
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range

__all__ = ["CEConfig", "CEResult", "CrossEntropyOptimizer"]

SamplerLike = Union[str, Callable[[ProbabilityMatrix, int, np.random.Generator], AssignmentBatch]]


@dataclass(frozen=True)
class CEConfig:
    """Hyper-parameters of one CE run.

    Attributes
    ----------
    n_samples:
        Batch size ``N`` per iteration (the paper uses ``2·|V_r|²``).
    rho:
        Focus parameter; elite fraction (paper: 0.01 ≤ ρ ≤ 0.1).
    zeta:
        Smoothing factor of Eq. (13); 1.0 disables smoothing (coarse
        update), the paper runs 0.3.
    stability_window:
        ``c`` of Eq. (12): iterations of unchanged row maxima (within
        ``stability_tol``) required to declare convergence. ``0`` disables
        the rule.
    stability_tol:
        Float tolerance for "unchanged" in the Eq. (12) check. The paper's
        exact-equality reading only ever fires once the matrix is exactly
        degenerate; under smoothing (ζ < 1) the maxima approach 1
        asymptotically, so a tolerance is required in practice.
    gamma_window:
        The generic CE criterion (Fig. 2 step 4): stop when the elite
        threshold ``γ`` has been unchanged this many iterations. ``0``
        disables. This typically fires first on cost plateaus, bounding
        mapping time without hurting quality.
    elite_mode:
        ``"exact_k"`` (default) keeps exactly the ``⌈ρN⌉`` best samples;
        ``"threshold"`` keeps every sample with cost ≤ γ (the textbook
        rule, which over-weights tied duplicates late in a run).
    dedup:
        Collapse duplicate candidate rows (packed-int64 keys, falling back
        to ``np.unique`` along axis 0 for huge alphabets) before calling
        the objective, scattering the unique costs back via the inverse
        index. Exact — identical costs to the plain path —
        because the objective is required to be a pure row-wise function.
        Once ``P`` nears degeneracy most of the ``N`` samples coincide, so
        late iterations score a fraction of the batch. Disable for
        objectives with row-order-dependent or stateful semantics.
    max_iterations:
        Hard iteration budget (safety net; the adaptive criteria usually
        fire long before).
    track_matrices:
        Record a snapshot of the stochastic matrix every
        ``matrix_snapshot_every`` iterations (for Fig. 3 reproductions).
    matrix_snapshot_every:
        Snapshot stride when ``track_matrices`` is on.
    """

    n_samples: int
    rho: float = 0.05
    zeta: float = 0.3
    stability_window: int = 5
    stability_tol: float = 1e-6
    gamma_window: int = 12
    elite_mode: str = "exact_k"
    dedup: bool = True
    max_iterations: int = 500
    track_matrices: bool = False
    matrix_snapshot_every: int = 1

    def __post_init__(self) -> None:
        if self.n_samples < 2:
            raise ConfigurationError(f"n_samples must be >= 2, got {self.n_samples}")
        check_in_range("rho", self.rho, 0.0, 1.0, inclusive=(False, False))
        check_in_range("zeta", self.zeta, 0.0, 1.0, inclusive=(False, True))
        if self.stability_window < 0:
            raise ConfigurationError(
                f"stability_window must be >= 0, got {self.stability_window}"
            )
        if self.stability_tol < 0:
            raise ConfigurationError(f"stability_tol must be >= 0, got {self.stability_tol}")
        if self.gamma_window < 0:
            raise ConfigurationError(f"gamma_window must be >= 0, got {self.gamma_window}")
        if self.elite_mode not in ("exact_k", "threshold"):
            raise ConfigurationError(
                f"elite_mode must be 'exact_k' or 'threshold', got {self.elite_mode!r}"
            )
        if self.max_iterations < 1:
            raise ConfigurationError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.matrix_snapshot_every < 1:
            raise ConfigurationError(
                f"matrix_snapshot_every must be >= 1, got {self.matrix_snapshot_every}"
            )


@dataclass
class CEResult:
    """Outcome of a CE run, including per-iteration diagnostics.

    ``n_evaluations`` counts logical candidates (``N`` per iteration);
    ``n_unique_evaluations`` counts the rows actually scored after
    duplicate collapse — the gap is the work dedup-aware scoring saved.
    """

    best_assignment: np.ndarray
    best_cost: float
    n_iterations: int
    n_evaluations: int
    stop_reason: str
    stop_kind: StopKind = StopKind.NOT_RUN
    n_unique_evaluations: int = 0
    gamma_history: list[float] = field(default_factory=list)
    best_cost_history: list[float] = field(default_factory=list)
    degeneracy_history: list[float] = field(default_factory=list)
    entropy_history: list[float] = field(default_factory=list)
    dedup_rate_history: list[float] = field(default_factory=list)
    matrix_history: list[np.ndarray] = field(default_factory=list, repr=False)
    final_matrix: np.ndarray | None = field(default=None, repr=False)

    @property
    def converged(self) -> bool:
        """True when an adaptive rule (not the iteration budget) fired."""
        return self.stop_kind not in (StopKind.BUDGET, StopKind.NOT_RUN)

    @property
    def dedup_collapse_rate(self) -> float:
        """Overall fraction of candidate rows collapsed as duplicates."""
        if self.n_evaluations <= 0:
            return 0.0
        return 1.0 - self.n_unique_evaluations / self.n_evaluations


class CrossEntropyOptimizer:
    """The CE engine: repeatedly sample, select elites, update, test stopping.

    Parameters
    ----------
    objective:
        Batch objective ``(N, n_rows) -> (N,)`` costs (minimized).
    n_rows, n_cols:
        Shape of the stochastic matrix (tasks × resources for MaTCH).
    config:
        Hyper-parameters.
    sampler:
        ``"permutation"``, ``"independent"``, or a callable.
    rng:
        Seed or generator for the whole run.
    extra_stopping:
        Optional additional criteria OR-ed with the defaults.
    """

    def __init__(
        self,
        objective: BatchObjectiveFn,
        n_rows: int,
        n_cols: int,
        config: CEConfig,
        *,
        sampler: SamplerLike = "permutation",
        rng: SeedLike = None,
        extra_stopping: tuple[StoppingCriterion, ...] = (),
        initial_matrix: ProbabilityMatrix | None = None,
    ) -> None:
        if n_rows < 1 or n_cols < 1:
            raise ConfigurationError(f"matrix dims must be >= 1, got ({n_rows}, {n_cols})")
        if sampler == "permutation" and n_rows > n_cols:
            raise ConfigurationError(
                "permutation sampling requires n_rows <= n_cols "
                f"(got {n_rows} tasks, {n_cols} resources)"
            )
        self.objective = objective
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.config = config
        self.rng = as_generator(rng)
        if callable(sampler):
            self._sample = sampler
        elif sampler == "permutation":
            self._sample = sample_permutations
        elif sampler == "independent":
            self._sample = sample_assignments
        else:
            raise ConfigurationError(f"unknown sampler {sampler!r}")

        criteria: list[StoppingCriterion] = [MaxIterations(config.max_iterations)]
        if config.stability_window > 0:
            criteria.append(
                RowMaximaStable(config.stability_window, tol=config.stability_tol)
            )
        if config.gamma_window > 0:
            criteria.append(GammaStagnation(config.gamma_window))
        criteria.append(DegenerateMatrix())
        criteria.extend(extra_stopping)
        self.stopping = AnyOf(tuple(criteria))
        self._select = select_top_k if config.elite_mode == "exact_k" else select_elites

        if initial_matrix is not None:
            self.matrix = StochasticMatrix(initial_matrix)
            if self.matrix.shape != (n_rows, n_cols):
                raise ConfigurationError(
                    f"initial_matrix shape {self.matrix.shape} != ({n_rows}, {n_cols})"
                )
        else:
            self.matrix = StochasticMatrix.uniform(n_rows, n_cols)

    def _score(self, X: AssignmentBatch, result: CEResult) -> np.ndarray:
        """Score a batch, collapsing duplicate rows first when configured.

        The dedup path is exact: duplicate rows receive the very float the
        objective computed for their unique representative, so downstream
        elite selection and argmin behave identically to the plain path.
        """
        if not self.config.dedup:
            costs = np.asarray(self.objective(X), dtype=np.float64)
            if costs.shape != (X.shape[0],):
                raise ConfigurationError(
                    f"objective returned shape {costs.shape}, expected ({X.shape[0]},)"
                )
            result.n_unique_evaluations += X.shape[0]
            return costs
        unique_rows, inverse = collapse_duplicate_rows(np.asarray(X), self.n_cols)
        unique_costs = np.asarray(self.objective(unique_rows), dtype=np.float64)
        if unique_costs.shape != (unique_rows.shape[0],):
            raise ConfigurationError(
                f"objective returned shape {unique_costs.shape}, "
                f"expected ({unique_rows.shape[0]},)"
            )
        result.n_unique_evaluations += unique_rows.shape[0]
        result.dedup_rate_history.append(1.0 - unique_rows.shape[0] / X.shape[0])
        return unique_costs[inverse]

    def run(self) -> CEResult:
        """Execute the CE loop (Fig. 5 steps 2-8) and return the result."""
        cfg = self.config
        self.stopping.reset()
        best_cost = np.inf
        best_x = np.zeros(self.n_rows, dtype=np.int64)
        result = CEResult(
            best_assignment=best_x,
            best_cost=best_cost,
            n_iterations=0,
            n_evaluations=0,
            stop_reason="not run",
        )

        for k in range(1, cfg.max_iterations + 1):
            X = self._sample(self.matrix.view(), cfg.n_samples, self.rng)
            costs = self._score(X, result)
            result.n_evaluations += X.shape[0]

            gamma, elite_idx = self._select(costs, cfg.rho)
            iter_best = int(np.argmin(costs))
            if costs[iter_best] < best_cost:
                best_cost = float(costs[iter_best])
                best_x = X[iter_best].copy()

            self.matrix.update_from_elites(X[elite_idx], zeta=cfg.zeta)

            result.gamma_history.append(float(gamma))
            result.best_cost_history.append(best_cost)
            result.degeneracy_history.append(self.matrix.degeneracy())
            result.entropy_history.append(self.matrix.entropy())
            if cfg.track_matrices and (k - 1) % cfg.matrix_snapshot_every == 0:
                result.matrix_history.append(self.matrix.values)
            result.n_iterations = k

            state = IterationState(
                iteration=k, gamma=float(gamma), best_cost=best_cost, matrix=self.matrix
            )
            if self.stopping.update(state):
                result.stop_reason = self.stopping.reason
                result.stop_kind = self.stopping.kind
                break
        else:  # pragma: no cover - loop always breaks via MaxIterations
            result.stop_reason = "iteration budget exhausted"
            result.stop_kind = StopKind.BUDGET

        result.best_assignment = best_x
        result.best_cost = best_cost
        result.final_matrix = self.matrix.values
        if cfg.track_matrices and (
            not result.matrix_history
            or not np.array_equal(result.matrix_history[-1], result.final_matrix)
        ):
            result.matrix_history.append(result.final_matrix)
        return result
