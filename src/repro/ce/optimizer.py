"""Generic cross-entropy optimizer for combinatorial problems (Fig. 2 / §3).

This is the reusable engine under MaTCH: it owns the CE iteration
(sample → score → elite quantile → matrix update → stopping check) while
remaining agnostic of *what* is being optimized. The sampling family is
pluggable:

* ``"permutation"`` — GenPerm one-to-one sampling (the MaTCH setting);
* ``"independent"`` — unconstrained per-row categorical sampling (Eq. (8));
* any callable ``(P, n_samples, rng) -> AssignmentBatch``.

The objective is a batch function mapping an ``(N, n_rows)`` integer batch
to ``(N,)`` costs — lower is better. The engine minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

import numpy as np

from repro.ce.genperm import sample_assignments, sample_permutations
from repro.ce.quantile import select_elites, select_top_k
from repro.ce.stochastic_matrix import StochasticMatrix
from repro.ce.stopping import (
    AnyOf,
    DegenerateMatrix,
    GammaStagnation,
    IterationState,
    MaxIterations,
    RowMaximaStable,
    StopKind,
    StoppingCriterion,
)
from repro.exceptions import ConfigurationError
from repro.runtime.budget import EvaluationBudget
from repro.types import AssignmentBatch, BatchObjectiveFn, ProbabilityMatrix, SeedLike
from repro.utils.dedup import collapse_duplicate_rows
from repro.utils.rng import as_generator, generator_from_state, generator_state
from repro.utils.validation import check_in_range

__all__ = ["CEConfig", "CEResult", "CrossEntropyOptimizer"]

SamplerLike = Union[str, Callable[[ProbabilityMatrix, int, np.random.Generator], AssignmentBatch]]


@dataclass(frozen=True)
class CEConfig:
    """Hyper-parameters of one CE run.

    Attributes
    ----------
    n_samples:
        Batch size ``N`` per iteration (the paper uses ``2·|V_r|²``).
    rho:
        Focus parameter; elite fraction (paper: 0.01 ≤ ρ ≤ 0.1).
    zeta:
        Smoothing factor of Eq. (13); 1.0 disables smoothing (coarse
        update), the paper runs 0.3.
    stability_window:
        ``c`` of Eq. (12): iterations of unchanged row maxima (within
        ``stability_tol``) required to declare convergence. ``0`` disables
        the rule.
    stability_tol:
        Float tolerance for "unchanged" in the Eq. (12) check. The paper's
        exact-equality reading only ever fires once the matrix is exactly
        degenerate; under smoothing (ζ < 1) the maxima approach 1
        asymptotically, so a tolerance is required in practice.
    gamma_window:
        The generic CE criterion (Fig. 2 step 4): stop when the elite
        threshold ``γ`` has been unchanged this many iterations. ``0``
        disables. This typically fires first on cost plateaus, bounding
        mapping time without hurting quality.
    elite_mode:
        ``"exact_k"`` (default) keeps exactly the ``⌈ρN⌉`` best samples;
        ``"threshold"`` keeps every sample with cost ≤ γ (the textbook
        rule, which over-weights tied duplicates late in a run).
    dedup:
        Collapse duplicate candidate rows (packed-int64 keys, falling back
        to ``np.unique`` along axis 0 for huge alphabets) before calling
        the objective, scattering the unique costs back via the inverse
        index. Exact — identical costs to the plain path —
        because the objective is required to be a pure row-wise function.
        Once ``P`` nears degeneracy most of the ``N`` samples coincide, so
        late iterations score a fraction of the batch. Disable for
        objectives with row-order-dependent or stateful semantics.
    max_iterations:
        Hard iteration budget (safety net; the adaptive criteria usually
        fire long before).
    track_matrices:
        Record a snapshot of the stochastic matrix every
        ``matrix_snapshot_every`` iterations (for Fig. 3 reproductions).
    matrix_snapshot_every:
        Snapshot stride when ``track_matrices`` is on.
    """

    n_samples: int
    rho: float = 0.05
    zeta: float = 0.3
    stability_window: int = 5
    stability_tol: float = 1e-6
    gamma_window: int = 12
    elite_mode: str = "exact_k"
    dedup: bool = True
    max_iterations: int = 500
    track_matrices: bool = False
    matrix_snapshot_every: int = 1

    def __post_init__(self) -> None:
        if self.n_samples < 2:
            raise ConfigurationError(f"n_samples must be >= 2, got {self.n_samples}")
        check_in_range("rho", self.rho, 0.0, 1.0, inclusive=(False, False))
        check_in_range("zeta", self.zeta, 0.0, 1.0, inclusive=(False, True))
        if self.stability_window < 0:
            raise ConfigurationError(
                f"stability_window must be >= 0, got {self.stability_window}"
            )
        if self.stability_tol < 0:
            raise ConfigurationError(f"stability_tol must be >= 0, got {self.stability_tol}")
        if self.gamma_window < 0:
            raise ConfigurationError(f"gamma_window must be >= 0, got {self.gamma_window}")
        if self.elite_mode not in ("exact_k", "threshold"):
            raise ConfigurationError(
                f"elite_mode must be 'exact_k' or 'threshold', got {self.elite_mode!r}"
            )
        if self.max_iterations < 1:
            raise ConfigurationError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.matrix_snapshot_every < 1:
            raise ConfigurationError(
                f"matrix_snapshot_every must be >= 1, got {self.matrix_snapshot_every}"
            )


@dataclass
class CEResult:
    """Outcome of a CE run, including per-iteration diagnostics.

    ``n_evaluations`` counts logical candidates (``N`` per iteration);
    ``n_unique_evaluations`` counts the rows actually scored after
    duplicate collapse — the gap is the work dedup-aware scoring saved.
    """

    best_assignment: np.ndarray
    best_cost: float
    n_iterations: int
    n_evaluations: int
    stop_reason: str
    stop_kind: StopKind = StopKind.NOT_RUN
    n_unique_evaluations: int = 0
    gamma_history: list[float] = field(default_factory=list)
    best_cost_history: list[float] = field(default_factory=list)
    degeneracy_history: list[float] = field(default_factory=list)
    entropy_history: list[float] = field(default_factory=list)
    dedup_rate_history: list[float] = field(default_factory=list)
    matrix_history: list[np.ndarray] = field(default_factory=list, repr=False)
    final_matrix: np.ndarray | None = field(default=None, repr=False)

    @property
    def converged(self) -> bool:
        """True when an adaptive rule (not a budget or external stop) fired."""
        return self.stop_kind not in (
            StopKind.BUDGET,
            StopKind.NOT_RUN,
            StopKind.EXTERNAL,
        )

    @property
    def dedup_collapse_rate(self) -> float:
        """Overall fraction of candidate rows collapsed as duplicates."""
        if self.n_evaluations <= 0:
            return 0.0
        return 1.0 - self.n_unique_evaluations / self.n_evaluations


class CrossEntropyOptimizer:
    """The CE engine: repeatedly sample, select elites, update, test stopping.

    Parameters
    ----------
    objective:
        Batch objective ``(N, n_rows) -> (N,)`` costs (minimized).
    n_rows, n_cols:
        Shape of the stochastic matrix (tasks × resources for MaTCH).
    config:
        Hyper-parameters.
    sampler:
        ``"permutation"``, ``"independent"``, or a callable.
    rng:
        Seed or generator for the whole run.
    extra_stopping:
        Optional additional criteria OR-ed with the defaults.
    """

    def __init__(
        self,
        objective: BatchObjectiveFn,
        n_rows: int,
        n_cols: int,
        config: CEConfig,
        *,
        sampler: SamplerLike = "permutation",
        rng: SeedLike = None,
        extra_stopping: tuple[StoppingCriterion, ...] = (),
        initial_matrix: ProbabilityMatrix | None = None,
        budget: "EvaluationBudget | None" = None,
    ) -> None:
        if n_rows < 1 or n_cols < 1:
            raise ConfigurationError(f"matrix dims must be >= 1, got ({n_rows}, {n_cols})")
        if sampler == "permutation" and n_rows > n_cols:
            raise ConfigurationError(
                "permutation sampling requires n_rows <= n_cols "
                f"(got {n_rows} tasks, {n_cols} resources)"
            )
        self.objective = objective
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.config = config
        self.rng = as_generator(rng)
        if callable(sampler):
            self._sample = sampler
        elif sampler == "permutation":
            self._sample = sample_permutations
        elif sampler == "independent":
            self._sample = sample_assignments
        else:
            raise ConfigurationError(f"unknown sampler {sampler!r}")

        criteria: list[StoppingCriterion] = [MaxIterations(config.max_iterations)]
        if config.stability_window > 0:
            criteria.append(
                RowMaximaStable(config.stability_window, tol=config.stability_tol)
            )
        if config.gamma_window > 0:
            criteria.append(GammaStagnation(config.gamma_window))
        criteria.append(DegenerateMatrix())
        criteria.extend(extra_stopping)
        self.stopping = AnyOf(tuple(criteria))
        self._select = select_top_k if config.elite_mode == "exact_k" else select_elites

        if initial_matrix is not None:
            self.matrix = StochasticMatrix(initial_matrix)
            if self.matrix.shape != (n_rows, n_cols):
                raise ConfigurationError(
                    f"initial_matrix shape {self.matrix.shape} != ({n_rows}, {n_cols})"
                )
        else:
            self.matrix = StochasticMatrix.uniform(n_rows, n_cols)

        self.budget = budget if budget is not None else EvaluationBudget()
        self._result: CEResult | None = None
        self._best_cost: float = np.inf
        self._best_x = np.zeros(self.n_rows, dtype=np.int64)
        self._k = 0
        self._finished = False

    def bind_budget(self, budget: "EvaluationBudget") -> None:
        """Swap in the shared budget all scored rows are charged against."""
        self.budget = budget

    def _score(self, X: AssignmentBatch, result: CEResult) -> np.ndarray:
        """Score a batch, collapsing duplicate rows first when configured.

        The dedup path is exact: duplicate rows receive the very float the
        objective computed for their unique representative, so downstream
        elite selection and argmin behave identically to the plain path.
        """
        if not self.config.dedup:
            costs = np.asarray(self.objective(X), dtype=np.float64)
            if costs.shape != (X.shape[0],):
                raise ConfigurationError(
                    f"objective returned shape {costs.shape}, expected ({X.shape[0]},)"
                )
            result.n_unique_evaluations += X.shape[0]
            self.budget.charge(X.shape[0])
            return costs
        unique_rows, inverse = collapse_duplicate_rows(np.asarray(X), self.n_cols)
        unique_costs = np.asarray(self.objective(unique_rows), dtype=np.float64)
        if unique_costs.shape != (unique_rows.shape[0],):
            raise ConfigurationError(
                f"objective returned shape {unique_costs.shape}, "
                f"expected ({unique_rows.shape[0]},)"
            )
        result.n_unique_evaluations += unique_rows.shape[0]
        self.budget.charge(unique_rows.shape[0])
        result.dedup_rate_history.append(1.0 - unique_rows.shape[0] / X.shape[0])
        return unique_costs[inverse]

    # -- stepwise protocol (driven by repro.runtime.SearchLoop) -----------------
    def start(self) -> None:
        """Reset live state for a fresh run; pairs with step/finalize."""
        self.stopping.reset()
        self._best_cost = np.inf
        self._best_x = np.zeros(self.n_rows, dtype=np.int64)
        self._k = 0
        self._finished = False
        self._result = CEResult(
            best_assignment=self._best_x,
            best_cost=np.inf,
            n_iterations=0,
            n_evaluations=0,
            stop_reason="not run",
        )

    @property
    def finished(self) -> bool:
        """True once a stopping criterion (or an external stop) fired."""
        return self._finished

    @property
    def iteration(self) -> int:
        """Completed CE iterations of the current run."""
        return self._k

    @property
    def best_cost(self) -> float:
        """Incumbent best cost of the current run."""
        return float(self._best_cost)

    def step(self) -> bool:
        """One CE iteration (Fig. 5 steps 2-7); returns True on improvement.

        The sample batch is clamped to the evaluations the budget can still
        afford, so the final iteration of a capped run shrinks instead of
        overshooting ``max_evaluations`` (dedup can only make the charged
        count smaller than the draw, never larger). Unlimited budgets pass
        ``n_samples`` through untouched — the RNG stream of unbudgeted runs
        is byte-identical to before.
        """
        cfg = self.config
        result = self._require_started()
        k = self._k + 1
        n_draw = self.budget.clamp_batch(cfg.n_samples)
        if n_draw < 1:
            # Only reachable when step() is driven without a budget-checking
            # loop; record a clean external stop instead of spinning forever.
            self.note_external_stop("evaluation budget exhausted before sampling")
            return False
        X = self._sample(self.matrix.view(), n_draw, self.rng)
        costs = self._score(X, result)
        result.n_evaluations += X.shape[0]

        gamma, elite_idx = self._select(costs, cfg.rho)
        iter_best = int(np.argmin(costs))
        improved = bool(costs[iter_best] < self._best_cost)
        if improved:
            self._best_cost = float(costs[iter_best])
            self._best_x = X[iter_best].copy()

        self.matrix.update_from_elites(X[elite_idx], zeta=cfg.zeta)

        result.gamma_history.append(float(gamma))
        result.best_cost_history.append(float(self._best_cost))
        result.degeneracy_history.append(self.matrix.degeneracy())
        result.entropy_history.append(self.matrix.entropy())
        if cfg.track_matrices and (k - 1) % cfg.matrix_snapshot_every == 0:
            result.matrix_history.append(self.matrix.values)
        result.n_iterations = k
        self._k = k

        state = IterationState(
            iteration=k,
            gamma=float(gamma),
            best_cost=float(self._best_cost),
            matrix=self.matrix,
        )
        if self.stopping.update(state):
            result.stop_reason = self.stopping.reason
            result.stop_kind = self.stopping.kind
            self._finished = True
        return improved

    def note_external_stop(self, reason: str) -> None:
        """Record that the surrounding loop ended the run (budget/interrupt)."""
        result = self._require_started()
        result.stop_reason = reason
        result.stop_kind = StopKind.EXTERNAL
        self._finished = True

    def finalize(self) -> CEResult:
        """Freeze and return the result of the current run."""
        cfg = self.config
        result = self._require_started()
        result.best_assignment = self._best_x
        result.best_cost = (
            float(self._best_cost) if np.isfinite(self._best_cost) else np.inf
        )
        result.final_matrix = self.matrix.values
        if cfg.track_matrices and (
            not result.matrix_history
            or not np.array_equal(result.matrix_history[-1], result.final_matrix)
        ):
            result.matrix_history.append(result.final_matrix)
        return result

    def _require_started(self) -> CEResult:
        if self._result is None:
            raise ConfigurationError("call start() before step()/finalize()")
        return self._result

    def run(self) -> CEResult:
        """Execute the CE loop (Fig. 5 steps 2-8) and return the result.

        Equivalent to ``start()`` + ``step()`` until ``finished`` +
        ``finalize()`` — the stepwise protocol the solver runtime drives;
        this convenience keeps the one-call API. ``MaxIterations`` is
        always in the criterion set, so the loop terminates.
        """
        self.start()
        while not self._finished:
            self.step()
        return self.finalize()

    # -- checkpoint support -----------------------------------------------------
    def export_state(self) -> dict:
        """JSON-able live run state: matrix, RNG position, histories, stopping.

        Restoring with :meth:`restore_state` on a freshly constructed
        optimizer (same config) resumes the run bit-for-bit: the next
        ``step()`` draws the exact samples the uninterrupted run would.
        """
        result = self._require_started()
        state: dict = {
            "k": self._k,
            "finished": self._finished,
            "matrix": self.matrix.values.tolist(),
            "rng": generator_state(self.rng),
            "best_cost": (
                float(self._best_cost) if np.isfinite(self._best_cost) else None
            ),
            "best_x": self._best_x.tolist(),
            "stopping": self.stopping.export_state(),
            "result": {
                "n_evaluations": result.n_evaluations,
                "n_unique_evaluations": result.n_unique_evaluations,
                "stop_reason": result.stop_reason,
                "stop_kind": result.stop_kind.value,
                "gamma_history": list(result.gamma_history),
                "best_cost_history": list(result.best_cost_history),
                "degeneracy_history": list(result.degeneracy_history),
                "entropy_history": list(result.entropy_history),
                "dedup_rate_history": list(result.dedup_rate_history),
            },
        }
        if self.config.track_matrices:
            state["matrix_history"] = [m.tolist() for m in result.matrix_history]
        return state

    def restore_state(self, state: dict) -> None:
        """Resume mid-run from :meth:`export_state` output (same config)."""
        self.matrix = StochasticMatrix(np.asarray(state["matrix"], dtype=np.float64))
        self.rng = generator_from_state(state["rng"])
        self._k = int(state["k"])
        self._finished = bool(state["finished"])
        best_cost = state.get("best_cost")
        self._best_cost = np.inf if best_cost is None else float(best_cost)
        self._best_x = np.asarray(state["best_x"], dtype=np.int64)
        self.stopping.reset()
        self.stopping.restore_state(state["stopping"])
        saved = state["result"]
        self._result = CEResult(
            best_assignment=self._best_x,
            best_cost=self._best_cost,
            n_iterations=self._k,
            n_evaluations=int(saved["n_evaluations"]),
            stop_reason=str(saved["stop_reason"]),
            stop_kind=StopKind(saved["stop_kind"]),
            n_unique_evaluations=int(saved["n_unique_evaluations"]),
            gamma_history=[float(v) for v in saved["gamma_history"]],
            best_cost_history=[float(v) for v in saved["best_cost_history"]],
            degeneracy_history=[float(v) for v in saved["degeneracy_history"]],
            entropy_history=[float(v) for v in saved["entropy_history"]],
            dedup_rate_history=[float(v) for v in saved["dedup_rate_history"]],
        )
        if self.config.track_matrices and "matrix_history" in state:
            self._result.matrix_history = [
                np.asarray(m, dtype=np.float64) for m in state["matrix_history"]
            ]
