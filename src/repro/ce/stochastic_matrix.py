"""The stochastic matrix parameterizing the CE sampling distribution (§4).

``P[i, j]`` is the probability that task ``i`` is mapped to resource ``j``.
The matrix starts uniform (``1/|V_r|`` everywhere, the paper's
initialization), evolves through elite-count updates (Eq. (11)) optionally
smoothed (Eq. (13)), and — when the method converges — degenerates to a
0/1 permutation-like matrix (Fig. 3).

:class:`StochasticMatrix` owns the numeric invariants (rows sum to one,
entries non-negative) and the diagnostics the paper uses: per-row maxima
``μ_k^i`` (the convergence signal of Eq. (12)), entropy, and the degeneracy
fraction rendered in Fig. 3.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.types import AssignmentBatch, ProbabilityMatrix
from repro.utils.validation import check_probability_matrix

__all__ = ["StochasticMatrix", "elite_counts_update", "stacked_elite_update"]


def elite_counts_update(
    elites: AssignmentBatch, n_rows: int, n_cols: int
) -> ProbabilityMatrix:
    """Eq. (11): the maximum-likelihood stochastic matrix of an elite batch.

    ``Q[i, j]`` = fraction of elite samples assigning task ``i`` to
    resource ``j``. Rows sum to one by construction.
    """
    E = np.asarray(elites, dtype=np.int64)
    if E.ndim != 2 or E.shape[1] != n_rows:
        raise ValidationError(f"elites must have shape (M, {n_rows}), got {E.shape}")
    if E.shape[0] == 0:
        raise ValidationError("elite set is empty; cannot update")
    if E.min() < 0 or E.max() >= n_cols:
        raise ValidationError(f"elite values must be in [0, {n_cols - 1}]")
    M = E.shape[0]
    rows = np.broadcast_to(np.arange(n_rows, dtype=np.int64), E.shape)
    flat = rows.ravel() * n_cols + E.ravel()
    counts = np.bincount(flat, minlength=n_rows * n_cols).reshape(n_rows, n_cols)
    return counts.astype(np.float64) / M


def stacked_elite_update(
    P_stack: np.ndarray,
    elites: AssignmentBatch,
    chain_sizes: np.ndarray,
    *,
    zeta: float = 1.0,
) -> np.ndarray:
    """Eq. (11) + (13) for ``R`` chains at once, via one ``bincount``.

    Parameters
    ----------
    P_stack:
        ``(R, n_rows, n_cols)`` current matrices, one per chain.
    elites:
        ``(M_total, n_rows)`` concatenation of every chain's elite batch,
        in chain order.
    chain_sizes:
        ``(R,)`` elite counts per chain (``sum == M_total``; every entry
        must be >= 1).
    zeta:
        Eq. (13) smoothing factor.

    Returns
    -------
    ``(R, n_rows, n_cols)`` updated, renormalized stack. Chain ``r``'s
    slice is bit-identical to
    ``StochasticMatrix(P_stack[r]).update_from_elites(chunk_r, zeta=zeta)``
    — the counts, the ``/M`` division, the smoothing blend and the row
    renormalization are the same elementwise float operations.
    """
    if not 0.0 < zeta <= 1.0:
        raise ValidationError(f"zeta must be in (0, 1], got {zeta}")
    P_stack = np.asarray(P_stack, dtype=np.float64)
    if P_stack.ndim != 3:
        raise ValidationError(f"P_stack must be 3-D, got shape {P_stack.shape}")
    R, n_rows, n_cols = P_stack.shape
    E = np.asarray(elites, dtype=np.int64)
    sizes = np.asarray(chain_sizes, dtype=np.int64)
    if sizes.shape != (R,) or np.any(sizes < 1):
        raise ValidationError(f"chain_sizes must be (R,) with positive entries, got {sizes}")
    if E.ndim != 2 or E.shape != (int(sizes.sum()), n_rows):
        raise ValidationError(
            f"elites must have shape ({int(sizes.sum())}, {n_rows}), got {E.shape}"
        )
    if E.min() < 0 or E.max() >= n_cols:
        raise ValidationError(f"elite values must be in [0, {n_cols - 1}]")
    chain_ids = np.repeat(np.arange(R, dtype=np.int64), sizes)
    rows = np.broadcast_to(np.arange(n_rows, dtype=np.int64), E.shape)
    flat = (chain_ids[:, np.newaxis] * n_rows + rows).ravel() * n_cols + E.ravel()
    counts = np.bincount(flat, minlength=R * n_rows * n_cols).reshape(R, n_rows, n_cols)
    Q = counts.astype(np.float64) / sizes[:, np.newaxis, np.newaxis]
    P_new = zeta * Q + (1.0 - zeta) * P_stack
    P_new /= P_new.sum(axis=2, keepdims=True)
    return P_new


class StochasticMatrix:
    """A mutable row-stochastic matrix with CE-specific operations."""

    __slots__ = ("_P",)

    def __init__(self, matrix: ProbabilityMatrix) -> None:
        self._P = check_probability_matrix(matrix).copy()

    # -- constructors ---------------------------------------------------------
    @classmethod
    def uniform(cls, n_rows: int, n_cols: int) -> "StochasticMatrix":
        """The paper's ``P_0``: every entry ``1 / n_cols``."""
        if n_rows < 1 or n_cols < 1:
            raise ValidationError(f"matrix dims must be >= 1, got ({n_rows}, {n_cols})")
        return cls(np.full((n_rows, n_cols), 1.0 / n_cols))

    @classmethod
    def _from_trusted(cls, values: np.ndarray) -> "StochasticMatrix":
        """Wrap an already-stochastic array without validation or copy.

        Internal hot-path constructor (the multi-chain engine publishes
        per-iteration views to the stopping criteria through this). The
        caller retains ownership of ``values`` and must not hand out the
        wrapper beyond the current iteration.
        """
        obj = cls.__new__(cls)
        obj._P = values
        return obj

    @classmethod
    def degenerate_from_assignment(cls, assignment, n_cols: int) -> "StochasticMatrix":
        """A 0/1 matrix putting all mass of row ``i`` on ``assignment[i]``."""
        a = np.asarray(assignment, dtype=np.int64)
        P = np.zeros((a.shape[0], n_cols))
        P[np.arange(a.shape[0]), a] = 1.0
        return cls(P)

    # -- access ----------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Copy of the underlying ``(n_rows, n_cols)`` array."""
        return self._P.copy()

    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape ``(n_rows, n_cols)``."""
        return self._P.shape  # type: ignore[return-value]

    @property
    def n_rows(self) -> int:
        return self._P.shape[0]

    @property
    def n_cols(self) -> int:
        return self._P.shape[1]

    def view(self) -> np.ndarray:
        """Read-only *view* (no copy) for hot sampling loops."""
        v = self._P.view()
        v.setflags(write=False)
        return v

    # -- CE updates -----------------------------------------------------------------
    def update_from_elites(self, elites: AssignmentBatch, *, zeta: float = 1.0) -> None:
        """Apply Eq. (11) with smoothing Eq. (13).

        ``zeta = 1`` is the unsmoothed (coarse) update; the paper runs with
        ``zeta = 0.3`` to avoid premature convergence.
        """
        if not 0.0 < zeta <= 1.0:
            raise ValidationError(f"zeta must be in (0, 1], got {zeta}")
        Q = elite_counts_update(elites, self.n_rows, self.n_cols)
        self._P = zeta * Q + (1.0 - zeta) * self._P
        # Guard accumulated float drift; rows remain stochastic exactly.
        self._P /= self._P.sum(axis=1, keepdims=True)

    # -- diagnostics ------------------------------------------------------------------
    def row_maxima(self) -> np.ndarray:
        """``μ^i``: maximal element of each row — Eq. (12)'s convergence signal."""
        return self._P.max(axis=1)

    def row_argmax(self) -> np.ndarray:
        """Most likely resource per task (the decoded mapping when degenerate)."""
        return self._P.argmax(axis=1)

    def entropy(self) -> float:
        """Mean Shannon entropy of the rows (nats); 0 when degenerate."""
        P = self._P
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(P > 0, -P * np.log(P), 0.0)
        return float(terms.sum(axis=1).mean())

    def degeneracy(self) -> float:
        """Mean row maximum in [1/n_cols, 1]; 1.0 when fully degenerate (Fig. 3)."""
        return float(self.row_maxima().mean())

    def is_degenerate(self, *, tol: float = 1e-9) -> bool:
        """True iff every row has all mass (within ``tol``) on one column."""
        return bool(np.all(self.row_maxima() >= 1.0 - tol))

    def copy(self) -> "StochasticMatrix":
        """Deep copy."""
        return StochasticMatrix(self._P)

    def __repr__(self) -> str:
        return (
            f"StochasticMatrix(shape={self.shape}, degeneracy={self.degeneracy():.3f}, "
            f"entropy={self.entropy():.3f})"
        )
