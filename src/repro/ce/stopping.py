"""Stopping criteria for CE iterations.

The paper's criterion (Eq. (12)) declares convergence when the maximal
element of *every* row of the stochastic matrix has been unchanged for
``c`` consecutive iterations (``c = 5``). The generic CE tutorial's
criterion (Fig. 2, step 4) instead watches the elite threshold ``γ``.
Both are provided, together with an iteration budget and a full-degeneracy
test, and can be combined with :class:`AnyOf`.

A criterion is an object with ``update(state) -> bool`` (True = stop) and
``reset()``; ``state`` is the :class:`IterationState` snapshot the
optimizer publishes each iteration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.ce.stochastic_matrix import StochasticMatrix
from repro.exceptions import ConfigurationError

__all__ = [
    "StopKind",
    "IterationState",
    "StoppingCriterion",
    "RowMaximaStable",
    "ArgmaxStable",
    "GammaStagnation",
    "MaxIterations",
    "DegenerateMatrix",
    "AnyOf",
]


class StopKind(enum.Enum):
    """Structured identity of the rule that ended a CE run.

    ``CEResult.converged`` and friends branch on this enum instead of
    string-matching ``stop_reason`` (which is free-form human text).
    ``BUDGET`` is the only non-adaptive kind: a run that stops for any
    other reason counted as converged.
    """

    NOT_RUN = "not_run"
    BUDGET = "budget"
    ROW_MAXIMA_STABLE = "row_maxima_stable"
    ARGMAX_STABLE = "argmax_stable"
    GAMMA_STAGNATION = "gamma_stagnation"
    DEGENERATE = "degenerate"
    CUSTOM = "custom"
    #: The run was ended from outside the CE engine — an
    #: :class:`repro.runtime.budget.EvaluationBudget` limit or an
    #: interrupt in the surrounding :class:`repro.runtime.loop.SearchLoop`.
    EXTERNAL = "external"


@dataclass(frozen=True)
class IterationState:
    """Everything a stopping rule may inspect after one CE iteration."""

    iteration: int
    gamma: float
    best_cost: float
    matrix: StochasticMatrix


class StoppingCriterion:
    """Interface: ``update`` consumes one iteration, returns True to stop."""

    def update(self, state: IterationState) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def reset(self) -> None:
        """Forget accumulated history (called before a fresh run)."""

    @property
    def reason(self) -> str:
        """Human-readable reason, valid after ``update`` returned True."""
        return type(self).__name__

    @property
    def kind(self) -> StopKind:
        """Structured stop kind; user-defined criteria default to CUSTOM."""
        return StopKind.CUSTOM

    # -- checkpoint support (stateless criteria need no override) ----------
    def export_state(self) -> dict:
        """JSON-able snapshot of accumulated history (for checkpoints)."""
        return {}

    def restore_state(self, state: dict) -> None:
        """Rebuild accumulated history from :meth:`export_state` output."""


class RowMaximaStable(StoppingCriterion):
    """Eq. (12): every row maximum ``μ^i`` unchanged for ``c`` iterations.

    Float-tolerant: two consecutive row-max vectors count as "unchanged"
    when equal within ``tol``. The counter requires ``c`` *consecutive*
    stable steps and resets on any change.
    """

    def __init__(self, c: int = 5, *, tol: float = 1e-9) -> None:
        if c < 1:
            raise ConfigurationError(f"c must be >= 1, got {c}")
        if tol < 0:
            raise ConfigurationError(f"tol must be >= 0, got {tol}")
        self.c = c
        self.tol = tol
        self._prev: np.ndarray | None = None
        self._stable = 0

    def update(self, state: IterationState) -> bool:
        mu = state.matrix.row_maxima()
        # Same boolean as np.allclose(mu, prev, atol=tol, rtol=0) for the
        # finite values seen here, without allclose's broadcasting overhead
        # (this runs once per chain per iteration in the multi-chain loop).
        if self._prev is not None and bool((np.abs(mu - self._prev) <= self.tol).all()):
            self._stable += 1
        else:
            self._stable = 0
        self._prev = mu
        return self._stable >= self.c

    def reset(self) -> None:
        self._prev = None
        self._stable = 0

    def export_state(self) -> dict:
        return {
            "prev": None if self._prev is None else self._prev.tolist(),
            "stable": self._stable,
        }

    def restore_state(self, state: dict) -> None:
        prev = state.get("prev")
        self._prev = None if prev is None else np.asarray(prev, dtype=np.float64)
        self._stable = int(state.get("stable", 0))

    @property
    def reason(self) -> str:
        return f"row maxima stable for {self.c} iterations (Eq. 12)"

    @property
    def kind(self) -> StopKind:
        return StopKind.ROW_MAXIMA_STABLE


class ArgmaxStable(StoppingCriterion):
    """The decoded mapping (per-row argmax) unchanged for ``c`` iterations.

    A discrete, float-robust reading of Eq. (12): once every task's most
    likely resource has been the same for ``c`` consecutive iterations the
    matrix has committed to one mapping, even if the probabilities are
    still creeping towards 1 under smoothing.
    """

    def __init__(self, c: int = 10) -> None:
        if c < 1:
            raise ConfigurationError(f"c must be >= 1, got {c}")
        self.c = c
        self._prev: np.ndarray | None = None
        self._stable = 0

    def update(self, state: IterationState) -> bool:
        decoded = state.matrix.row_argmax()
        if self._prev is not None and np.array_equal(decoded, self._prev):
            self._stable += 1
        else:
            self._stable = 0
        self._prev = decoded
        return self._stable >= self.c

    def reset(self) -> None:
        self._prev = None
        self._stable = 0

    def export_state(self) -> dict:
        return {
            "prev": None if self._prev is None else self._prev.tolist(),
            "stable": self._stable,
        }

    def restore_state(self, state: dict) -> None:
        prev = state.get("prev")
        self._prev = None if prev is None else np.asarray(prev, dtype=np.int64)
        self._stable = int(state.get("stable", 0))

    @property
    def reason(self) -> str:
        return f"decoded mapping stable for {self.c} iterations"

    @property
    def kind(self) -> StopKind:
        return StopKind.ARGMAX_STABLE


class GammaStagnation(StoppingCriterion):
    """Fig. 2 step 4: the elite threshold ``γ`` unchanged for ``k`` iterations."""

    def __init__(self, k: int = 5, *, tol: float = 1e-9) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.k = k
        self.tol = tol
        self._prev: float | None = None
        self._stable = 0

    def update(self, state: IterationState) -> bool:
        if self._prev is not None and abs(state.gamma - self._prev) <= self.tol:
            self._stable += 1
        else:
            self._stable = 0
        self._prev = state.gamma
        return self._stable >= self.k

    def reset(self) -> None:
        self._prev = None
        self._stable = 0

    def export_state(self) -> dict:
        return {"prev": self._prev, "stable": self._stable}

    def restore_state(self, state: dict) -> None:
        prev = state.get("prev")
        self._prev = None if prev is None else float(prev)
        self._stable = int(state.get("stable", 0))

    @property
    def reason(self) -> str:
        return f"elite threshold gamma stagnant for {self.k} iterations"

    @property
    def kind(self) -> StopKind:
        return StopKind.GAMMA_STAGNATION


class MaxIterations(StoppingCriterion):
    """Hard iteration budget (safety net around the adaptive rules)."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError(f"limit must be >= 1, got {limit}")
        self.limit = limit

    def update(self, state: IterationState) -> bool:
        return state.iteration >= self.limit

    @property
    def reason(self) -> str:
        return f"iteration budget of {self.limit} exhausted"

    @property
    def kind(self) -> StopKind:
        return StopKind.BUDGET


class DegenerateMatrix(StoppingCriterion):
    """Stop once the matrix is (numerically) fully degenerate (Fig. 3 endpoint)."""

    def __init__(self, *, tol: float = 1e-6) -> None:
        if tol < 0:
            raise ConfigurationError(f"tol must be >= 0, got {tol}")
        self.tol = tol

    def update(self, state: IterationState) -> bool:
        return state.matrix.is_degenerate(tol=self.tol)

    @property
    def reason(self) -> str:
        return "stochastic matrix degenerate"

    @property
    def kind(self) -> StopKind:
        return StopKind.DEGENERATE


@dataclass
class AnyOf(StoppingCriterion):
    """Stop as soon as any member criterion fires; reports which one."""

    criteria: tuple[StoppingCriterion, ...]
    _fired: StoppingCriterion | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.criteria:
            raise ConfigurationError("AnyOf needs at least one criterion")

    def update(self, state: IterationState) -> bool:
        fired = False
        # Update every member each iteration so their histories stay warm.
        for crit in self.criteria:
            if crit.update(state) and not fired:
                self._fired = crit
                fired = True
        return fired

    def reset(self) -> None:
        self._fired = None
        for crit in self.criteria:
            crit.reset()

    def export_state(self) -> dict:
        # Positional: the resuming process rebuilds the identical criterion
        # tuple from config, so index i pairs with the same criterion.
        return {"members": [crit.export_state() for crit in self.criteria]}

    def restore_state(self, state: dict) -> None:
        members = state.get("members", [])
        if len(members) != len(self.criteria):
            raise ConfigurationError(
                f"stopping state has {len(members)} members, "
                f"expected {len(self.criteria)} — config mismatch on resume"
            )
        for crit, member in zip(self.criteria, members):
            crit.restore_state(member)

    @property
    def reason(self) -> str:
        return self._fired.reason if self._fired is not None else "not stopped"

    @property
    def kind(self) -> StopKind:
        return self._fired.kind if self._fired is not None else StopKind.NOT_RUN
