"""CE for the travelling salesman problem — transition-matrix parameterization.

The de Boer et al. tutorial the paper builds on (§3, [8]) develops the CE
method for TSP with a different sampling family than MaTCH's independent
rows: a *Markov transition matrix* ``P[i, j] ~ Pr(go to city j | at city
i)`` sampled into tours without revisits. Implementing it completes the
library's coverage of the tutorial's combinatorial family and exercises a
genuinely different update (transition counts rather than position counts).

Tour sampling reuses the masked roulette machinery of GenPerm, but the
conditioning differs: GenPerm draws task ``i``'s resource from *row i*
(position-indexed), TSP draws the next city from the *current city's* row
(state-indexed). The CE update counts elite transitions ``i→j`` (in both
tour directions — tours are undirected) and renormalizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.types import SeedLike
from repro.utils.rng import as_generator

__all__ = ["TourResult", "tour_length", "ce_tsp"]


@dataclass(frozen=True)
class TourResult:
    """Outcome of a CE TSP run."""

    tour: np.ndarray  # city visit order, starts at city 0
    length: float
    n_iterations: int
    n_evaluations: int


def tour_length(distances: np.ndarray, tour: np.ndarray) -> float:
    """Cycle length of ``tour`` under the distance matrix."""
    d = np.asarray(distances, dtype=np.float64)
    t = np.asarray(tour, dtype=np.int64)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise ValidationError(f"distances must be square, got {d.shape}")
    if sorted(t.tolist()) != list(range(d.shape[0])):
        raise ValidationError("tour must visit every city exactly once")
    return float(d[t, np.roll(t, -1)].sum())


def _sample_tours(
    P: np.ndarray, n_samples: int, gen: np.random.Generator
) -> np.ndarray:
    """Sample ``n_samples`` tours starting at city 0 from transition matrix P."""
    n = P.shape[0]
    tours = np.zeros((n_samples, n), dtype=np.int64)
    visited = np.zeros((n_samples, n), dtype=bool)
    visited[:, 0] = True
    current = np.zeros(n_samples, dtype=np.int64)
    rows = np.arange(n_samples)
    for pos in range(1, n):
        probs = P[current]  # (N, n): each sample looks up its current city's row
        probs = np.where(visited, 0.0, probs)
        mass = probs.sum(axis=1)
        dead = mass <= 0.0
        if dead.any():
            probs[dead] = (~visited[dead]).astype(np.float64)
            mass = probs.sum(axis=1)
        cdf = np.cumsum(probs, axis=1)
        u = gen.random(n_samples) * mass
        choice = (cdf <= u[:, np.newaxis]).sum(axis=1)
        np.minimum(choice, n - 1, out=choice)
        bad = visited[rows, choice]
        if bad.any():
            choice[bad] = np.argmax(~visited[bad], axis=1)
        tours[:, pos] = choice
        visited[rows, choice] = True
        current = choice
    return tours


def ce_tsp(
    distances: np.ndarray,
    *,
    n_samples: int | None = None,
    rho: float = 0.02,
    zeta: float = 0.7,
    max_iterations: int = 300,
    gamma_window: int = 15,
    rng: SeedLike = None,
) -> TourResult:
    """Minimize a symmetric TSP instance with transition-matrix CE.

    Parameters follow the tutorial's recommendations (``N ≈ 5 n²``,
    small ``ρ``). The update counts elite transitions in both directions
    (symmetric instances have undirected optimal tours).
    """
    d = np.asarray(distances, dtype=np.float64)
    n = d.shape[0]
    if d.ndim != 2 or d.shape != (n, n):
        raise ValidationError(f"distances must be square, got {d.shape}")
    if not np.allclose(d, d.T):
        raise ValidationError("ce_tsp expects a symmetric distance matrix")
    if n < 2:
        return TourResult(
            tour=np.arange(max(n, 1)), length=0.0, n_iterations=0, n_evaluations=0
        )
    if n_samples is None:
        n_samples = max(100, 5 * n * n)
    gen = as_generator(rng)

    P = np.full((n, n), 1.0 / (n - 1))
    np.fill_diagonal(P, 0.0)
    best_tour = np.arange(n)
    best_len = tour_length(d, best_tour)
    n_evals = 0
    stagnant = 0
    prev_gamma = np.inf
    iterations = 0
    k_elite = max(1, int(np.ceil(rho * n_samples)))

    for it in range(1, max_iterations + 1):
        iterations = it
        tours = _sample_tours(P, n_samples, gen)
        lengths = d[tours, np.roll(tours, -1, axis=1)].sum(axis=1)
        n_evals += n_samples

        elite_idx = np.argpartition(lengths, k_elite - 1)[:k_elite]
        gamma = float(lengths[elite_idx].max())
        it_best = int(np.argmin(lengths))
        if lengths[it_best] < best_len:
            best_len = float(lengths[it_best])
            best_tour = tours[it_best].copy()

        # Transition-count update (both directions).
        elites = tours[elite_idx]
        nxt = np.roll(elites, -1, axis=1)
        counts = np.zeros((n, n))
        flat = (elites.ravel() * n + nxt.ravel())
        counts += np.bincount(flat, minlength=n * n).reshape(n, n)
        counts += counts.T.copy()
        np.fill_diagonal(counts, 0.0)
        row_sums = counts.sum(axis=1, keepdims=True)
        Q = np.divide(counts, row_sums, out=np.full_like(counts, 1.0 / (n - 1)),
                      where=row_sums > 0)
        np.fill_diagonal(Q, 0.0)
        Q /= Q.sum(axis=1, keepdims=True)
        P = zeta * Q + (1.0 - zeta) * P

        if abs(gamma - prev_gamma) <= 1e-12:
            stagnant += 1
            if stagnant >= gamma_window:
                break
        else:
            stagnant = 0
        prev_gamma = gamma

    # Normalize the reported tour to start at city 0.
    start = int(np.flatnonzero(best_tour == 0)[0])
    best_tour = np.roll(best_tour, -start)
    return TourResult(
        tour=best_tour, length=best_len, n_iterations=iterations, n_evaluations=n_evals
    )
