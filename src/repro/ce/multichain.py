"""Multi-chain CE engine: R independent chains as one stochastic tensor.

Every headline number in the paper aggregates many independent CE runs
(Table 3 alone is 30, Tables 1-2 / Figs. 7-9 sweep repetitions per
instance). Running those chains one at a time wastes the vectorization the
library already has: each chain's per-iteration numpy work is small enough
that Python overhead dominates at ``n = 10``.

:class:`MultiChainCE` advances ``R`` chains simultaneously:

* the stochastic matrices live in one ``(R, n_tasks, n_resources)``
  tensor;
* one batched GenPerm pass (:func:`repro.ce.genperm.sample_permutations_stacked`)
  samples all ``R × N`` permutations through a single flattened
  ``(R·N, n_res)`` position loop;
* all candidates are scored with ONE objective call per joint iteration,
  after collapsing duplicates across every chain (near-degenerate chains
  — and chains that have converged to the same mapping — share scores);
* Eq. (11)+(13) matrix updates run as one stacked ``bincount``
  (:func:`repro.ce.stochastic_matrix.stacked_elite_update`), and the
  degeneracy/entropy diagnostics are computed on the whole tensor.

Each chain owns its generator and its stopping-criteria state, so chain
``r`` of a multi-chain run is **bit-identical** to a standalone
:class:`~repro.ce.optimizer.CrossEntropyOptimizer` run seeded the same way
— the property the test suite pins and the experiment layer relies on to
swap the serial repetition loops for this engine without changing any
reported number. Chains that stop early are frozen and dropped from the
live set; the joint loop ends when every chain has stopped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.ce.genperm import sample_assignments, sample_permutations_stacked
from repro.ce.optimizer import CEConfig, CEResult, SamplerLike
from repro.ce.quantile import select_elites, select_top_k
from repro.ce.stochastic_matrix import StochasticMatrix, stacked_elite_update
from repro.ce.stopping import (
    AnyOf,
    DegenerateMatrix,
    GammaStagnation,
    IterationState,
    MaxIterations,
    RowMaximaStable,
    StopKind,
    StoppingCriterion,
)
from repro.exceptions import ConfigurationError
from repro.runtime.budget import EvaluationBudget
from repro.types import BatchObjectiveFn, ProbabilityMatrix, SeedLike
from repro.utils.dedup import collapse_duplicate_rows, pack_rows
from repro.utils.rng import as_generator

__all__ = ["MultiChainResult", "MultiChainCE"]


@dataclass
class MultiChainResult:
    """Outcome of a joint multi-chain run.

    ``chains[r]`` is a full per-chain :class:`CEResult`, field-for-field
    equal (histories included) to what a sequential single-chain run with
    the same seed would have produced — except the dedup diagnostics,
    which for a joint run live here: duplicates are collapsed across *all*
    live chains at once, so the collapse rate is a property of the joint
    batch, not of any one chain.
    """

    chains: list[CEResult]
    n_joint_iterations: int
    n_evaluations: int
    n_unique_evaluations: int
    dedup_rate_history: list[float] = field(default_factory=list)

    @property
    def n_chains(self) -> int:
        """Number of chains advanced."""
        return len(self.chains)

    @property
    def best_index(self) -> int:
        """Index of the chain holding the overall best mapping."""
        return int(np.argmin([c.best_cost for c in self.chains]))

    @property
    def best(self) -> CEResult:
        """The chain result with the lowest best cost."""
        return self.chains[self.best_index]

    @property
    def dedup_collapse_rate(self) -> float:
        """Overall fraction of candidate rows collapsed as duplicates."""
        if self.n_evaluations <= 0:
            return 0.0
        return 1.0 - self.n_unique_evaluations / self.n_evaluations


def _build_stopping(
    config: CEConfig, extra: tuple[StoppingCriterion, ...]
) -> AnyOf:
    """The optimizer's default criterion set, built fresh (stateful!)."""
    criteria: list[StoppingCriterion] = [MaxIterations(config.max_iterations)]
    if config.stability_window > 0:
        criteria.append(RowMaximaStable(config.stability_window, tol=config.stability_tol))
    if config.gamma_window > 0:
        criteria.append(GammaStagnation(config.gamma_window))
    criteria.append(DegenerateMatrix())
    criteria.extend(extra)
    return AnyOf(tuple(criteria))


class MultiChainCE:
    """Advance ``R`` independent CE chains through one batched loop.

    Parameters
    ----------
    objective:
        Pure batch objective ``(M, n_rows) -> (M,)`` costs (minimized).
        One call scores the concatenated candidates of every live chain.
    n_rows, n_cols:
        Shape of each chain's stochastic matrix.
    config:
        Shared hyper-parameters (every chain runs the same config, as the
        paper's repetition protocols do).
    seeds:
        One seed-like per chain; chain ``r`` consumes exactly the random
        stream a sequential run seeded with ``seeds[r]`` would.
    sampler:
        ``"permutation"`` (stacked GenPerm fast path), ``"independent"``,
        or a callable applied per chain.
    extra_stopping_factory:
        Optional zero-arg callable returning fresh extra criteria; called
        once per chain because criteria are stateful.
    initial_matrix:
        Optional shared starting matrix (default uniform).
    """

    def __init__(
        self,
        objective: BatchObjectiveFn,
        n_rows: int,
        n_cols: int,
        config: CEConfig,
        *,
        seeds: Sequence[SeedLike],
        sampler: SamplerLike = "permutation",
        extra_stopping_factory: Callable[[], tuple[StoppingCriterion, ...]] | None = None,
        initial_matrix: ProbabilityMatrix | None = None,
    ) -> None:
        if n_rows < 1 or n_cols < 1:
            raise ConfigurationError(f"matrix dims must be >= 1, got ({n_rows}, {n_cols})")
        if len(seeds) < 1:
            raise ConfigurationError("need at least one chain seed")
        if sampler == "permutation" and n_rows > n_cols:
            raise ConfigurationError(
                "permutation sampling requires n_rows <= n_cols "
                f"(got {n_rows} tasks, {n_cols} resources)"
            )
        self.objective = objective
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.config = config
        self._gens = [as_generator(s) for s in seeds]
        self.n_chains = len(self._gens)
        self._sampler = sampler
        if callable(sampler):
            self._sample_one = sampler
        elif sampler == "independent":
            self._sample_one = sample_assignments
        elif sampler != "permutation":
            raise ConfigurationError(f"unknown sampler {sampler!r}")
        # With only the default criteria the joint loop runs a vectorized
        # stopping tracker (exactly equivalent per chain); user-supplied
        # extra criteria are stateful objects, so they force the per-chain
        # AnyOf machinery.
        self._fast_stopping = extra_stopping_factory is None
        extra_factory = extra_stopping_factory or (lambda: ())
        self._stoppings = [
            _build_stopping(config, tuple(extra_factory())) for _ in range(self.n_chains)
        ]
        self._select = select_top_k if config.elite_mode == "exact_k" else select_elites
        if initial_matrix is not None:
            P0 = StochasticMatrix(initial_matrix).values
            if P0.shape != (n_rows, n_cols):
                raise ConfigurationError(
                    f"initial_matrix shape {P0.shape} != ({n_rows}, {n_cols})"
                )
        else:
            P0 = StochasticMatrix.uniform(n_rows, n_cols).values
        self._P0 = P0
        self.budget = EvaluationBudget()
        self._started = False

    def bind_budget(self, budget: EvaluationBudget) -> None:
        """Swap in the shared budget all freshly scored rows are charged against."""
        self.budget = budget

    # -- scoring ---------------------------------------------------------------
    def _score_joint(
        self, flat: np.ndarray, result: MultiChainResult
    ) -> np.ndarray:
        """Score the concatenated live batch, collapsing cross-chain duplicates.

        On top of the within-batch collapse, packable alphabets get a
        cross-*iteration* memo: a sorted array of row keys with the exact
        float the objective returned for each. Successive CE iterations
        sample from slowly-moving distributions, so late iterations find
        almost every unique candidate already scored. The memo is exact —
        a hit returns the very float the objective computed for that row.

        A capped budget clamps how many *fresh* rows are scored: rows past
        the cap receive ``+inf`` (they can never become an incumbent best)
        and are neither charged nor memoized, so ``used`` stops exactly at
        ``max_evaluations`` while the chains' sampling RNG streams remain
        byte-identical to an uncapped run.
        """
        result.n_evaluations += flat.shape[0]
        if not self.config.dedup:
            n_score = self.budget.clamp_batch(flat.shape[0])
            costs = np.full(flat.shape[0], np.inf)
            if n_score:
                scored = np.asarray(self.objective(flat[:n_score]), dtype=np.float64)
                if scored.shape != (n_score,):
                    raise ConfigurationError(
                        f"objective returned shape {scored.shape}, expected ({n_score},)"
                    )
                costs[:n_score] = scored
                self.budget.charge(n_score)
            result.n_unique_evaluations += n_score
            return costs
        keys = pack_rows(flat, self.n_cols)
        if keys is None:
            unique_rows, inverse = collapse_duplicate_rows(flat, self.n_cols)
            n_score = self.budget.clamp_batch(unique_rows.shape[0])
            unique_costs = np.full(unique_rows.shape[0], np.inf)
            if n_score:
                scored = np.asarray(
                    self.objective(unique_rows[:n_score]), dtype=np.float64
                )
                if scored.shape != (n_score,):
                    raise ConfigurationError(
                        f"objective returned shape {scored.shape}, "
                        f"expected ({n_score},)"
                    )
                unique_costs[:n_score] = scored
                self.budget.charge(n_score)
            result.n_unique_evaluations += n_score
            result.dedup_rate_history.append(1.0 - n_score / flat.shape[0])
            return unique_costs[inverse]
        # Resolve every row against the memo first; only keys never seen in
        # any iteration are deduped and scored. Once chains sharpen, whole
        # batches resolve without a single objective call or unique() pass.
        K = self._memo_keys.shape[0]
        pos = np.searchsorted(self._memo_keys, keys)
        if K:
            hit = self._memo_keys[np.minimum(pos, K - 1)] == keys
        else:
            hit = np.zeros(keys.shape[0], dtype=bool)
        costs = np.empty(keys.shape[0])
        if hit.any():
            costs[hit] = self._memo_costs[pos[hit]]
        n_score = 0
        if not hit.all():
            miss = ~hit
            miss_keys, minv = np.unique(keys[miss], return_inverse=True)
            n_fresh = miss_keys.shape[0]
            # Budget clamp: score only the affordable prefix of the fresh
            # keys; the remainder costs +inf and stays OUT of the memo (an
            # unscored row must be rescored if a later run can afford it).
            n_score = self.budget.clamp_batch(n_fresh)
            miss_costs = np.full(n_fresh, np.inf)
            if n_score:
                # Unpack the packed keys back into rows (bijective, so the
                # unpacked digits are exactly the original row values).
                rem = miss_keys[:n_score].copy()
                miss_rows = np.empty((n_score, self.n_rows), dtype=np.int64)
                for c in range(self.n_rows - 1, -1, -1):
                    np.mod(rem, self.n_cols, out=miss_rows[:, c])
                    rem //= self.n_cols
                scored = np.asarray(self.objective(miss_rows), dtype=np.float64)
                if scored.shape != (n_score,):
                    raise ConfigurationError(
                        f"objective returned shape {scored.shape}, "
                        f"expected ({n_score},)"
                    )
                miss_costs[:n_score] = scored
                self.budget.charge(n_score)
            costs[miss] = miss_costs[minv]
            if n_score:
                # One-pass sorted merge of the freshly *scored* keys into
                # the memo (np.unique returns sorted keys, so the prefix is
                # itself sorted).
                ins = np.searchsorted(self._memo_keys, miss_keys[:n_score])
                tgt = ins + np.arange(n_score)
                new_keys = np.empty(K + n_score, dtype=np.int64)
                new_costs = np.empty(K + n_score)
                keep = np.ones(K + n_score, dtype=bool)
                keep[tgt] = False
                new_keys[tgt] = miss_keys[:n_score]
                new_costs[tgt] = miss_costs[:n_score]
                new_keys[keep] = self._memo_keys
                new_costs[keep] = self._memo_costs
                self._memo_keys = new_keys
                self._memo_costs = new_costs
        result.n_unique_evaluations += n_score
        result.dedup_rate_history.append(1.0 - n_score / flat.shape[0])
        return costs

    # -- the joint loop ---------------------------------------------------------
    def start(self) -> None:
        """Allocate joint live state for a fresh run; pairs with step/finalize."""
        cfg = self.config
        R = self.n_chains
        n_t, n_r = self.n_rows, self.n_cols
        # Fresh score memo per run (sorted key -> exact objective float).
        self._memo_keys = np.empty(0, dtype=np.int64)
        self._memo_costs = np.empty(0, dtype=np.float64)
        self._P = np.broadcast_to(self._P0, (R, n_t, n_r)).copy()
        self._best_costs = np.full(R, np.inf)
        self._best_xs = [np.zeros(n_t, dtype=np.int64) for _ in range(R)]
        self._chain_results = [
            CEResult(
                best_assignment=self._best_xs[r],
                best_cost=np.inf,
                n_iterations=0,
                n_evaluations=0,
                stop_reason="not run",
            )
            for r in range(R)
        ]
        self._joint = MultiChainResult(
            chains=self._chain_results,
            n_joint_iterations=0,
            n_evaluations=0,
            n_unique_evaluations=0,
        )
        self._live = list(range(R))
        self._k = 0
        for stopping in self._stoppings:
            stopping.reset()

        # Per-chain history rows, scatter-filled each joint iteration and
        # sliced into the CEResult list form when a chain stops.
        self._histories = (
            np.empty((R, cfg.max_iterations)),
            np.empty((R, cfg.max_iterations)),
            np.empty((R, cfg.max_iterations)),
            np.empty((R, cfg.max_iterations)),
        )

        # Vectorized stopping state (fast path): per-chain stability
        # counters maintained as arrays, replicating RowMaximaStable /
        # GammaStagnation / DegenerateMatrix / MaxIterations chain by
        # chain. Tolerances mirror the optimizer's criterion construction.
        if self._fast_stopping:
            self._rm_prev = np.zeros((R, n_t))
            self._rm_has_prev = np.zeros(R, dtype=bool)
            self._rm_stable = np.zeros(R, dtype=np.int64)
            self._g_prev = np.zeros(R)
            self._g_has_prev = np.zeros(R, dtype=bool)
            self._g_stable = np.zeros(R, dtype=np.int64)
            self._reasons = {
                StopKind.BUDGET: f"iteration budget of {cfg.max_iterations} exhausted",
                StopKind.ROW_MAXIMA_STABLE: (
                    f"row maxima stable for {cfg.stability_window} iterations (Eq. 12)"
                ),
                StopKind.GAMMA_STAGNATION: (
                    f"elite threshold gamma stagnant for {cfg.gamma_window} iterations"
                ),
                StopKind.DEGENERATE: "stochastic matrix degenerate",
            }
        self._started = True

    @property
    def finished(self) -> bool:
        """True once every chain has stopped (or the iteration cap is hit)."""
        return self._started and (
            not self._live or self._k >= self.config.max_iterations
        )

    @property
    def iteration(self) -> int:
        """Completed joint iterations of the current run."""
        return self._k

    @property
    def best_cost(self) -> float:
        """Lowest incumbent cost across all chains."""
        return float(np.min(self._best_costs)) if self._started else float("inf")

    @property
    def n_live(self) -> int:
        """Chains still advancing."""
        return len(self._live) if self._started else 0

    def step(self) -> bool:
        """One joint iteration over every live chain; True if any chain improved."""
        if not self._started:
            raise ConfigurationError("step() before start()")
        cfg = self.config
        N = cfg.n_samples
        n_t = self.n_rows
        P = self._P
        live = self._live
        best_costs = self._best_costs
        best_xs = self._best_xs
        chain_results = self._chain_results
        joint = self._joint
        histories = self._histories
        gh, bh, dh, eh = histories
        fast = self._fast_stopping
        if fast:
            rm_prev = self._rm_prev
            rm_has_prev = self._rm_has_prev
            rm_stable = self._rm_stable
            g_prev = self._g_prev
            g_has_prev = self._g_has_prev
            g_stable = self._g_stable
            reasons = self._reasons
        k = self._k + 1
        self._k = k
        joint.n_joint_iterations = k
        L = len(live)

        # 1. Sample all live chains. Each chain draws from its own
        #    generator in the exact order a sequential run would: one
        #    flat fill per chain covers both the order keys and the
        #    roulette uniforms (PCG64 fills doubles sequentially, so a
        #    single (2·N·n_t,) draw is stream-identical to the two
        #    separate draws the sequential sampler makes).
        if self._sampler == "permutation":
            buf = np.empty((L, 2 * N * n_t))
            for j, r in enumerate(live):
                self._gens[r].random(out=buf[j])
            rand_orders = buf[:, : N * n_t].reshape(L, N, n_t)
            rand_pos = buf[:, N * n_t :].reshape(L, n_t, N)
            Xs = sample_permutations_stacked(P[live], rand_orders, rand_pos)
        else:
            Xs = np.stack(
                [self._sample_one(P[r], N, self._gens[r]) for r in live]
            )

        # 2. One fused scoring call over every live chain's candidates.
        costs = self._score_joint(Xs.reshape(L * N, n_t), joint).reshape(L, N)

        # 3. Per-chain elite selection and best tracking. The exact-k
        #    mode is batched: one row-wise argpartition replaces L
        #    select_top_k calls (same partition kernel per row, so the
        #    elite sets and gammas match the sequential path exactly;
        #    the per-call NaN validation is skipped on this hot path).
        if self._select is select_top_k:
            k_elite = max(1, int(np.ceil(cfg.rho * N)))
            elite_idx2 = np.argpartition(costs, k_elite - 1, axis=1)[:, :k_elite]
            gammas = np.take_along_axis(costs, elite_idx2, axis=1).max(axis=1)
            elites_flat = Xs[np.arange(L)[:, np.newaxis], elite_idx2].reshape(
                L * k_elite, n_t
            )
            elite_sizes = np.full(L, k_elite, dtype=np.int64)
        else:
            gammas = np.empty(L)
            elite_chunks: list[np.ndarray] = []
            elite_sizes = np.empty(L, dtype=np.int64)
            for j in range(L):
                gamma, elite_idx = self._select(costs[j], cfg.rho)
                gammas[j] = gamma
                elite_chunks.append(Xs[j][elite_idx])
                elite_sizes[j] = elite_idx.shape[0]
            elites_flat = np.concatenate(elite_chunks)
        iter_best = np.argmin(costs, axis=1)
        iter_best_costs = costs[np.arange(L), iter_best]
        la = np.asarray(live, dtype=np.int64)
        improved = np.nonzero(iter_best_costs < best_costs[la])[0]
        if improved.size:
            best_costs[la[improved]] = iter_best_costs[improved]
            for j in improved:
                best_xs[live[j]] = Xs[j, iter_best[j]].copy()

        # 4. Stacked Eq. (11)+(13) update — one bincount for all chains.
        P_live = stacked_elite_update(
            P[live], elites_flat, elite_sizes, zeta=cfg.zeta
        )
        P[live] = P_live

        # 5. Vectorized per-chain diagnostics on the updated tensor.
        mu = P_live.max(axis=2)  # (L, n_rows) row maxima, Eq. (12)
        degeneracies = mu.mean(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            ent_terms = np.where(P_live > 0, -P_live * np.log(P_live), 0.0)
        entropies = ent_terms.sum(axis=2).mean(axis=1)

        # 6. Stopping. The fast path updates every chain's counters as
        #    array ops; firing priority follows the AnyOf order
        #    (budget, Eq. 12 stability, gamma stagnation, degeneracy).
        if fast:
            rm_close = rm_has_prev[la] & (
                np.abs(mu - rm_prev[la]) <= cfg.stability_tol
            ).all(axis=1)
            rm_stable[la] = np.where(rm_close, rm_stable[la] + 1, 0)
            rm_prev[la] = mu
            rm_has_prev[la] = True
            g_close = g_has_prev[la] & (np.abs(gammas - g_prev[la]) <= 1e-9)
            g_stable[la] = np.where(g_close, g_stable[la] + 1, 0)
            g_prev[la] = gammas
            g_has_prev[la] = True
            budget_fire = k >= cfg.max_iterations
            rm_fire = (
                rm_stable[la] >= cfg.stability_window
                if cfg.stability_window > 0
                else np.zeros(L, dtype=bool)
            )
            g_fire = (
                g_stable[la] >= cfg.gamma_window
                if cfg.gamma_window > 0
                else np.zeros(L, dtype=bool)
            )
            deg_fire = (mu >= 1.0 - 1e-6).all(axis=1)

        # 7. Histories land in preallocated per-chain rows (converted
        #    to the sequential run's list form only at finalize) and
        #    stopped chains retire from the live set. The common
        #    mid-run case — nobody fires — is a single branch.
        gh[la, k - 1] = gammas
        bh[la, k - 1] = best_costs[la]
        dh[la, k - 1] = degeneracies
        eh[la, k - 1] = entropies
        if cfg.track_matrices and (k - 1) % cfg.matrix_snapshot_every == 0:
            for r in live:
                chain_results[r].matrix_history.append(P[r].copy())
        if fast:
            fired = rm_fire | g_fire | deg_fire
            if budget_fire:
                fired = np.ones(L, dtype=bool)
            if not fired.any():
                return bool(improved.size)
            survivors: list[int] = []
            for j, r in enumerate(live):
                if not fired[j]:
                    survivors.append(r)
                    continue
                if budget_fire:
                    kind = StopKind.BUDGET
                elif rm_fire[j]:
                    kind = StopKind.ROW_MAXIMA_STABLE
                elif g_fire[j]:
                    kind = StopKind.GAMMA_STAGNATION
                else:
                    kind = StopKind.DEGENERATE
                res = chain_results[r]
                res.stop_reason = reasons[kind]
                res.stop_kind = kind
                self._finalize_chain(
                    res, r, k, P[r], best_costs[r], best_xs[r], histories
                )
            self._live = survivors
        else:
            survivors = []
            for j, r in enumerate(live):
                state = IterationState(
                    iteration=k,
                    gamma=float(gammas[j]),
                    best_cost=float(best_costs[r]),
                    matrix=StochasticMatrix._from_trusted(P[r]),
                )
                if self._stoppings[r].update(state):
                    res = chain_results[r]
                    res.stop_reason = self._stoppings[r].reason
                    res.stop_kind = self._stoppings[r].kind
                    self._finalize_chain(
                        res, r, k, P[r], best_costs[r], best_xs[r], histories
                    )
                else:
                    survivors.append(r)
            self._live = survivors
        return bool(improved.size)

    def note_external_stop(self, reason: str) -> None:
        """Freeze every still-live chain with an EXTERNAL stop (budget/interrupt)."""
        if not self._started:
            return
        for r in self._live:
            res = self._chain_results[r]
            res.stop_reason = reason
            res.stop_kind = StopKind.EXTERNAL
            self._finalize_chain(
                res,
                r,
                self._k,
                self._P[r],
                self._best_costs[r],
                self._best_xs[r],
                self._histories,
            )
        self._live = []

    def finalize(self) -> MultiChainResult:
        """Freeze any leftover live chains and return the joint result."""
        if not self._started:
            raise ConfigurationError("finalize() before start()")
        # MaxIterations bounds the loop, so every chain has stopped by now
        # whenever step() ran to completion; the guard below is a safety net
        # for external termination between steps.
        for r in self._live:
            res = self._chain_results[r]
            res.stop_reason = "iteration budget exhausted"
            res.stop_kind = StopKind.BUDGET
            self._finalize_chain(
                res,
                r,
                self._joint.n_joint_iterations,
                self._P[r],
                self._best_costs[r],
                self._best_xs[r],
                self._histories,
            )
        self._live = []
        return self._joint

    def run(self) -> MultiChainResult:
        """Advance every chain to its own stopping point; return all results."""
        self.start()
        while not self.finished:
            self.step()
        return self.finalize()

    def _finalize_chain(
        self,
        res: CEResult,
        r: int,
        n_iter: int,
        P_r: np.ndarray,
        best_cost: float,
        best_x: np.ndarray,
        histories: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        """Freeze a chain's result exactly as the sequential run would."""
        gh, bh, dh, eh = histories
        res.n_iterations = n_iter
        res.n_evaluations = self.config.n_samples * n_iter
        res.gamma_history = gh[r, :n_iter].tolist()
        res.best_cost_history = bh[r, :n_iter].tolist()
        res.degeneracy_history = dh[r, :n_iter].tolist()
        res.entropy_history = eh[r, :n_iter].tolist()
        res.best_assignment = best_x
        res.best_cost = float(best_cost)
        res.final_matrix = P_r.copy()
        if self.config.track_matrices and (
            not res.matrix_history
            or not np.array_equal(res.matrix_history[-1], res.final_matrix)
        ):
            res.matrix_history.append(res.final_matrix)
