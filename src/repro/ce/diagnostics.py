"""Convergence diagnostics for CE runs.

Quantities that explain *how* a run converged, consumed by the trace
examples and the convergence study:

* :func:`commit_iterations` — per task, the iteration at which its row's
  argmax last changed (when the matrix "committed" that task);
* :func:`elite_diversity` — the effective number of distinct mappings in
  an elite set (exp of the entropy of the duplicate distribution); a
  collapsing diversity signals the sampler has degenerated;
* :func:`mass_trajectory` — probability mass assigned to the final decoded
  mapping over the run's snapshots (the quantitative story of Fig. 3);
* :func:`iterations_to_degeneracy` — first snapshot index at which mean
  row maxima exceeded a threshold.
"""

from __future__ import annotations

import numpy as np

from repro.ce.optimizer import CEResult
from repro.exceptions import ValidationError
from repro.types import AssignmentBatch

__all__ = [
    "commit_iterations",
    "elite_diversity",
    "mass_trajectory",
    "iterations_to_degeneracy",
]


def _require_history(result: CEResult) -> list[np.ndarray]:
    if not result.matrix_history:
        raise ValidationError(
            "no matrix snapshots recorded; run with track_matrices=True"
        )
    return result.matrix_history


def commit_iterations(result: CEResult) -> np.ndarray:
    """Snapshot index after which each row's argmax never changed again.

    Returns an ``(n_rows,)`` int array; 0 means the row was committed from
    the first snapshot on.
    """
    history = _require_history(result)
    argmaxes = np.stack([m.argmax(axis=1) for m in history])  # (T, n)
    final = argmaxes[-1]
    T, n = argmaxes.shape
    commit = np.zeros(n, dtype=np.int64)
    for i in range(n):
        differs = np.flatnonzero(argmaxes[:, i] != final[i])
        commit[i] = differs[-1] + 1 if differs.size else 0
    return commit


def elite_diversity(elites: AssignmentBatch) -> float:
    """Effective number of distinct mappings in an elite batch.

    ``exp(H)`` of the empirical distribution over distinct rows: equals
    the count of distinct elites when all are unique, 1.0 when all are
    copies of one mapping.
    """
    E = np.asarray(elites)
    if E.ndim != 2 or E.shape[0] == 0:
        raise ValidationError(f"elites must be a non-empty 2-D batch, got {E.shape}")
    _, counts = np.unique(E, axis=0, return_counts=True)
    p = counts / counts.sum()
    H = float(-(p * np.log(p)).sum())
    return float(np.exp(H))


def mass_trajectory(result: CEResult) -> np.ndarray:
    """Mean probability the matrix assigned the final decode, per snapshot.

    Starts near ``1/n_cols`` (uniform) and approaches 1.0 as the matrix
    degenerates — the scalar summary of Fig. 3's panels.
    """
    history = _require_history(result)
    final_decode = history[-1].argmax(axis=1)
    rows = np.arange(history[0].shape[0])
    return np.array([m[rows, final_decode].mean() for m in history])


def iterations_to_degeneracy(result: CEResult, *, threshold: float = 0.9) -> int:
    """First snapshot index with mean row maxima >= ``threshold``.

    Returns ``-1`` if the run never reached it (useful in sweeps comparing
    commitment speed across ζ or ρ values).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValidationError(f"threshold must be in (0, 1], got {threshold}")
    history = _require_history(result)
    for k, m in enumerate(history):
        if m.max(axis=1).mean() >= threshold:
            return k
    return -1
