"""CE for max-cut — the canonical COP of the method's literature.

The paper cites Rubinstein's "The cross-entropy method and rare-events for
maximal cut and bipartition problems" [23] as the archetype CE
application. Implementing it here (a) demonstrates the engine's
generality beyond mapping and (b) gives the test suite a combinatorial
problem with *known* optima on structured graphs (complete bipartite
graphs, small enumerable instances).

Formulation: a cut is a 0/1 vector over vertices; the sampling family is
independent Bernoulli per vertex, i.e. an ``(n, 2)`` stochastic matrix
driven through the generic :class:`~repro.ce.optimizer.CrossEntropyOptimizer`
with the ``"independent"`` sampler. The first vertex is pinned to side 0
(cuts are symmetric under complement; pinning halves the space).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ce.optimizer import CEConfig, CEResult, CrossEntropyOptimizer
from repro.exceptions import ValidationError
from repro.graphs.base import WeightedGraph
from repro.types import SeedLike

__all__ = ["MaxCutResult", "cut_value", "ce_max_cut"]


@dataclass(frozen=True)
class MaxCutResult:
    """Outcome of a CE max-cut run."""

    partition: np.ndarray  # 0/1 side per vertex
    cut_value: float
    n_iterations: int
    n_evaluations: int


def cut_value(graph: WeightedGraph, partition: np.ndarray) -> float:
    """Total weight of edges crossing the cut."""
    part = np.asarray(partition)
    if part.shape != (graph.n_nodes,):
        raise ValidationError(
            f"partition must have shape ({graph.n_nodes},), got {part.shape}"
        )
    if graph.n_edges == 0:
        return 0.0
    u, v = graph.edges[:, 0], graph.edges[:, 1]
    crossing = part[u] != part[v]
    return float(graph.edge_weights[crossing].sum())


def ce_max_cut(
    graph: WeightedGraph,
    *,
    n_samples: int | None = None,
    rho: float = 0.1,
    zeta: float = 0.7,
    max_iterations: int = 200,
    rng: SeedLike = None,
) -> MaxCutResult:
    """Maximize the cut of ``graph`` with the CE method.

    Each vertex's side is a Bernoulli driven by a row of the stochastic
    matrix; elites re-fit the Bernoulli means (Eq. (11) with two columns).
    Vertex 0 is pinned to side 0 via the initial matrix (its row starts
    and stays degenerate because every elite agrees with it).
    """
    n = graph.n_nodes
    if n < 2:
        return MaxCutResult(
            partition=np.zeros(max(n, 1), dtype=np.int64),
            cut_value=0.0,
            n_iterations=0,
            n_evaluations=0,
        )
    if n_samples is None:
        n_samples = max(50, 10 * n)

    u, v = graph.edges[:, 0], graph.edges[:, 1]
    weights = graph.edge_weights

    def negative_cut(X: np.ndarray) -> np.ndarray:
        # engine minimizes; return -cut. Vectorized over the batch.
        if weights.size == 0:
            return np.zeros(X.shape[0])
        crossing = X[:, u] != X[:, v]  # (N, E)
        return -(crossing * weights[np.newaxis, :]).sum(axis=1)

    initial = np.full((n, 2), 0.5)
    initial[0] = (1.0, 0.0)  # pin vertex 0 to side 0

    cfg = CEConfig(
        n_samples=n_samples,
        rho=rho,
        zeta=zeta,
        max_iterations=max_iterations,
    )
    opt = CrossEntropyOptimizer(
        negative_cut, n, 2, cfg, sampler="independent", rng=rng,
        initial_matrix=initial,
    )
    result: CEResult = opt.run()
    partition = result.best_assignment.astype(np.int64)
    return MaxCutResult(
        partition=partition,
        cut_value=cut_value(graph, partition),
        n_iterations=result.n_iterations,
        n_evaluations=result.n_evaluations,
    )
