"""GenPerm — sampling valid one-to-one mappings from the stochastic matrix.

Fig. 4 of the paper: visit the tasks in a fresh random order; allocate each
task a resource drawn from its row of ``P`` restricted to the resources not
taken yet (zero the chosen column, renormalize the remaining rows). The
result is always a valid one-to-one mapping, i.e. a permutation when
``|V_t| = |V_r|``, while remaining faithful to the row distributions.

:func:`sample_permutations` vectorizes the procedure across the whole batch
of ``N`` samples: a single Python loop over the ``n`` *positions* performs
batched row gathers, masked cumulative sums and inverse-CDF draws — the
roulette-wheel selection §5.2 describes — so one CE iteration costs
O(N·n²) numpy work with no per-sample Python overhead.

:func:`sample_assignments` is the unconstrained sampler of Eq. (8) (each
task independent), used by the theory-side demos and the rare-event module.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.types import AssignmentBatch, ProbabilityMatrix, SeedLike
from repro.utils.rng import as_generator

__all__ = ["sample_permutations", "sample_assignments", "genperm_exact_probabilities"]


def _check_matrix(P: ProbabilityMatrix, *, one_to_one: bool = False) -> np.ndarray:
    arr = np.asarray(P, dtype=np.float64)
    if arr.ndim != 2:
        raise ValidationError(f"P must be 2-D, got shape {arr.shape}")
    if one_to_one and arr.shape[0] > arr.shape[1]:
        raise ValidationError(
            f"one-to-one sampling needs n_tasks <= n_resources, got shape {arr.shape}"
        )
    if np.any(arr < 0):
        raise ValidationError("P has negative entries")
    return arr


def sample_assignments(
    P: ProbabilityMatrix, n_samples: int, rng: SeedLike = None
) -> AssignmentBatch:
    """Draw ``n_samples`` unconstrained assignments, each row i.i.d. from ``P[i]``.

    This is the naive sampler of Eq. (8); it may (and usually does) produce
    many-to-one mappings. Vectorized inverse-CDF sampling per row.
    """
    arr = _check_matrix(P)
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    gen = as_generator(rng)
    n_rows, _ = arr.shape
    cdf = np.cumsum(arr, axis=1)  # (n_rows, n_cols)
    totals = cdf[:, -1]
    if np.any(totals <= 0):
        raise ValidationError("P has a zero row; cannot sample")
    u = gen.random((n_samples, n_rows)) * totals[np.newaxis, :]
    # For each (sample, row): first column index with cdf > u.
    choice = np.empty((n_samples, n_rows), dtype=np.int64)
    for i in range(n_rows):
        choice[:, i] = np.searchsorted(cdf[i], u[:, i], side="right")
    return np.minimum(choice, arr.shape[1] - 1)


def sample_permutations(
    P: ProbabilityMatrix,
    n_samples: int,
    rng: SeedLike = None,
    *,
    task_orders: np.ndarray | None = None,
) -> AssignmentBatch:
    """Batched GenPerm (Fig. 4): ``n_samples`` valid one-to-one mappings.

    Parameters
    ----------
    P:
        ``(n_tasks, n_resources)`` non-negative matrix (rows need not be
        exactly normalized; the masked renormalization handles it).
    n_samples:
        Batch size ``N``.
    rng:
        Seed or generator.
    task_orders:
        Optional ``(n_samples, n_tasks)`` permutation rows fixing the task
        visit order per sample (used by tests); default fresh random
        orders, one per sample, as in Fig. 4 step 1.

    Returns
    -------
    ``(n_samples, n_tasks)`` batch; each row has distinct resource values.

    Notes
    -----
    When the remaining (masked) row mass of a task vanishes — routine once
    ``P`` is nearly degenerate and the preferred resource is taken — the
    draw falls back to uniform over the unused resources, which matches
    the limit behaviour of renormalizing an all-zero row and keeps every
    sample valid.
    """
    arr = _check_matrix(P, one_to_one=True)
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    n_tasks, n_res = arr.shape
    gen = as_generator(rng)

    if task_orders is None:
        # argsort of uniforms = independent uniform random permutations.
        task_orders = np.argsort(gen.random((n_samples, n_tasks)), axis=1)
    else:
        task_orders = np.asarray(task_orders, dtype=np.int64)
        if task_orders.shape != (n_samples, n_tasks):
            raise ValidationError(
                f"task_orders must have shape ({n_samples}, {n_tasks}), "
                f"got {task_orders.shape}"
            )

    X = np.full((n_samples, n_tasks), -1, dtype=np.int64)
    used = np.zeros((n_samples, n_res), dtype=bool)
    rows = np.arange(n_samples)

    for pos in range(n_tasks):
        tasks = task_orders[:, pos]  # (N,)
        probs = arr[tasks]  # (N, n_res) gather
        probs = np.where(used, 0.0, probs)
        mass = probs.sum(axis=1)
        dead = mass <= 0.0
        if dead.any():
            # Uniform over unused resources for exhausted rows.
            probs[dead] = (~used[dead]).astype(np.float64)
            mass = probs.sum(axis=1)
        cdf = np.cumsum(probs, axis=1)
        u = gen.random(n_samples) * mass
        choice = (cdf <= u[:, np.newaxis]).sum(axis=1)
        np.minimum(choice, n_res - 1, out=choice)
        # Float-edge guard: if a clamped draw hit a used column, take the
        # first unused resource instead (probability ~ machine epsilon).
        bad = used[rows, choice]
        if bad.any():
            choice[bad] = np.argmax(~used[bad], axis=1)
        X[rows, tasks] = choice
        used[rows, choice] = True
    return X


def genperm_exact_probabilities(
    P: ProbabilityMatrix, *, max_n: int = 8
) -> dict[tuple[int, ...], float]:
    """Exact GenPerm output distribution for small square matrices.

    Enumerates every task visit order (Fig. 4 draws one uniformly) and,
    within each order, every branch of the masked roulette draws —
    including the uniform-over-unused fallback for exhausted rows — and
    accumulates each resulting permutation's probability. The values sum
    to one exactly (up to float error).

    Exponential in ``n`` (``n! × n!`` branches in the worst case), so
    guarded by ``max_n``; this is a *verification oracle* for the sampler,
    used by the test suite to statistically validate
    :func:`sample_permutations`, not a production path.
    """
    from itertools import permutations as _perms

    arr = _check_matrix(P, one_to_one=True)
    n_tasks, n_res = arr.shape
    if n_tasks != n_res:
        raise ValidationError("exact enumeration supports square matrices only")
    n = n_tasks
    if n > max_n:
        raise ValidationError(f"exact enumeration limited to n <= {max_n}, got {n}")

    out: dict[tuple[int, ...], float] = {}
    orders = list(_perms(range(n)))
    order_p = 1.0 / len(orders)

    def walk(order: tuple[int, ...], pos: int, used: int,
             assignment: list[int], prob: float) -> None:
        if pos == n:
            key = tuple(assignment)
            out[key] = out.get(key, 0.0) + prob
            return
        task = order[pos]
        row = arr[task]
        free = [j for j in range(n) if not (used >> j) & 1]
        mass = float(sum(row[j] for j in free))
        for j in free:
            p_j = (row[j] / mass) if mass > 0 else 1.0 / len(free)
            if p_j <= 0:
                continue
            assignment[task] = j
            walk(order, pos + 1, used | (1 << j), assignment, prob * p_j)
        assignment[task] = -1

    for order in orders:
        walk(order, 0, 0, [-1] * n, order_p)
    return out
