"""GenPerm — sampling valid one-to-one mappings from the stochastic matrix.

Fig. 4 of the paper: visit the tasks in a fresh random order; allocate each
task a resource drawn from its row of ``P`` restricted to the resources not
taken yet (zero the chosen column, renormalize the remaining rows). The
result is always a valid one-to-one mapping, i.e. a permutation when
``|V_t| = |V_r|``, while remaining faithful to the row distributions.

:func:`sample_permutations` vectorizes the procedure across the whole batch
of ``N`` samples: a single Python loop over the ``n`` *positions* performs
batched row gathers, masked cumulative sums and inverse-CDF draws — the
roulette-wheel selection §5.2 describes — so one CE iteration costs
O(N·n²) numpy work with no per-sample Python overhead. The per-position
work reuses preallocated gather/CDF buffers, so the loop allocates O(1)
arrays regardless of ``n``.

:func:`sample_permutations_stacked` lifts the same position loop to a
whole *stack* of stochastic matrices at once — ``R`` independent CE chains
advance through one flattened ``(R·N, n_res)`` view with per-chain row
gathers. Chain ``r`` of the stacked call is bit-identical to a standalone
:func:`sample_permutations` call fed the same uniforms, which is what lets
the multi-chain engine reproduce sequential runs seed-for-seed.

:func:`sample_assignments` is the unconstrained sampler of Eq. (8) (each
task independent), used by the theory-side demos and the rare-event module.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.types import AssignmentBatch, ProbabilityMatrix, SeedLike
from repro.utils.rng import as_generator

__all__ = [
    "sample_permutations",
    "sample_permutations_stacked",
    "sample_assignments",
    "genperm_exact_probabilities",
]


def _check_matrix(P: ProbabilityMatrix, *, one_to_one: bool = False) -> np.ndarray:
    arr = np.asarray(P, dtype=np.float64)
    if arr.ndim != 2:
        raise ValidationError(f"P must be 2-D, got shape {arr.shape}")
    if one_to_one and arr.shape[0] > arr.shape[1]:
        raise ValidationError(
            f"one-to-one sampling needs n_tasks <= n_resources, got shape {arr.shape}"
        )
    if np.any(arr < 0):
        raise ValidationError("P has negative entries")
    return arr


def sample_assignments(
    P: ProbabilityMatrix, n_samples: int, rng: SeedLike = None
) -> AssignmentBatch:
    """Draw ``n_samples`` unconstrained assignments, each row i.i.d. from ``P[i]``.

    This is the naive sampler of Eq. (8); it may (and usually does) produce
    many-to-one mappings. One batched inverse-CDF draw covers every
    (sample, row) cell: counting the CDF entries at or below the uniform is
    exactly ``searchsorted(..., side="right")``, broadcast over the batch.
    """
    arr = _check_matrix(P)
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    gen = as_generator(rng)
    n_rows, _ = arr.shape
    cdf = np.cumsum(arr, axis=1)  # (n_rows, n_cols)
    totals = cdf[:, -1]
    if np.any(totals <= 0):
        raise ValidationError("P has a zero row; cannot sample")
    u = gen.random((n_samples, n_rows)) * totals[np.newaxis, :]
    choice = (cdf[np.newaxis, :, :] <= u[:, :, np.newaxis]).sum(axis=2, dtype=np.int64)
    return np.minimum(choice, arr.shape[1] - 1)


def sample_permutations(
    P: ProbabilityMatrix,
    n_samples: int,
    rng: SeedLike = None,
    *,
    task_orders: np.ndarray | None = None,
) -> AssignmentBatch:
    """Batched GenPerm (Fig. 4): ``n_samples`` valid one-to-one mappings.

    Parameters
    ----------
    P:
        ``(n_tasks, n_resources)`` non-negative matrix (rows need not be
        exactly normalized; the masked renormalization handles it).
    n_samples:
        Batch size ``N``.
    rng:
        Seed or generator.
    task_orders:
        Optional ``(n_samples, n_tasks)`` permutation rows fixing the task
        visit order per sample (used by tests); default fresh random
        orders, one per sample, as in Fig. 4 step 1.

    Returns
    -------
    ``(n_samples, n_tasks)`` batch; each row has distinct resource values.

    Notes
    -----
    When the remaining (masked) row mass of a task vanishes — routine once
    ``P`` is nearly degenerate and the preferred resource is taken — the
    draw falls back to uniform over the unused resources, which matches
    the limit behaviour of renormalizing an all-zero row and keeps every
    sample valid.
    """
    arr = _check_matrix(P, one_to_one=True)
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    n_tasks, n_res = arr.shape
    gen = as_generator(rng)

    if task_orders is None:
        # argsort of uniforms = independent uniform random permutations.
        task_orders = np.argsort(gen.random((n_samples, n_tasks)), axis=1)
    else:
        task_orders = np.asarray(task_orders, dtype=np.int64)
        if task_orders.shape != (n_samples, n_tasks):
            raise ValidationError(
                f"task_orders must have shape ({n_samples}, {n_tasks}), "
                f"got {task_orders.shape}"
            )

    # Drawing all position uniforms up front is stream-equivalent to the
    # per-position draws of the original loop (numpy fills C-contiguous
    # output row by row from the same bit stream).
    rand_pos = gen.random((n_tasks, n_samples))
    P_cols = np.ascontiguousarray(arr.T)
    return _genperm_position_loop(P_cols, None, task_orders, rand_pos, n_res)


def _genperm_position_loop(
    P_cols: np.ndarray,
    dist_offsets: np.ndarray | None,
    task_orders: np.ndarray,
    rand_pos: np.ndarray,
    n_res: int,
) -> np.ndarray:
    """The shared GenPerm position loop over a flattened sample batch.

    Parameters
    ----------
    P_cols:
        ``(n_res, n_dists · n_tasks)`` column-major (transposed) stack of
        stochastic matrices; column ``d·n_tasks + t`` is task ``t``'s row
        of matrix ``d``. A single matrix when ``dist_offsets`` is None.
    dist_offsets:
        ``(B,)`` column offset of each sample's matrix block
        (``chain · n_tasks``), or None when every sample draws from the
        same matrix.
    task_orders:
        ``(B, n_tasks)`` task visit orders.
    rand_pos:
        ``(n_tasks, B)`` pre-drawn uniforms; row ``pos`` is consumed at
        visit position ``pos``.

    The resources-first layout keeps every per-position reduction
    (masking, mass, CDF, inverse-CDF count) running along the long
    contiguous sample axis — full-width SIMD passes instead of
    length-``n_res`` strided reductions (measured: a samples-major layout
    with last-axis ``cumsum``/bool-sum is ~4-6× slower per op at
    ``B = 6000``) — and every scratch array (gathered columns, CDF,
    comparison mask) is allocated once and reused across the ``n_tasks``
    positions.
    """
    B, n_tasks = task_orders.shape
    X = np.full((B, n_tasks), -1, dtype=np.int64)
    # Float 0/1 availability mask: float·float multiplies and row copies
    # stay pure SIMD (a bool mask would force a casting buffer per pass).
    unused = np.ones((n_res, B), dtype=np.float64)
    rows = np.arange(B)
    probs = np.empty((n_res, B), dtype=np.float64)
    cdf = np.empty((n_res, B), dtype=np.float64)
    below = np.empty((n_res, B), dtype=bool)
    choice = np.empty(B, dtype=np.int64)
    u = np.empty(B, dtype=np.float64)
    # Square case: after n-1 placements exactly one resource remains, so
    # the last roulette draw is forced — track the remaining resource as a
    # running index sum and skip the whole final gather/CDF pass. (The
    # final uniform was still pre-drawn, so the RNG stream is identical.)
    square = n_tasks == n_res
    if square:
        rem = np.full(B, n_res * (n_res - 1) // 2, dtype=np.int64)

    for pos in range(n_tasks):
        tasks = task_orders[:, pos]  # (B,)
        if square and pos == n_tasks - 1:
            X[rows, tasks] = rem
            break
        gather_idx = tasks if dist_offsets is None else dist_offsets + tasks
        # mode="clip" skips per-element bounds checks (indices are valid
        # by construction) — measurably faster than the default mode.
        np.take(P_cols, gather_idx, axis=1, out=probs, mode="clip")
        np.multiply(probs, unused, out=probs)  # zero the taken resources
        # Running CDF down the resource axis via row-wise contiguous adds
        # (np.cumsum over axis 0 falls back to a strided loop); the last
        # row doubles as the remaining mass.
        np.copyto(cdf[0], probs[0])
        for i in range(1, n_res):
            np.add(cdf[i - 1], probs[i], out=cdf[i])
        mass = cdf[n_res - 1]
        dead = mass <= 0.0
        if dead.any():
            # Uniform over unused resources for exhausted samples; redo
            # the CDF for just those columns (mass is a view, so it sees
            # the fix).
            probs[:, dead] = unused[:, dead]
            cdf[:, dead] = np.cumsum(probs[:, dead], axis=0)
        np.multiply(rand_pos[pos], mass, out=u)
        np.less_equal(cdf, u[np.newaxis, :], out=below)
        # choice = below.sum(axis=0), as contiguous row adds.
        np.copyto(choice, below[0], casting="unsafe")
        for i in range(1, n_res):
            choice += below[i]
        # Float-edge guard. A mid-range draw can never land on a used
        # (zero-probability) resource: that would need
        # cdf[c-1] <= u < cdf[c] with cdf[c] == cdf[c-1]. Only the
        # overflow case u >= mass (rounding at rand ~ 1.0) needs care:
        # clamp it and, if the last resource is taken, fall back to the
        # first unused one — probability ~ machine epsilon, so one cheap
        # max() replaces a per-position gathered mask check.
        if int(choice.max()) == n_res:
            over = choice == n_res
            choice[over] = n_res - 1
            bad = over & (unused[n_res - 1] == 0.0)  # repro: noqa[float-equality] -- consumed mass is written as exact 0.0 below
            if bad.any():
                choice[bad] = np.argmax(unused[:, bad], axis=0)
        X[rows, tasks] = choice
        unused[choice, rows] = 0.0
        if square:
            rem -= choice
    return X


def sample_permutations_stacked(
    P_stack: np.ndarray,
    rand_orders: np.ndarray,
    rand_pos: np.ndarray,
) -> np.ndarray:
    """Multi-chain GenPerm: one position loop over ``R`` stacked matrices.

    Parameters
    ----------
    P_stack:
        ``(R, n_tasks, n_res)`` stack of non-negative matrices, one per
        chain.
    rand_orders:
        ``(R, N, n_tasks)`` uniforms; per chain, ``argsort`` of each row
        fixes that sample's task visit order (Fig. 4 step 1).
    rand_pos:
        ``(R, n_tasks, N)`` uniforms driving the roulette draws; chain
        ``r``'s block must come from chain ``r``'s own generator for
        seed-for-seed equivalence with single-chain runs.

    Returns
    -------
    ``(R, N, n_tasks)`` batch; slice ``r`` is bit-identical to
    ``sample_permutations(P_stack[r], N, gen_r)`` when ``rand_orders[r]``
    and ``rand_pos[r]`` are ``gen_r.random((N, n_tasks))`` followed by
    ``gen_r.random((n_tasks, N))``.
    """
    P_stack = np.asarray(P_stack, dtype=np.float64)
    if P_stack.ndim != 3:
        raise ValidationError(f"P_stack must be 3-D, got shape {P_stack.shape}")
    R, n_tasks, n_res = P_stack.shape
    if n_tasks > n_res:
        raise ValidationError(
            f"one-to-one sampling needs n_tasks <= n_resources, got {P_stack.shape}"
        )
    if rand_orders.shape[0] != R or rand_orders.shape[2] != n_tasks:
        raise ValidationError(
            f"rand_orders must have shape ({R}, N, {n_tasks}), got {rand_orders.shape}"
        )
    N = rand_orders.shape[1]
    if rand_pos.shape != (R, n_tasks, N):
        raise ValidationError(
            f"rand_pos must have shape ({R}, {n_tasks}, {N}), got {rand_pos.shape}"
        )
    task_orders = np.argsort(rand_orders, axis=2).reshape(R * N, n_tasks)
    dist_offsets = np.repeat(np.arange(R, dtype=np.int64) * n_tasks, N)
    pos_u = rand_pos.transpose(1, 0, 2).reshape(n_tasks, R * N)
    P_cols = np.ascontiguousarray(P_stack.transpose(2, 0, 1).reshape(n_res, R * n_tasks))
    X = _genperm_position_loop(P_cols, dist_offsets, task_orders, pos_u, n_res)
    return X.reshape(R, N, n_tasks)


def genperm_exact_probabilities(
    P: ProbabilityMatrix, *, max_n: int = 8
) -> dict[tuple[int, ...], float]:
    """Exact GenPerm output distribution for small square matrices.

    Enumerates every task visit order (Fig. 4 draws one uniformly) and,
    within each order, every branch of the masked roulette draws —
    including the uniform-over-unused fallback for exhausted rows — and
    accumulates each resulting permutation's probability. The values sum
    to one exactly (up to float error).

    Exponential in ``n`` (``n! × n!`` branches in the worst case), so
    guarded by ``max_n``; this is a *verification oracle* for the sampler,
    used by the test suite to statistically validate
    :func:`sample_permutations`, not a production path.
    """
    from itertools import permutations as _perms

    arr = _check_matrix(P, one_to_one=True)
    n_tasks, n_res = arr.shape
    if n_tasks != n_res:
        raise ValidationError("exact enumeration supports square matrices only")
    n = n_tasks
    if n > max_n:
        raise ValidationError(f"exact enumeration limited to n <= {max_n}, got {n}")

    out: dict[tuple[int, ...], float] = {}
    orders = list(_perms(range(n)))
    order_p = 1.0 / len(orders)

    def walk(order: tuple[int, ...], pos: int, used: int,
             assignment: list[int], prob: float) -> None:
        if pos == n:
            key = tuple(assignment)
            out[key] = out.get(key, 0.0) + prob
            return
        task = order[pos]
        row = arr[task]
        free = [j for j in range(n) if not (used >> j) & 1]
        mass = float(sum(row[j] for j in free))
        for j in free:
            p_j = (row[j] / mass) if mass > 0 else 1.0 / len(free)
            if p_j <= 0:
                continue
            assignment[task] = j
            walk(order, pos + 1, used | (1 << j), assignment, prob * p_j)
        assignment[task] = -1

    for order in orders:
        walk(order, 0, 0, [-1] * n, order_p)
    return out
