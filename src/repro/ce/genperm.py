"""GenPerm — sampling valid one-to-one mappings from the stochastic matrix.

Fig. 4 of the paper: visit the tasks in a fresh random order; allocate each
task a resource drawn from its row of ``P`` restricted to the resources not
taken yet (zero the chosen column, renormalize the remaining rows). The
result is always a valid one-to-one mapping, i.e. a permutation when
``|V_t| = |V_r|``, while remaining faithful to the row distributions.

:func:`sample_permutations` runs the procedure for a whole batch of ``N``
samples through the process-active kernel backend
(:mod:`repro.kernels`): the masked roulette-wheel position loop §5.2
describes — batched row gathers, masked cumulative sums and inverse-CDF
draws — executes as compiled code (numba or C) when available and as the
vectorized numpy reference otherwise, all backends bit-identical. The
uniforms are pre-drawn *outside* the kernel (one block for the task
orders, one for the roulette draws), so the RNG stream position never
depends on the backend.

:func:`sample_permutations_stacked` lifts the same position loop to a
whole *stack* of stochastic matrices at once — ``R`` independent CE chains
advance through one flattened ``(R·N, n_res)`` view with per-chain row
gathers. Chain ``r`` of the stacked call is bit-identical to a standalone
:func:`sample_permutations` call fed the same uniforms, which is what lets
the multi-chain engine reproduce sequential runs seed-for-seed.

:func:`sample_assignments` is the unconstrained sampler of Eq. (8) (each
task independent), used by the theory-side demos and the rare-event module.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.exceptions import ValidationError
from repro.types import AssignmentBatch, ProbabilityMatrix, SeedLike
from repro.utils.rng import as_generator

__all__ = [
    "sample_permutations",
    "sample_permutations_stacked",
    "sample_assignments",
    "genperm_exact_probabilities",
]


def _check_matrix(P: ProbabilityMatrix, *, one_to_one: bool = False) -> np.ndarray:
    arr = np.asarray(P, dtype=np.float64)
    if arr.ndim != 2:
        raise ValidationError(f"P must be 2-D, got shape {arr.shape}")
    if one_to_one and arr.shape[0] > arr.shape[1]:
        raise ValidationError(
            f"one-to-one sampling needs n_tasks <= n_resources, got shape {arr.shape}"
        )
    if np.any(arr < 0):
        raise ValidationError("P has negative entries")
    return arr


def sample_assignments(
    P: ProbabilityMatrix, n_samples: int, rng: SeedLike = None
) -> AssignmentBatch:
    """Draw ``n_samples`` unconstrained assignments, each row i.i.d. from ``P[i]``.

    This is the naive sampler of Eq. (8); it may (and usually does) produce
    many-to-one mappings. One batched inverse-CDF draw covers every
    (sample, row) cell: counting the CDF entries at or below the uniform is
    exactly ``searchsorted(..., side="right")``, broadcast over the batch.
    """
    arr = _check_matrix(P)
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    gen = as_generator(rng)
    n_rows, _ = arr.shape
    cdf = np.cumsum(arr, axis=1)  # (n_rows, n_cols)
    totals = cdf[:, -1]
    if np.any(totals <= 0):
        raise ValidationError("P has a zero row; cannot sample")
    u = gen.random((n_samples, n_rows)) * totals[np.newaxis, :]
    choice = (cdf[np.newaxis, :, :] <= u[:, :, np.newaxis]).sum(axis=2, dtype=np.int64)
    return np.minimum(choice, arr.shape[1] - 1)


def sample_permutations(
    P: ProbabilityMatrix,
    n_samples: int,
    rng: SeedLike = None,
    *,
    task_orders: np.ndarray | None = None,
) -> AssignmentBatch:
    """Batched GenPerm (Fig. 4): ``n_samples`` valid one-to-one mappings.

    Parameters
    ----------
    P:
        ``(n_tasks, n_resources)`` non-negative matrix (rows need not be
        exactly normalized; the masked renormalization handles it).
    n_samples:
        Batch size ``N``.
    rng:
        Seed or generator.
    task_orders:
        Optional ``(n_samples, n_tasks)`` permutation rows fixing the task
        visit order per sample (used by tests); default fresh random
        orders, one per sample, as in Fig. 4 step 1.

    Returns
    -------
    ``(n_samples, n_tasks)`` batch; each row has distinct resource values.

    Notes
    -----
    When the remaining (masked) row mass of a task vanishes — routine once
    ``P`` is nearly degenerate and the preferred resource is taken — the
    draw falls back to uniform over the unused resources, which matches
    the limit behaviour of renormalizing an all-zero row and keeps every
    sample valid.
    """
    arr = _check_matrix(P, one_to_one=True)
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    n_tasks, n_res = arr.shape
    gen = as_generator(rng)

    if task_orders is None:
        # argsort of uniforms = independent uniform random permutations.
        task_orders = np.argsort(gen.random((n_samples, n_tasks)), axis=1)
    else:
        task_orders = np.asarray(task_orders, dtype=np.int64)
        if task_orders.shape != (n_samples, n_tasks):
            raise ValidationError(
                f"task_orders must have shape ({n_samples}, {n_tasks}), "
                f"got {task_orders.shape}"
            )

    # Drawing all position uniforms up front is stream-equivalent to the
    # per-position draws of the original loop (numpy fills C-contiguous
    # output row by row from the same bit stream).
    rand_pos = gen.random((n_tasks, n_samples))
    backend = kernels.get_backend()
    return backend.genperm(arr, None, task_orders, rand_pos, n_res)


def sample_permutations_stacked(
    P_stack: np.ndarray,
    rand_orders: np.ndarray,
    rand_pos: np.ndarray,
) -> np.ndarray:
    """Multi-chain GenPerm: one position loop over ``R`` stacked matrices.

    Parameters
    ----------
    P_stack:
        ``(R, n_tasks, n_res)`` stack of non-negative matrices, one per
        chain.
    rand_orders:
        ``(R, N, n_tasks)`` uniforms; per chain, ``argsort`` of each row
        fixes that sample's task visit order (Fig. 4 step 1).
    rand_pos:
        ``(R, n_tasks, N)`` uniforms driving the roulette draws; chain
        ``r``'s block must come from chain ``r``'s own generator for
        seed-for-seed equivalence with single-chain runs.

    Returns
    -------
    ``(R, N, n_tasks)`` batch; slice ``r`` is bit-identical to
    ``sample_permutations(P_stack[r], N, gen_r)`` when ``rand_orders[r]``
    and ``rand_pos[r]`` are ``gen_r.random((N, n_tasks))`` followed by
    ``gen_r.random((n_tasks, N))``.
    """
    P_stack = np.asarray(P_stack, dtype=np.float64)
    if P_stack.ndim != 3:
        raise ValidationError(f"P_stack must be 3-D, got shape {P_stack.shape}")
    R, n_tasks, n_res = P_stack.shape
    if n_tasks > n_res:
        raise ValidationError(
            f"one-to-one sampling needs n_tasks <= n_resources, got {P_stack.shape}"
        )
    if rand_orders.shape[0] != R or rand_orders.shape[2] != n_tasks:
        raise ValidationError(
            f"rand_orders must have shape ({R}, N, {n_tasks}), got {rand_orders.shape}"
        )
    N = rand_orders.shape[1]
    if rand_pos.shape != (R, n_tasks, N):
        raise ValidationError(
            f"rand_pos must have shape ({R}, {n_tasks}, {N}), got {rand_pos.shape}"
        )
    task_orders = np.argsort(rand_orders, axis=2).reshape(R * N, n_tasks)
    dist_offsets = np.repeat(np.arange(R, dtype=np.int64) * n_tasks, N)
    pos_u = rand_pos.transpose(1, 0, 2).reshape(n_tasks, R * N)
    P_rows = np.ascontiguousarray(P_stack.reshape(R * n_tasks, n_res))
    backend = kernels.get_backend()
    X = backend.genperm(P_rows, dist_offsets, task_orders, pos_u, n_res)
    return X.reshape(R, N, n_tasks)


def genperm_exact_probabilities(
    P: ProbabilityMatrix, *, max_n: int = 8
) -> dict[tuple[int, ...], float]:
    """Exact GenPerm output distribution for small square matrices.

    Enumerates every task visit order (Fig. 4 draws one uniformly) and,
    within each order, every branch of the masked roulette draws —
    including the uniform-over-unused fallback for exhausted rows — and
    accumulates each resulting permutation's probability. The values sum
    to one exactly (up to float error).

    Exponential in ``n`` (``n! × n!`` branches in the worst case), so
    guarded by ``max_n``; this is a *verification oracle* for the sampler,
    used by the test suite to statistically validate
    :func:`sample_permutations`, not a production path.
    """
    from itertools import permutations as _perms

    arr = _check_matrix(P, one_to_one=True)
    n_tasks, n_res = arr.shape
    if n_tasks != n_res:
        raise ValidationError("exact enumeration supports square matrices only")
    n = n_tasks
    if n > max_n:
        raise ValidationError(f"exact enumeration limited to n <= {max_n}, got {n}")

    out: dict[tuple[int, ...], float] = {}
    orders = list(_perms(range(n)))
    order_p = 1.0 / len(orders)

    def walk(order: tuple[int, ...], pos: int, used: int,
             assignment: list[int], prob: float) -> None:
        if pos == n:
            key = tuple(assignment)
            out[key] = out.get(key, 0.0) + prob
            return
        task = order[pos]
        row = arr[task]
        free = [j for j in range(n) if not (used >> j) & 1]
        mass = float(sum(row[j] for j in free))
        for j in free:
            p_j = (row[j] / mass) if mass > 0 else 1.0 / len(free)
            if p_j <= 0:
                continue
            assignment[task] = j
            walk(order, pos + 1, used | (1 << j), assignment, prob * p_j)
        assignment[task] = -1

    for order in orders:
        walk(order, 0, 0, [-1] * n, order_p)
    return out
