"""Elite selection: the sample ``(1-ρ)``-quantile step of the CE method.

For a *minimization* problem the CE method keeps the best ``ρ`` fraction of
the N sampled solutions: the threshold ``γ`` is the ``⌈ρN⌉``-th smallest
cost and the elite set is ``{k : S(X_k) ≤ γ}``.

Note (DESIGN.md §3.1): the paper's Fig. 5 pseudo-code sorts costs
*descending* and indexes ``s_{⌊ρN⌋}``, which read literally would keep
nearly all samples. We follow the de Boer et al. tutorial convention the
paper builds on, which is the only reading under which the method
converges.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.types import CostVector
from repro.utils.validation import check_in_range

__all__ = ["elite_threshold", "elite_mask", "select_elites", "select_top_k"]


def elite_threshold(costs: CostVector, rho: float) -> float:
    """The elite cost threshold ``γ``: the ``⌈ρN⌉``-th smallest cost.

    ``rho`` is the paper's *focus parameter* (0.01 ≤ ρ ≤ 0.1 in §4); at
    least one sample is always kept.
    """
    c = np.asarray(costs, dtype=np.float64)
    if c.ndim != 1 or c.size == 0:
        raise ValidationError(f"costs must be a non-empty 1-D array, got shape {c.shape}")
    if np.any(np.isnan(c)):
        raise ValidationError("costs contain NaN")
    check_in_range("rho", rho, 0.0, 1.0, inclusive=(False, True))
    k = max(1, int(np.ceil(rho * c.size)))
    # k-th smallest via partial sort.
    return float(np.partition(c, k - 1)[k - 1])


def elite_mask(costs: CostVector, gamma: float) -> np.ndarray:
    """Boolean mask of samples at or below the threshold ``γ``."""
    c = np.asarray(costs, dtype=np.float64)
    return c <= gamma


def select_elites(costs: CostVector, rho: float) -> tuple[float, np.ndarray]:
    """Convenience: ``(γ, elite_index_array)`` for one CE iteration.

    With heavily tied costs (common once the matrix is nearly degenerate)
    the ``≤ γ`` rule may keep more than ``⌈ρN⌉`` samples; that is the
    standard CE behaviour and keeps the update well-defined under ties.
    """
    gamma = elite_threshold(costs, rho)
    idx = np.flatnonzero(elite_mask(costs, gamma))
    return gamma, idx


def select_top_k(costs: CostVector, rho: float) -> tuple[float, np.ndarray]:
    """Exact-size elite selection: the ``⌈ρN⌉`` *best* samples, ties cut.

    Returns ``(γ, elite_index_array)`` with exactly ``⌈ρN⌉`` indices.
    Cutting ties keeps the elite set from being flooded by cost-plateau
    duplicates late in a run (which stalls matrix degeneration); this is
    the variant MaTCH uses by default, while :func:`select_elites` offers
    the tie-inclusive textbook rule.
    """
    c = np.asarray(costs, dtype=np.float64)
    if c.ndim != 1 or c.size == 0:
        raise ValidationError(f"costs must be a non-empty 1-D array, got shape {c.shape}")
    if np.any(np.isnan(c)):
        raise ValidationError("costs contain NaN")
    check_in_range("rho", rho, 0.0, 1.0, inclusive=(False, True))
    k = max(1, int(np.ceil(rho * c.size)))
    idx = np.argpartition(c, k - 1)[:k]
    gamma = float(c[idx].max())
    return gamma, idx
