"""CE for continuous multiextremal optimization (§3's broader method family).

The paper introduces the CE method as "a generic and efficient tool for
solving … continuous multiextremal optimization problems" [1, 23, 24].
This module implements that family member — normal (Gaussian) updating —
so the library covers the method the paper builds on, not just the one
specialization MaTCH uses:

* sample ``N`` points from independent normals ``N(μ_i, σ_i²)``;
* take the elite ``ρ`` quantile of the objective (minimization);
* re-fit ``μ, σ`` to the elites (the analytic CE update for the normal
  family is exactly the elite sample mean / standard deviation);
* smooth both (mean with ``alpha``, std with ``beta``) and iterate until
  ``max σ`` collapses below a tolerance.

The std smoothing uses a dynamic schedule by default (see
:func:`repro.ce.smoothing.dynamic_smoothing_factor`) — the standard defence
against premature collapse on multiextremal landscapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.ce.quantile import select_elites
from repro.ce.smoothing import dynamic_smoothing_factor
from repro.exceptions import ConfigurationError
from repro.types import SeedLike
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range

__all__ = ["ContinuousCEConfig", "ContinuousCEResult", "ContinuousCEOptimizer"]


@dataclass(frozen=True)
class ContinuousCEConfig:
    """Hyper-parameters for normal-family CE over R^d."""

    n_samples: int = 100
    rho: float = 0.1
    alpha: float = 0.8  # mean smoothing (1 = no smoothing)
    beta: float = 0.7  # std smoothing base for the dynamic schedule
    dynamic_std_smoothing: bool = True
    q: float = 5.0  # dynamic schedule exponent
    sigma_tol: float = 1e-6
    max_iterations: int = 1000

    def __post_init__(self) -> None:
        if self.n_samples < 2:
            raise ConfigurationError(f"n_samples must be >= 2, got {self.n_samples}")
        check_in_range("rho", self.rho, 0.0, 1.0, inclusive=(False, False))
        check_in_range("alpha", self.alpha, 0.0, 1.0, inclusive=(False, True))
        check_in_range("beta", self.beta, 0.0, 1.0, inclusive=(False, True))
        if self.sigma_tol <= 0:
            raise ConfigurationError(f"sigma_tol must be > 0, got {self.sigma_tol}")
        if self.max_iterations < 1:
            raise ConfigurationError(f"max_iterations must be >= 1, got {self.max_iterations}")


@dataclass
class ContinuousCEResult:
    """Outcome of a continuous CE run."""

    best_point: np.ndarray
    best_value: float
    n_iterations: int
    converged: bool
    mean_history: list[np.ndarray] = field(default_factory=list, repr=False)
    sigma_history: list[np.ndarray] = field(default_factory=list, repr=False)
    best_value_history: list[float] = field(default_factory=list)


class ContinuousCEOptimizer:
    """Normal-updating CE minimizer over ``R^d`` with box clipping support."""

    def __init__(
        self,
        objective: Callable[[np.ndarray], np.ndarray],
        mean0: np.ndarray,
        sigma0: np.ndarray,
        config: ContinuousCEConfig = ContinuousCEConfig(),
        *,
        bounds: tuple[np.ndarray, np.ndarray] | None = None,
        rng: SeedLike = None,
    ) -> None:
        """``objective`` maps an ``(N, d)`` array to ``(N,)`` values (minimized).

        ``mean0`` / ``sigma0`` seed the sampling distribution; ``bounds``
        optionally clips samples to ``[lo, hi]`` per dimension.
        """
        self.objective = objective
        self.mean = np.asarray(mean0, dtype=np.float64).copy()
        self.sigma = np.asarray(sigma0, dtype=np.float64).copy()
        if self.mean.ndim != 1 or self.mean.shape != self.sigma.shape:
            raise ConfigurationError(
                f"mean0/sigma0 must be matching 1-D arrays, got {self.mean.shape} "
                f"and {self.sigma.shape}"
            )
        if np.any(self.sigma <= 0):
            raise ConfigurationError("sigma0 must be strictly positive")
        self.config = config
        self.rng = as_generator(rng)
        if bounds is not None:
            lo, hi = (np.asarray(b, dtype=np.float64) for b in bounds)
            if lo.shape != self.mean.shape or hi.shape != self.mean.shape:
                raise ConfigurationError("bounds must match the dimension of mean0")
            if np.any(lo >= hi):
                raise ConfigurationError("bounds must satisfy lo < hi elementwise")
            self.bounds = (lo, hi)
        else:
            self.bounds = None

    def run(self) -> ContinuousCEResult:
        """Iterate normal-family CE until σ collapses or the budget ends."""
        cfg = self.config
        d = self.mean.shape[0]
        best_value = np.inf
        best_point = self.mean.copy()
        result = ContinuousCEResult(
            best_point=best_point, best_value=best_value, n_iterations=0, converged=False
        )

        for k in range(1, cfg.max_iterations + 1):
            X = self.rng.normal(self.mean, self.sigma, size=(cfg.n_samples, d))
            if self.bounds is not None:
                np.clip(X, self.bounds[0], self.bounds[1], out=X)
            values = np.asarray(self.objective(X), dtype=np.float64)
            if values.shape != (cfg.n_samples,):
                raise ConfigurationError(
                    f"objective returned shape {values.shape}, expected ({cfg.n_samples},)"
                )
            _, elite_idx = select_elites(values, cfg.rho)
            elites = X[elite_idx]

            it_best = int(np.argmin(values))
            if values[it_best] < best_value:
                best_value = float(values[it_best])
                best_point = X[it_best].copy()

            new_mean = elites.mean(axis=0)
            new_sigma = elites.std(axis=0, ddof=0)
            beta_k = (
                dynamic_smoothing_factor(k, beta=cfg.beta, q=cfg.q)
                if cfg.dynamic_std_smoothing
                else cfg.beta
            )
            self.mean = cfg.alpha * new_mean + (1 - cfg.alpha) * self.mean
            self.sigma = beta_k * new_sigma + (1 - beta_k) * self.sigma

            result.mean_history.append(self.mean.copy())
            result.sigma_history.append(self.sigma.copy())
            result.best_value_history.append(best_value)
            result.n_iterations = k

            if float(self.sigma.max()) < cfg.sigma_tol:
                result.converged = True
                break

        result.best_point = best_point
        result.best_value = best_value
        return result
