"""Cross-entropy method library (§3): the engine MaTCH specializes.

Contents:

* :class:`StochasticMatrix` and the Eq. (11)/(13) update machinery;
* :func:`sample_permutations` — the batched GenPerm sampler (Fig. 4);
* elite quantile selection, stopping criteria, and the generic
  :class:`CrossEntropyOptimizer` (Fig. 2) for combinatorial problems;
* :class:`MultiChainCE` — R independent chains advanced as one batched
  tensor loop, seed-for-seed equal to R sequential runs;
* :class:`ContinuousCEOptimizer` — normal-family CE for continuous
  multiextremal optimization;
* :func:`estimate_rare_event` — the original rare-event-simulation form of
  the CE method.
"""

from repro.ce.continuous import ContinuousCEConfig, ContinuousCEOptimizer, ContinuousCEResult
from repro.ce.diagnostics import (
    commit_iterations,
    elite_diversity,
    iterations_to_degeneracy,
    mass_trajectory,
)
from repro.ce.genperm import (
    genperm_exact_probabilities,
    sample_assignments,
    sample_permutations,
    sample_permutations_stacked,
)
from repro.ce.multichain import MultiChainCE, MultiChainResult
from repro.ce.maxcut import MaxCutResult, ce_max_cut, cut_value
from repro.ce.optimizer import CEConfig, CEResult, CrossEntropyOptimizer
from repro.ce.quantile import elite_mask, elite_threshold, select_elites
from repro.ce.rare_event import (
    BernoulliFamily,
    ExponentialFamily,
    RareEventResult,
    estimate_rare_event,
)
from repro.ce.smoothing import dynamic_smoothing_factor, smooth
from repro.ce.stochastic_matrix import (
    StochasticMatrix,
    elite_counts_update,
    stacked_elite_update,
)
from repro.ce.tsp import TourResult, ce_tsp, tour_length
from repro.ce.stopping import (
    AnyOf,
    DegenerateMatrix,
    GammaStagnation,
    IterationState,
    MaxIterations,
    RowMaximaStable,
    StopKind,
    StoppingCriterion,
)

__all__ = [
    "StochasticMatrix",
    "MaxCutResult",
    "TourResult",
    "ce_tsp",
    "tour_length",
    "ce_max_cut",
    "cut_value",
    "elite_counts_update",
    "stacked_elite_update",
    "sample_permutations",
    "sample_permutations_stacked",
    "commit_iterations",
    "elite_diversity",
    "iterations_to_degeneracy",
    "mass_trajectory",
    "sample_assignments",
    "genperm_exact_probabilities",
    "elite_threshold",
    "elite_mask",
    "select_elites",
    "smooth",
    "dynamic_smoothing_factor",
    "IterationState",
    "StoppingCriterion",
    "RowMaximaStable",
    "GammaStagnation",
    "MaxIterations",
    "DegenerateMatrix",
    "AnyOf",
    "StopKind",
    "CEConfig",
    "CEResult",
    "CrossEntropyOptimizer",
    "MultiChainCE",
    "MultiChainResult",
    "ContinuousCEConfig",
    "ContinuousCEResult",
    "ContinuousCEOptimizer",
    "ExponentialFamily",
    "BernoulliFamily",
    "RareEventResult",
    "estimate_rare_event",
]
