"""A minimal discrete-event simulation (DES) kernel.

The platform simulator (:mod:`repro.simulate.platform_sim`) replays a
mapped application on the resource graph event by event; this module is
the generic engine underneath: a time-ordered event queue with
deterministic tie-breaking (FIFO among simultaneous events), the standard
"advance clock, fire callback, maybe schedule more" loop, and guards
against the classic DES bugs (scheduling into the past, running a stopped
simulation).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.exceptions import SimulationError

__all__ = ["EventQueue"]

Callback = Callable[["EventQueue"], Any]


class EventQueue:
    """Deterministic discrete-event engine.

    Events are ``(time, insertion_seq)``-ordered: ties fire in insertion
    order, making runs reproducible regardless of heap internals.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callback]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._fired = 0
        self._running = False

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def n_fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    @property
    def n_pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._heap)

    # -- scheduling ----------------------------------------------------------
    def schedule_at(self, time: float, callback: Callback) -> None:
        """Schedule ``callback`` at absolute time ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def schedule_after(self, delay: float, callback: Callback) -> None:
        """Schedule ``callback`` ``delay`` time units from now (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        self.schedule_at(self._now + delay, callback)

    # -- execution -------------------------------------------------------------
    def run(self, *, until: float | None = None, max_events: int | None = None) -> float:
        """Fire events in order until the queue drains (or a bound hits).

        Returns the final simulation time. ``until`` stops the clock at a
        horizon (events beyond it stay queued); ``max_events`` bounds the
        number of callbacks (an infinite-loop guard).
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        try:
            fired_this_run = 0
            while self._heap:
                time, _, callback = self._heap[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                self._now = time
                callback(self)
                self._fired += 1
                fired_this_run += 1
                if max_events is not None and fired_this_run >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible event loop"
                    )
            return self._now
        finally:
            self._running = False
