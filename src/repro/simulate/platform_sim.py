"""Discrete-event replay of a mapped application on the platform.

Eq. (1) is an *analytic* cost model: each resource's execution time is the
sum of its compute work and its communication work, and resources overlap
freely (the application time is the busiest resource, Eq. (2)). This
module builds the corresponding operational semantics and replays it as a
discrete-event simulation:

* each resource is a serial server;
* phase 1 (compute): a resource processes its assigned tasks back to back,
  task ``t`` occupying it for ``W_t · w_s``;
* phase 2 (exchange): every TIG interaction whose endpoints sit on
  different resources becomes a transfer occupying *both* endpoint
  resources for ``C^{t,a} · c_{s,b}`` of their local busy time (the paper
  charges both sides — see Eq. (1) where each mapped task sums over its
  remote neighbors);
* a resource's finish time is its accumulated busy time; the application
  step completes when the last resource finishes.

Under these semantics the simulated makespan equals Eq. (2) *exactly*,
which is precisely what the integration tests assert: the analytic model
and the operational replay agree on every mapping. The simulator also
reports a per-resource busy timeline, idle fractions, and supports
multi-iteration bulk-synchronous workloads (``n_steps > 1``) with a
barrier between steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.mapping.problem import MappingProblem
from repro.simulate.event_queue import EventQueue
from repro.types import AssignmentVector

__all__ = ["SimulationReport", "PlatformSimulator"]


@dataclass
class SimulationReport:
    """Outcome of one simulated application run."""

    makespan: float
    per_resource_finish: np.ndarray
    n_events: int
    n_transfers: int
    n_steps: int
    step_makespans: list[float] = field(default_factory=list)

    @property
    def busiest_resource(self) -> int:
        """Index of the resource that finished last."""
        return int(np.argmax(self.per_resource_finish))

    def idle_fractions(self) -> np.ndarray:
        """Per-resource idle share relative to the makespan."""
        if self.makespan <= 0:
            return np.zeros_like(self.per_resource_finish)
        return 1.0 - self.per_resource_finish / self.makespan


class PlatformSimulator:
    """Replays a mapping on the resource graph with a DES kernel."""

    def __init__(self, problem: MappingProblem) -> None:
        self.problem = problem

    def simulate(self, assignment: AssignmentVector, *, n_steps: int = 1) -> SimulationReport:
        """Simulate ``n_steps`` bulk-synchronous steps of the application.

        Each step runs the compute phase then the exchange phase; a global
        barrier separates steps (all resources wait for the slowest). With
        ``n_steps = 1`` the makespan equals Eq. (2) for ``assignment``.
        """
        if n_steps < 1:
            raise SimulationError(f"n_steps must be >= 1, got {n_steps}")
        problem = self.problem
        x = problem.check_assignment(np.asarray(assignment, dtype=np.int64))
        n_r = problem.n_resources
        W = problem.task_weights
        w = problem.proc_weights
        C = problem.edge_weights
        ccm = problem.comm_costs
        edges = problem.edges

        queue = EventQueue()
        finish = np.zeros(n_r, dtype=np.float64)  # cumulative busy time
        step_makespans: list[float] = []
        n_transfers = 0
        barrier = 0.0

        for _ in range(n_steps):
            # Resource-local "next free" clocks start at the barrier.
            free_at = np.full(n_r, barrier, dtype=np.float64)

            # Phase 1 — compute: schedule one completion event per task.
            # Tasks on a resource run back to back in task-index order.
            for t in np.argsort(x, kind="stable"):
                s = x[t]
                duration = W[t] * w[s]
                start = free_at[s]
                free_at[s] = start + duration

                def on_compute_done(q: EventQueue, _s=int(s)) -> None:
                    # Completion event: the resource's busy frontier moved.
                    pass

                queue.schedule_at(free_at[s], on_compute_done)

            # Phase 2 — exchange: each remote interaction occupies both
            # endpoint resources; transfers are serialized per resource in
            # deterministic edge order.
            for e in range(edges.shape[0]):
                t, a = edges[e]
                s, b = x[t], x[a]
                if s == b:
                    continue
                n_transfers += 1
                dur_s = C[e] * ccm[s, b]
                dur_b = C[e] * ccm[b, s]
                free_at[s] = free_at[s] + dur_s
                free_at[b] = free_at[b] + dur_b
                queue.schedule_at(free_at[s], lambda q: None)
                queue.schedule_at(free_at[b], lambda q: None)

            queue.run()
            step_finish = free_at - barrier
            finish += step_finish
            step_makespan = float(step_finish.max())
            step_makespans.append(step_makespan)
            barrier += step_makespan  # global barrier before the next step

        return SimulationReport(
            makespan=barrier,
            per_resource_finish=finish,
            n_events=queue.n_fired,
            n_transfers=n_transfers,
            n_steps=n_steps,
            step_makespans=step_makespans,
        )
