"""Discrete-event platform simulator validating the analytic cost model."""

from repro.simulate.contention import (
    ContentionReport,
    ContentionSimulator,
    contention_report,
)
from repro.simulate.event_queue import EventQueue
from repro.simulate.platform_sim import PlatformSimulator, SimulationReport
from repro.simulate.workload import IterativeWorkload, WorkloadOutcome

__all__ = [
    "EventQueue",
    "ContentionReport",
    "ContentionSimulator",
    "contention_report",
    "PlatformSimulator",
    "SimulationReport",
    "IterativeWorkload",
    "WorkloadOutcome",
]
