"""Contention-aware platform simulation — beyond the Eq. (1) idealization.

Eq. (1) charges communication as if every resource's transfers serialize
*locally* but links never contend. Real networks serialize per *link*:
two transfers crossing the same link queue behind each other. This module
extends the DES with that semantics and quantifies how optimistic the
paper's analytic model is:

* each direct platform link is a shared channel with capacity 1 transfer
  at a time (half-duplex);
* a remote interaction occupies its endpoints' *route* — for sparse
  platforms, every link on the shortest path — for ``C^{t,a} · c_link``
  per hop, in hop order;
* each resource still computes serially before communicating (the same
  bulk-synchronous structure as :class:`PlatformSimulator`).

``contention_report`` returns both makespans (analytic vs contended) and
the slowdown factor; the extension study shows mappings that co-locate
chatty tasks suffer less contention — i.e. the paper's objective remains
a good proxy even under the richer model (an experiment the paper never
ran, listed in DESIGN.md as an extension).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.graphs.resource_graph import shortest_path_closure
from repro.mapping.cost_model import CostModel
from repro.mapping.problem import MappingProblem
from repro.types import AssignmentVector

__all__ = ["ContentionReport", "ContentionSimulator", "contention_report"]


@dataclass(frozen=True)
class ContentionReport:
    """Analytic vs. contention-aware makespans for one mapping."""

    analytic_makespan: float  # Eq. (2)
    contended_makespan: float
    n_transfers: int
    max_link_utilization: float  # busiest link busy time / makespan

    @property
    def slowdown(self) -> float:
        """``contended / analytic`` — how optimistic Eq. (1) was (>= ~1)."""
        if self.analytic_makespan <= 0:
            return 1.0
        return self.contended_makespan / self.analytic_makespan


class ContentionSimulator:
    """List-scheduling simulator with per-link mutual exclusion."""

    def __init__(self, problem: MappingProblem) -> None:
        self.problem = problem
        # Next-hop routing table from the direct cost matrix.
        direct = problem.resources.direct_cost_matrix()
        n = direct.shape[0]
        dist = direct.copy()
        nxt = np.tile(np.arange(n), (n, 1))
        nxt[~np.isfinite(direct)] = -1
        np.fill_diagonal(nxt, np.arange(n))
        for k in range(n):
            via = dist[:, k, np.newaxis] + dist[np.newaxis, k, :]
            better = via < dist - 1e-12
            dist = np.where(better, via, dist)
            nxt = np.where(better, nxt[:, k, np.newaxis], nxt)
        closed = shortest_path_closure(direct)
        if not np.allclose(dist, closed):
            raise SimulationError("routing table construction diverged from closure")
        self._next_hop = nxt
        self._direct = direct

    def route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """The shortest-path hop list from ``src`` to ``dst``."""
        if src == dst:
            return []
        hops: list[tuple[int, int]] = []
        cur = src
        guard = 0
        while cur != dst:
            step = int(self._next_hop[cur, dst])
            if step < 0:
                raise SimulationError(f"no route from {src} to {dst}")
            hops.append((min(cur, step), max(cur, step)))
            cur = step
            guard += 1
            if guard > self._direct.shape[0]:
                raise SimulationError("routing loop detected")
        return hops

    def simulate(self, assignment: AssignmentVector) -> ContentionReport:
        """One bulk-synchronous step with per-link serialization."""
        problem = self.problem
        x = problem.check_assignment(np.asarray(assignment, dtype=np.int64))
        model = CostModel(problem)
        analytic = model.evaluate(x)

        W = problem.task_weights
        w = problem.proc_weights
        n_r = problem.n_resources

        # Phase 1 — compute: each resource's local clock advances.
        resource_free = np.zeros(n_r, dtype=np.float64)
        comp = np.bincount(x, weights=W * w[x], minlength=n_r)
        resource_free += comp

        # Phase 2 — transfers, greedy list scheduling in deterministic
        # order (heaviest volume first, the usual LPT tie-break). Each
        # transfer occupies its two endpoint resources AND every link on
        # its route, hop after hop.
        link_free: dict[tuple[int, int], float] = {}
        order = np.argsort(-problem.edge_weights, kind="stable")
        n_transfers = 0
        link_busy: dict[tuple[int, int], float] = {}

        for e in order:
            t, a = problem.edges[e]
            s, b = int(x[t]), int(x[a])
            if s == b:
                continue
            n_transfers += 1
            vol = float(problem.edge_weights[e])
            hops = self.route(s, b)
            start = max(resource_free[s], resource_free[b])
            clock = start
            for hop in hops:
                hop_cost = vol * float(self._direct[hop[0], hop[1]])
                begin = max(clock, link_free.get(hop, 0.0))
                end = begin + hop_cost
                link_free[hop] = end
                link_busy[hop] = link_busy.get(hop, 0.0) + hop_cost
                clock = end
            resource_free[s] = clock
            resource_free[b] = clock

        makespan = float(resource_free.max())
        max_util = (
            max(link_busy.values()) / makespan if link_busy and makespan > 0 else 0.0
        )
        return ContentionReport(
            analytic_makespan=analytic,
            contended_makespan=makespan,
            n_transfers=n_transfers,
            max_link_utilization=max_util,
        )


def contention_report(
    problem: MappingProblem, assignment: AssignmentVector
) -> ContentionReport:
    """Convenience one-shot: simulate ``assignment`` under link contention."""
    return ContentionSimulator(problem).simulate(assignment)
