"""Synthetic iterative workloads built on the platform simulator.

Overset-grid CFD solvers run thousands of identical compute/exchange
iterations (§2's "data-processing pipelines"). :class:`IterativeWorkload`
models such a solver: a fixed number of bulk-synchronous steps plus an
optional per-step *drift* that perturbs task weights over time (grid
adaptation), which lets examples demonstrate when a static mapping should
be recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.graphs.resource_graph import ResourceGraph
from repro.graphs.task_graph import TaskInteractionGraph
from repro.mapping.problem import MappingProblem
from repro.simulate.platform_sim import PlatformSimulator
from repro.types import AssignmentVector, SeedLike
from repro.utils.rng import as_generator

__all__ = ["IterativeWorkload", "WorkloadOutcome"]


@dataclass(frozen=True)
class WorkloadOutcome:
    """Total simulated time of a workload under one mapping."""

    total_time: float
    n_steps: int
    step_makespans: tuple[float, ...]

    @property
    def mean_step(self) -> float:
        """Average per-step makespan."""
        return self.total_time / self.n_steps if self.n_steps else 0.0


class IterativeWorkload:
    """``n_steps`` bulk-synchronous iterations with optional weight drift.

    ``drift`` is the per-step relative standard deviation of a lognormal
    multiplier applied to the task computation weights (0 = static
    application, the paper's setting).
    """

    def __init__(
        self,
        problem: MappingProblem,
        *,
        n_steps: int = 10,
        drift: float = 0.0,
        rng: SeedLike = None,
    ) -> None:
        if n_steps < 1:
            raise SimulationError(f"n_steps must be >= 1, got {n_steps}")
        if drift < 0:
            raise SimulationError(f"drift must be >= 0, got {drift}")
        self.problem = problem
        self.n_steps = n_steps
        self.drift = drift
        self.rng = as_generator(rng)

    def run(self, assignment: AssignmentVector) -> WorkloadOutcome:
        """Simulate the workload under ``assignment``."""
        if self.drift == 0.0:  # repro: noqa[float-equality] -- exact-zero sentinel default selects the static fast path
            report = PlatformSimulator(self.problem).simulate(
                assignment, n_steps=self.n_steps
            )
            return WorkloadOutcome(
                total_time=report.makespan,
                n_steps=self.n_steps,
                step_makespans=tuple(report.step_makespans),
            )

        # Drifting weights: rebuild the problem's TIG each step.
        makespans: list[float] = []
        tig = self.problem.tig
        weights = tig.computation_weights.copy()
        for _ in range(self.n_steps):
            factor = self.rng.lognormal(mean=0.0, sigma=self.drift, size=weights.shape)
            weights = np.maximum(weights * factor, 1e-9)
            stepped = TaskInteractionGraph(
                weights, tig.edges, tig.edge_weights, name=tig.name
            )
            resources: ResourceGraph = self.problem.resources
            step_problem = MappingProblem(stepped, resources)
            report = PlatformSimulator(step_problem).simulate(assignment, n_steps=1)
            makespans.append(report.makespan)
        return WorkloadOutcome(
            total_time=float(sum(makespans)),
            n_steps=self.n_steps,
            step_makespans=tuple(makespans),
        )
