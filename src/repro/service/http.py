"""Minimal stdlib HTTP/1.1 front for the mapping gateway.

The daemon behind ``repro-match serve``: an ``asyncio.start_server`` loop
that speaks just enough HTTP for a curl / ``urllib`` client —

* ``POST /solve`` — body is the :mod:`repro.service.wire` request JSON;
  answers the :class:`~repro.service.service.MappingResponse` wire form
  with status 200 (ok), 429 (structured quota rejection), 500 (failed
  solve) or 400 (malformed request);
* ``GET /healthz`` — liveness probe;
* ``GET /stats`` — the service counters (cache, quotas, batching).

One request per connection (``Connection: close``): the gateway's
concurrency comes from the dispatcher's batching, not from connection
reuse, and the dumbest possible wire loop is the easiest one to trust.
:func:`submit_over_http` is the matching blocking client used by the
``repro-match submit`` CLI and the CI trace replay.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request
from typing import Any

from repro.exceptions import ReproError, ValidationError
from repro.service.service import MappingService
from repro.service.wire import request_from_wire

__all__ = ["start_http_server", "submit_over_http"]

#: Refuse bodies past this size (a square n=1000 inline problem is ~24 MB;
#: serving-scale requests use the compact generator spec instead).
MAX_BODY_BYTES = 32 * 1024 * 1024

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found", 429: "Too Many Requests", 500: "Internal Server Error"}


def _response_bytes(status: int, payload: dict[str, Any]) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")  # repro: noqa[run-discipline] HTTP wire encoding, not a result file; the run record is written by MappingService
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, bytes] | None:
    """``(method, path, body)`` for one request, or None on EOF/overflow."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                return None
    if content_length < 0 or content_length > MAX_BODY_BYTES:
        return None
    body = await reader.readexactly(content_length) if content_length else b""
    return method, path, body


async def _handle_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    service: MappingService,
) -> None:
    try:
        parsed = await _read_request(reader)
        if parsed is None:
            return
        method, path, body = parsed
        if method == "GET" and path == "/healthz":
            out = _response_bytes(200, {"ok": True})
        elif method == "GET" and path == "/stats":
            out = _response_bytes(200, service.stats())
        elif method == "POST" and path == "/solve":
            out = await _handle_solve(service, body)
        else:
            out = _response_bytes(404, {"error": f"no route for {method} {path}"})
        writer.write(out)
        await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _handle_solve(service: MappingService, body: bytes) -> bytes:
    try:
        request = request_from_wire(json.loads(body.decode("utf-8")))
    except (ValidationError, ReproError, ValueError, KeyError, TypeError) as exc:
        return _response_bytes(400, {"error": {"kind": "bad-request", "message": str(exc)}})
    response = await service.submit(request)
    status = {"ok": 200, "rejected": 429}.get(response.status, 500)
    return _response_bytes(status, response.to_wire())


async def start_http_server(
    service: MappingService, host: str = "127.0.0.1", port: int = 8753
) -> asyncio.AbstractServer:
    """Bind the gateway to ``host:port``; caller owns the server lifecycle."""
    return await asyncio.start_server(
        lambda r, w: _handle_connection(r, w, service), host, port
    )


def submit_over_http(
    url: str, payload: dict[str, Any], *, timeout: float = 300.0
) -> tuple[int, dict[str, Any]]:
    """Blocking client: POST ``payload`` to ``<url>/solve``.

    Returns ``(http_status, response_payload)``; structured rejections
    (HTTP 429) and failed solves (HTTP 500) come back as payloads, not
    exceptions — only transport problems raise.
    """
    req = urllib.request.Request(
        url.rstrip("/") + "/solve",
        data=json.dumps(payload).encode("utf-8"),  # repro: noqa[run-discipline] POST body wire encoding, not result persistence
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        body = exc.read().decode("utf-8", errors="replace")
        try:
            return exc.code, json.loads(body)
        except json.JSONDecodeError:
            return exc.code, {"error": {"kind": "http-error", "message": body}}
