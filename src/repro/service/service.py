"""The mapping gateway: coalesce, dedup, cache, admit, dispatch.

:class:`MappingService` is the serving layer over the execution fabric
(DESIGN.md §14). One long-lived :class:`~repro.utils.parallel.WorkerPool`
and one shared-memory problem plane serve every request the process
accepts; an asyncio dispatcher coalesces concurrent requests into batches
that go through :meth:`~repro.utils.parallel.WorkerPool.map_salvage` with
LPT ordering, exactly like an experiment sweep. The request path is the
same shape that makes inference servers fast:

1. **cache** — the canonical key (:func:`repro.runstore.cache.cache_key`
   over the :func:`~repro.mapping.problem_key.problem_key` digest, solver
   spec, and seed) is checked first. Solves are pure functions of that
   triple and kernel backends are bit-identical, so a hit is *exact* and
   is served without touching quota or workers.
2. **single-flight** — a request whose key is already being solved
   attaches to the in-flight future instead of queueing a duplicate; the
   solve runs once and fans out.
3. **admission** — per-client :class:`~repro.runtime.budget.EvaluationBudget`
   quotas are charged *before* work is queued; an over-quota request gets
   a structured rejection immediately, never a timeout.
4. **coalesce + dispatch** — queued requests are collected up to
   ``max_batch`` within ``coalesce_window`` seconds, their problems are
   published once onto the shared plane, and the batch is dispatched as
   one fault-tolerant ``map_salvage`` call (heaviest problems first).

Every accepted request, hit, rejection and batch streams into the run
store's ``events.jsonl`` when the service is given a run handle, so a
service process is a recorded run like any experiment.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exceptions import ConfigurationError
from repro.mapping.problem import MappingProblem
from repro.mapping.problem_key import problem_key
from repro.runstore.cache import ResultCache, cache_key
from repro.runstore.store import RunHandle
from repro.runtime.budget import EvaluationBudget
from repro.runtime.registry import SolverSpec
from repro.utils.parallel import WorkerPool
from repro.utils.shared_plane import resolve_problem
from repro.utils.timing import Stopwatch

__all__ = [
    "ServiceConfig",
    "MappingRequest",
    "MappingResponse",
    "QuotaLedger",
    "MappingService",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Gateway tuning knobs; the defaults serve a small local deployment."""

    #: Worker processes for the shared pool (None = host default).
    n_workers: int | None = None
    #: Maximum requests dispatched as one ``map_salvage`` batch.
    max_batch: int = 16
    #: Seconds the dispatcher waits for more requests to coalesce after
    #: the first one arrives. Zero still coalesces whatever is already
    #: queued (the drain is opportunistic, the wait is not).
    coalesce_window: float = 0.01
    #: In-memory LRU entries in the result cache.
    cache_capacity: int = 1024
    #: Optional write-through persistence directory for the cache
    #: (conventionally ``<runs_dir>/service-cache``).
    cache_dir: str | Path | None = None
    #: Per-client evaluation quota (None = unlimited admission).
    client_quota: int | None = None
    #: Evaluations charged for a request that sets no ``max_evaluations``
    #: of its own — the admission-time estimate of an uncapped solve.
    default_charge: int = 25_000

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.coalesce_window < 0:
            raise ConfigurationError(
                f"coalesce_window must be >= 0, got {self.coalesce_window}"
            )
        if self.default_charge < 1:
            raise ConfigurationError(
                f"default_charge must be >= 1, got {self.default_charge}"
            )


@dataclass(frozen=True)
class MappingRequest:
    """One client request: solve ``problem`` with ``solver`` under ``seed``."""

    problem: MappingProblem
    solver: SolverSpec
    seed: int
    client: str = "anonymous"
    #: Optional evaluation cap for this solve; also the quota charge.
    max_evaluations: int | None = None


@dataclass
class MappingResponse:
    """The gateway's answer; ``result`` is bit-identical to a direct solve."""

    status: str  # "ok" | "rejected" | "failed"
    key: str
    cached: bool = False
    #: True when this request attached to an identical in-flight solve.
    coalesced: bool = False
    result: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    #: Evaluations charged against the client's quota (0 for hits/dedups).
    charged: int = 0
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_wire(self) -> dict[str, Any]:
        """JSON-able payload for the HTTP layer and trace replays."""
        return {
            "status": self.status,
            "key": self.key,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "result": self.result,
            "error": self.error,
            "charged": self.charged,
            "latency_s": self.latency_s,
        }


class QuotaLedger:
    """Per-client admission quotas as :class:`EvaluationBudget` instances.

    The budget object is the library's one effort currency; reusing it here
    means admission, solver charging and experiment accounting all count
    the same unit (Eq. (2) evaluations).
    """

    def __init__(self, quota: int | None) -> None:
        self.quota = quota
        self._budgets: dict[str, EvaluationBudget] = {}

    def budget_for(self, client: str) -> EvaluationBudget:
        budget = self._budgets.get(client)
        if budget is None:
            budget = EvaluationBudget(max_evaluations=self.quota)
            self._budgets[client] = budget
        return budget

    def admit(self, client: str, charge: int) -> dict[str, Any] | None:
        """Charge ``charge`` to ``client``; a structured rejection if over.

        Admission is charge-before-queue: the quota is debited here, before
        the request touches the dispatch queue, so an over-quota client is
        told immediately (kind ``over-quota``) instead of timing out.
        """
        budget = self.budget_for(client)
        remaining = budget.evaluations_remaining()
        if remaining < charge:
            return {
                "kind": "over-quota",
                "client": client,
                "requested": charge,
                "remaining": None if math.isinf(remaining) else int(remaining),
                "quota": self.quota,
            }
        budget.charge(charge)
        return None

    def refund(self, client: str, n: int) -> int:
        """Return ``n`` admission-charged evaluations to ``client``'s quota.

        The inverse of :meth:`admit`, for requests that were charged but
        never produced a result (worker death after salvage exhaustion,
        dispatcher failure). :meth:`EvaluationBudget.charge` deliberately
        rejects non-positive charges so *solver* accounting can never run
        backwards; admission refunds are a ledger-level correction instead,
        clamped so a client can never end up below zero used. Returns the
        amount actually refunded.
        """
        budget = self.budget_for(client)
        refunded = min(int(n), budget.used)
        if refunded > 0:
            budget.used -= refunded
        return refunded

    def used(self, client: str) -> int:
        return self.budget_for(client).used

    def snapshot(self) -> dict[str, Any]:
        return {
            "quota": self.quota,
            "clients": {name: b.used for name, b in sorted(self._budgets.items())},
        }


@dataclass(frozen=True)
class _ServiceCell:
    """The picklable work unit one batch slot ships to a pool worker."""

    problem_ref: Any
    solver: SolverSpec
    seed: int
    max_evaluations: int | None
    n_tasks: int


def _solve_cell(cell: _ServiceCell) -> dict[str, Any]:
    """Top-level (picklable, pure) worker: one cached-format solve result.

    Pure in the cell: the problem comes off the shared plane, the mapper is
    rebuilt from the spec, and the seed drives all randomness — the same
    contract as the experiment runner's cells, so a replay (retry, other
    worker count, other kernel backend) is bit-identical.
    """
    problem = resolve_problem(cell.problem_ref)
    budget = (
        EvaluationBudget(max_evaluations=cell.max_evaluations)
        if cell.max_evaluations is not None
        else None
    )
    result = cell.solver.build().map(problem, cell.seed, budget=budget)
    return {
        "mapper_name": result.mapper_name,
        "assignment": [int(x) for x in result.assignment],
        "execution_time": float(result.execution_time),
        "mapping_time": float(result.mapping_time),
        "n_evaluations": int(result.n_evaluations),
    }


def _cell_weight(cell: _ServiceCell) -> float:
    """LPT weight: solve cost grows ~cubically with instance size."""
    return float(cell.n_tasks) ** 3


@dataclass
class _Work:
    """One queued (admitted, non-duplicate) solve."""

    key: str
    digest: str
    request: MappingRequest
    future: "asyncio.Future[dict[str, Any]]"
    #: Evaluations charged at admission; refunded if no result is produced.
    charged: int = 0
    #: Runs from enqueue to dispatch; the batch's queue-wait metric.
    waited: Stopwatch = field(default_factory=lambda: Stopwatch().start())


class MappingService:
    """The batch-coalescing, cache-fronted mapping gateway.

    Use as an async context manager (or call :meth:`start`/:meth:`close`)
    inside a running event loop::

        async with MappingService(ServiceConfig(n_workers=4)) as svc:
            response = await svc.submit(MappingRequest(problem, spec, seed))
    """

    def __init__(
        self, config: ServiceConfig = ServiceConfig(), *, run: RunHandle | None = None
    ) -> None:
        self.config = config
        self.run = run
        self.cache = ResultCache(config.cache_capacity, persist_dir=config.cache_dir)
        self.quotas = QuotaLedger(config.client_quota)
        self._pool: WorkerPool | None = None
        self._queue: "asyncio.Queue[_Work | None]" | None = None
        self._dispatcher: asyncio.Task | None = None
        self._inflight: dict[str, "asyncio.Future[dict[str, Any]]"] = {}
        self._published: dict[str, Any] = {}
        self._counters: dict[str, int] = {
            "requests": 0,
            "cache_hits": 0,
            "coalesced_dedup": 0,
            "rejected": 0,
            "failed": 0,
            "batches": 0,
            "coalesced_batches": 0,
            "batched_requests": 0,
            "max_batch_width": 0,
            "worker_cells": 0,
            "refunded_evaluations": 0,
        }

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "MappingService":
        if self._pool is not None:
            raise ConfigurationError("MappingService is already started")
        self._pool = WorkerPool(self.config.n_workers)
        self._queue = asyncio.Queue()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._event(
            "service-started",
            workers=self._pool.n_workers,
            max_batch=self.config.max_batch,
            coalesce_window=self.config.coalesce_window,
            cache_capacity=self.config.cache_capacity,
            cache_persistent=self.config.cache_dir is not None,
            client_quota=self.config.client_quota,
        )
        return self

    async def close(self) -> None:
        """Drain the queue, stop the dispatcher, release the pool."""
        if self._queue is not None and self._dispatcher is not None:
            await self._queue.put(None)
            await self._dispatcher
            self._dispatcher = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._published.clear()
        self._event("service-stopped", **self._counters)
        if self.run is not None:
            self.run.record_metrics("service", self.stats())

    async def __aenter__(self) -> "MappingService":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- request path ------------------------------------------------------
    async def submit(self, request: MappingRequest) -> MappingResponse:
        """Serve one request: cache, dedup, admit, or queue for dispatch."""
        if self._queue is None:
            raise ConfigurationError("MappingService is not started")
        watch = Stopwatch().start()
        digest = problem_key(request.problem)
        key = cache_key(
            digest, request.solver.name, request.solver.params_dict(), request.seed
        )
        self._counters["requests"] += 1
        queue_depth = self._queue.qsize()
        self._event(
            "request",
            key=key,
            client=request.client,
            solver=str(request.solver),
            n_tasks=request.problem.n_tasks,
            queue_depth=queue_depth,
        )

        hit = self.cache.get(key)
        if hit is not None:
            self._counters["cache_hits"] += 1
            latency = watch.stop()
            self._event("cache-hit", key=key, client=request.client, latency_s=latency)
            return MappingResponse(
                status="ok", key=key, cached=True, result=hit, latency_s=latency
            )

        future = self._inflight.get(key)
        coalesced = future is not None
        charged = 0
        if future is None:
            charge = (
                request.max_evaluations
                if request.max_evaluations is not None
                else self.config.default_charge
            )
            rejection = self.quotas.admit(request.client, charge)
            if rejection is not None:
                self._counters["rejected"] += 1
                latency = watch.stop()
                # The rejection dict already names the client.
                self._event("quota-rejected", key=key, **rejection)
                return MappingResponse(
                    status="rejected", key=key, error=rejection, latency_s=latency
                )
            charged = charge
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            await self._queue.put(_Work(key, digest, request, future, charged=charge))
        else:
            self._counters["coalesced_dedup"] += 1

        payload = await future
        latency = watch.stop()
        if "error" in payload:
            self._counters["failed"] += 1
            # A failed dispatch refunds its admission charge (the request
            # never produced a result), so the net charge reported is 0 for
            # the admitting submitter too — see ``_run_batch``.
            refunded = int(payload["error"].get("refunded", 0))
            return MappingResponse(
                status="failed",
                key=key,
                coalesced=coalesced,
                error=payload["error"],
                charged=max(0, charged - refunded),
                latency_s=latency,
            )
        return MappingResponse(
            status="ok",
            key=key,
            coalesced=coalesced,
            result=payload,
            charged=charged,
            latency_s=latency,
        )

    # -- dispatcher --------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        closing = False
        while not closing:
            item = await self._queue.get()
            if item is None:
                break
            batch = [item]
            deadline = loop.time() + self.config.coalesce_window
            while len(batch) < self.config.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(self._queue.get(), remaining)
                    except asyncio.TimeoutError:
                        break
                if nxt is None:
                    closing = True
                    break
                batch.append(nxt)
            await self._run_batch(batch)

    async def _run_batch(self, batch: list[_Work]) -> None:
        assert self._pool is not None and self._queue is not None
        width = len(batch)
        queue_depth = self._queue.qsize()
        self._counters["batches"] += 1
        self._counters["batched_requests"] += width
        self._counters["worker_cells"] += width
        self._counters["max_batch_width"] = max(
            self._counters["max_batch_width"], width
        )
        if width >= 2:
            self._counters["coalesced_batches"] += 1

        solve_watch = Stopwatch().start()
        pool = self._pool
        try:
            # Publish each distinct problem once; repeats reuse the handle.
            # Publication is inside the guarded region: a pool that died
            # under the dispatcher raises here first, and an escaped
            # exception would kill the dispatch loop and strand every
            # queued future unresolved.
            fresh = 0
            for work in batch:
                if work.digest not in self._published:
                    self._published[work.digest] = pool.publish_problem(
                        work.request.problem
                    )
                    fresh += 1
            cells = [
                _ServiceCell(
                    problem_ref=self._published[work.digest],
                    solver=work.request.solver,
                    seed=work.request.seed,
                    max_evaluations=work.request.max_evaluations,
                    n_tasks=work.request.problem.n_tasks,
                )
                for work in batch
            ]
            queue_wait = max(w.waited.stop() for w in batch)
            self._event(
                "batch-dispatched",
                width=width,
                queue_depth=queue_depth,
                problems_published=fresh,
                max_queue_wait_s=queue_wait,
            )
            report = await asyncio.get_running_loop().run_in_executor(
                None, lambda: pool.map_salvage(_solve_cell, cells, weight=_cell_weight)
            )
        except Exception as exc:
            # The dispatch itself died (pool closed under us, publication
            # failed, executor unusable). No request in this batch produced
            # a result, so every admission charge is refunded before the
            # error fans out.
            solve_s = solve_watch.stop()
            for work in batch:
                refunded = self.quotas.refund(work.request.client, work.charged)
                if refunded:
                    self._counters["refunded_evaluations"] += refunded
                    self._event(
                        "quota-refunded",
                        key=work.key,
                        client=work.request.client,
                        refunded=refunded,
                        kind="dispatch-error",
                    )
                self._inflight.pop(work.key, None)
                if not work.future.done():
                    work.future.set_result(
                        {
                            "error": {
                                "kind": "dispatch-error",
                                "attempts": 0,
                                "message": f"{type(exc).__name__}: {exc}",
                                "refunded": refunded,
                            }
                        }
                    )
            self._event(
                "batch-failed", width=width, solve_s=solve_s, message=str(exc)
            )
            return
        solve_s = solve_watch.stop()

        failed = {f.index: f for f in report.failures}
        for index, work in enumerate(batch):
            failure = failed.get(index)
            if failure is not None:
                # The request never produced a result: return its admission
                # charge so a failed dispatch can't leak quota forever.
                refunded = self.quotas.refund(work.request.client, work.charged)
                if refunded:
                    self._counters["refunded_evaluations"] += refunded
                    self._event(
                        "quota-refunded",
                        key=work.key,
                        client=work.request.client,
                        refunded=refunded,
                        kind=failure.kind,
                    )
                payload: dict[str, Any] = {
                    "error": {
                        "kind": failure.kind,
                        "attempts": failure.attempts,
                        "message": failure.message,
                        "refunded": refunded,
                    }
                }
            else:
                payload = report.results[index]
                self.cache.put(work.key, payload)
            self._inflight.pop(work.key, None)
            if not work.future.done():
                work.future.set_result(payload)
        self._event(
            "batch-completed",
            width=width,
            solve_s=solve_s,
            failures=len(report.failures),
            retries=report.n_retries,
        )

    # -- observability -----------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Counters for ``/stats``, the bench report and the run metrics."""
        batches = self._counters["batches"]
        return {
            **self._counters,
            "mean_batch_width": (
                self._counters["batched_requests"] / batches if batches else 0.0
            ),
            "cache": self.cache.stats(),
            "quotas": self.quotas.snapshot(),
            "workers": self._pool.n_workers if self._pool is not None else None,
        }

    def _event(self, event: str, **fields: Any) -> None:
        if self.run is not None:
            self.run.log_event(event, **fields)
