"""JSON wire format for the mapping service.

One request/response vocabulary shared by the HTTP server, the ``repro
submit`` client and the service benchmark, so every entry point speaks the
same JSON. A request names its problem either **inline** (the
``plane_arrays`` wire format as nested lists) or by **generator spec**
(``{"size": n, "seed": s}`` — the deterministic paper-pair generator, so
server-side construction is bit-identical to what an offline
``repro-match solve --size n --seed s`` builds):

.. code-block:: json

    {
      "problem": {"size": 10, "seed": 7},
      "solver": {"name": "match", "params": {}},
      "seed": 7,
      "client": "alice",
      "max_evaluations": 20000
    }

Array dtypes are canonicalized on decode (floats to ``float64``, index
arrays to ``int64``), so an inline problem hashes to the same
:func:`~repro.mapping.problem_key.problem_key` no matter which JSON
encoder produced it.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.exceptions import ValidationError
from repro.mapping.problem import MappingProblem
from repro.runtime.registry import SolverSpec
from repro.service.service import MappingRequest

__all__ = [
    "problem_to_wire",
    "problem_from_wire",
    "request_from_wire",
    "request_to_wire",
]

#: plane-array names that carry vertex/edge indices (decoded as int64).
_INDEX_ARRAYS = frozenset({"tig_edges", "res_edges"})


def problem_to_wire(problem: MappingProblem) -> dict[str, Any]:
    """Inline wire form: the plane arrays as nested lists."""
    return {"arrays": {k: v.tolist() for k, v in problem.plane_arrays().items()}}


def _decode_array(name: str, value: Any) -> np.ndarray:
    if name in _INDEX_ARRAYS:
        arr = np.asarray(value, dtype=np.int64)
        if arr.size == 0:
            return arr.reshape(0, 2)
        return arr
    return np.asarray(value, dtype=np.float64)


def problem_from_wire(payload: Mapping[str, Any]) -> MappingProblem:
    """Build the problem a request names (generator spec or inline arrays)."""
    if not isinstance(payload, Mapping):
        raise ValidationError(f"problem must be an object, got {type(payload).__name__}")
    if "arrays" in payload:
        raw = payload["arrays"]
        if not isinstance(raw, Mapping):
            raise ValidationError("problem.arrays must be an object of named arrays")
        arrays = {str(k): _decode_array(str(k), v) for k, v in raw.items()}
        return MappingProblem.from_plane_arrays(arrays)
    if "size" in payload:
        from repro.graphs import generate_paper_pair

        size = int(payload["size"])
        seed = int(payload.get("seed", 2005))
        pair = generate_paper_pair(size, seed)
        return MappingProblem(pair.tig, pair.resources, require_square=True)
    raise ValidationError(
        "problem must carry either 'arrays' (inline plane arrays) or "
        "'size'/'seed' (generator spec)"
    )


def request_from_wire(payload: Mapping[str, Any]) -> MappingRequest:
    """Decode one ``/solve`` body into a :class:`MappingRequest`."""
    if not isinstance(payload, Mapping):
        raise ValidationError(f"request must be a JSON object, got {type(payload).__name__}")
    if "problem" not in payload:
        raise ValidationError("request is missing the 'problem' field")
    problem = problem_from_wire(payload["problem"])
    solver_raw = payload.get("solver") or {"name": "match"}
    if not isinstance(solver_raw, Mapping) or "name" not in solver_raw:
        raise ValidationError("solver must be an object with a 'name' field")
    solver = SolverSpec.of(
        str(solver_raw["name"]), dict(solver_raw.get("params") or {})
    )
    max_evaluations = payload.get("max_evaluations")
    return MappingRequest(
        problem=problem,
        solver=solver,
        seed=int(payload.get("seed", 2005)),
        client=str(payload.get("client", "anonymous")),
        max_evaluations=int(max_evaluations) if max_evaluations is not None else None,
    )


def request_to_wire(
    request: MappingRequest, *, problem: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """Encode a request; ``problem`` overrides with a compact generator spec."""
    return {
        "problem": dict(problem) if problem is not None else problem_to_wire(request.problem),
        "solver": {"name": request.solver.name, "params": request.solver.params_dict()},
        "seed": request.seed,
        "client": request.client,
        "max_evaluations": request.max_evaluations,
    }
