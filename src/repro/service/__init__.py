"""Mapping-as-a-service: the batch-coalescing gateway over the warm fabric.

See DESIGN.md §14. :class:`MappingService` is the importable gateway
(cache → single-flight dedup → quota admission → coalesced ``map_salvage``
dispatch); :mod:`repro.service.http` fronts it with a stdlib HTTP daemon
(``repro-match serve`` / ``repro-match submit``); :mod:`repro.service.wire`
is the JSON request/response vocabulary they share.
"""

from repro.service.http import start_http_server, submit_over_http
from repro.service.service import (
    MappingRequest,
    MappingResponse,
    MappingService,
    QuotaLedger,
    ServiceConfig,
)
from repro.service.wire import (
    problem_from_wire,
    problem_to_wire,
    request_from_wire,
    request_to_wire,
)

__all__ = [
    "MappingRequest",
    "MappingResponse",
    "MappingService",
    "QuotaLedger",
    "ServiceConfig",
    "start_http_server",
    "submit_over_http",
    "problem_from_wire",
    "problem_to_wire",
    "request_from_wire",
    "request_to_wire",
]
