"""Descriptive graph metrics used in experiment reports and sanity checks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.base import WeightedGraph
from repro.graphs.task_graph import TaskInteractionGraph

__all__ = ["GraphSummary", "summarize_graph", "load_imbalance_lower_bound"]


@dataclass(frozen=True)
class GraphSummary:
    """Compact description of one graph for experiment logs."""

    name: str
    n_nodes: int
    n_edges: int
    density: float
    node_weight_mean: float
    node_weight_min: float
    node_weight_max: float
    edge_weight_mean: float
    degree_mean: float
    degree_max: int
    connected: bool


def summarize_graph(graph: WeightedGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for any weighted graph."""
    deg = graph.degrees()
    ew = graph.edge_weights
    return GraphSummary(
        name=graph.name,
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        density=graph.density(),
        node_weight_mean=float(graph.node_weights.mean()),
        node_weight_min=float(graph.node_weights.min()),
        node_weight_max=float(graph.node_weights.max()),
        edge_weight_mean=float(ew.mean()) if ew.size else 0.0,
        degree_mean=float(deg.mean()),
        degree_max=int(deg.max()) if deg.size else 0,
        connected=graph.is_connected(),
    )


def load_imbalance_lower_bound(tig: TaskInteractionGraph, min_proc_weight: float) -> float:
    """A trivial lower bound on Eq. (2) for any mapping.

    The busiest resource must host at least the heaviest single task, and
    total computation must be paid somewhere; with the cheapest processing
    weight ``min_proc_weight`` this gives
    ``max(W_max, ΣW / n) * min_proc_weight`` ignoring all communication —
    a coarse but sound floor useful for sanity-checking optimizer output
    (no heuristic may ever report a cost below it).
    """
    if min_proc_weight <= 0:
        raise ValueError(f"min_proc_weight must be > 0, got {min_proc_weight}")
    w = tig.computation_weights
    per_node_floor = max(float(w.max()), float(w.sum()) / tig.n_tasks)
    return per_node_floor * min_proc_weight
