"""Graph substrate: TIGs, resource graphs, synthetic generators, metrics, I/O."""

from repro.graphs.base import WeightedGraph, canonicalize_edges
from repro.graphs.clustering import (
    ClusteringResult,
    build_cluster_graph,
    heavy_edge_clustering,
)
from repro.graphs.generators import (
    PAPER_RESOURCE_EDGE_WEIGHTS,
    PAPER_RESOURCE_NODE_WEIGHTS,
    PAPER_SIZES,
    PAPER_TIG_EDGE_WEIGHTS,
    PAPER_TIG_NODE_WEIGHTS,
    GraphPair,
    generate_paper_pair,
    generate_resource_graph,
    generate_tig,
)
from repro.graphs.lattice import grid_tig, ring_tig
from repro.graphs.io import graph_from_dict, graph_to_dict, load_graph, save_graph, to_dot
from repro.graphs.metrics import GraphSummary, load_imbalance_lower_bound, summarize_graph
from repro.graphs.random_graphs import (
    ensure_connected_edges,
    gnp_edges,
    random_geometric_edges,
    random_spanning_tree_edges,
    two_block_edges,
)
from repro.graphs.resource_graph import ResourceGraph, shortest_path_closure
from repro.graphs.task_graph import TaskInteractionGraph

__all__ = [
    "WeightedGraph",
    "canonicalize_edges",
    "ClusteringResult",
    "heavy_edge_clustering",
    "build_cluster_graph",
    "TaskInteractionGraph",
    "ResourceGraph",
    "shortest_path_closure",
    "GraphPair",
    "generate_tig",
    "generate_resource_graph",
    "generate_paper_pair",
    "PAPER_SIZES",
    "PAPER_TIG_NODE_WEIGHTS",
    "PAPER_TIG_EDGE_WEIGHTS",
    "PAPER_RESOURCE_NODE_WEIGHTS",
    "PAPER_RESOURCE_EDGE_WEIGHTS",
    "gnp_edges",
    "two_block_edges",
    "random_geometric_edges",
    "random_spanning_tree_edges",
    "ensure_connected_edges",
    "grid_tig",
    "ring_tig",
    "GraphSummary",
    "summarize_graph",
    "load_imbalance_lower_bound",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "to_dot",
]
