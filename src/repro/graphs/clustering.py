"""TIG clustering — the substrate under hierarchical FastMap [16].

The paper's baseline comes from FastMap, "a hierarchical mapping strategy
using a clustering and distribution technique, in which a GA is used to
map the tasks". This module provides the clustering stage: heavy-edge
agglomeration of a TIG into ``k`` clusters, the classic multilevel
coarsening heuristic — repeatedly contract the heaviest edge between two
clusters (normalized by cluster size to discourage snowballing), so that
heavily-communicating tasks end up co-clustered and the inter-cluster cut
(which becomes network traffic after mapping) is small.

Outputs are labels plus the induced *cluster graph* (a smaller TIG whose
node weights are summed computation and whose edge weights are summed cut
volumes), which the hierarchical mapper optimizes with the GA before
projecting back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.graphs.task_graph import TaskInteractionGraph

__all__ = ["ClusteringResult", "heavy_edge_clustering", "build_cluster_graph"]


@dataclass(frozen=True)
class ClusteringResult:
    """Cluster labels plus quality measures."""

    labels: np.ndarray  # (n_tasks,) cluster index per task, 0..k-1
    n_clusters: int
    internal_volume: float  # communication volume co-clustered
    cut_volume: float  # communication volume crossing clusters

    @property
    def coverage(self) -> float:
        """Fraction of total communication volume kept inside clusters."""
        total = self.internal_volume + self.cut_volume
        return self.internal_volume / total if total > 0 else 1.0


def heavy_edge_clustering(
    tig: TaskInteractionGraph,
    n_clusters: int,
    *,
    balance_exponent: float = 1.0,
) -> ClusteringResult:
    """Agglomerate ``tig`` into exactly ``n_clusters`` clusters.

    Greedy heavy-edge contraction: at each step merge the cluster pair
    connected by the largest ``weight / (|A|·|B|)^balance_exponent`` score
    (``balance_exponent = 0`` is pure heavy-edge; larger values penalise
    unbalanced merges). Disconnected TIGs are handled by merging the
    smallest clusters once no connecting edges remain.
    """
    n = tig.n_tasks
    if not 1 <= n_clusters <= n:
        raise ValidationError(
            f"n_clusters must be in [1, {n}], got {n_clusters}"
        )
    if balance_exponent < 0:
        raise ValidationError(f"balance_exponent must be >= 0, got {balance_exponent}")

    labels = np.arange(n)
    sizes = np.ones(n, dtype=np.int64)
    # Inter-cluster weights as a dense symmetric matrix (n is small here;
    # clustering runs once per mapping call).
    inter = tig.adjacency_matrix().copy()
    alive = np.ones(n, dtype=bool)
    current = n

    while current > n_clusters:
        # Score all live cluster pairs.
        best_pair: tuple[int, int] | None = None
        best_score = -np.inf
        live = np.flatnonzero(alive)
        sub = inter[np.ix_(live, live)]
        iu, iv = np.triu_indices(live.size, k=1)
        weights = sub[iu, iv]
        connected = weights > 0
        if connected.any():
            denom = (
                sizes[live[iu]] * sizes[live[iv]]
            ).astype(np.float64) ** balance_exponent
            scores = np.where(connected, weights / denom, -np.inf)
            k = int(np.argmax(scores))
            best_pair = (int(live[iu[k]]), int(live[iv[k]]))
            best_score = scores[k]
        if best_pair is None or not np.isfinite(best_score):
            # Disconnected remainder: merge the two smallest clusters.
            order = live[np.argsort(sizes[live])]
            best_pair = (int(order[0]), int(order[1]))

        a, b = best_pair
        # Merge b into a.
        labels[labels == b] = a
        sizes[a] += sizes[b]
        inter[a, :] += inter[b, :]
        inter[:, a] += inter[:, b]
        inter[a, a] = 0.0
        alive[b] = False
        inter[b, :] = 0.0
        inter[:, b] = 0.0
        current -= 1

    # Relabel to 0..k-1 in first-appearance order.
    remap: dict[int, int] = {}
    final = np.empty(n, dtype=np.int64)
    for i, lab in enumerate(labels):
        if lab not in remap:
            remap[int(lab)] = len(remap)
        final[i] = remap[int(lab)]

    # Quality accounting.
    internal = cut = 0.0
    for (u, v), w in zip(tig.edges, tig.edge_weights):
        if final[u] == final[v]:
            internal += float(w)
        else:
            cut += float(w)
    return ClusteringResult(
        labels=final,
        n_clusters=n_clusters,
        internal_volume=internal,
        cut_volume=cut,
    )


def build_cluster_graph(
    tig: TaskInteractionGraph, labels: np.ndarray, n_clusters: int
) -> TaskInteractionGraph:
    """The induced cluster-level TIG.

    Node weight = summed computation of member tasks; edge weight = summed
    communication volume between the two clusters' members.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (tig.n_tasks,):
        raise ValidationError(
            f"labels must have shape ({tig.n_tasks},), got {labels.shape}"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= n_clusters):
        raise ValidationError("labels out of range")

    node_w = np.zeros(n_clusters, dtype=np.float64)
    np.add.at(node_w, labels, tig.computation_weights)
    if np.any(node_w == 0):
        raise ValidationError("every cluster must contain at least one task")

    cut: dict[tuple[int, int], float] = {}
    for (u, v), w in zip(tig.edges, tig.edge_weights):
        cu, cv = int(labels[u]), int(labels[v])
        if cu == cv:
            continue
        key = (min(cu, cv), max(cu, cv))
        cut[key] = cut.get(key, 0.0) + float(w)
    if cut:
        edges = np.array(list(cut.keys()), dtype=np.int64)
        edge_w = np.array(list(cut.values()), dtype=np.float64)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
        edge_w = np.empty(0, dtype=np.float64)
    return TaskInteractionGraph(node_w, edges, edge_w, name=f"{tig.name}-clustered")
