"""Weighted undirected graph core shared by task and resource graphs.

The paper models both the application (Task Interaction Graph, §2) and the
platform (resource graph) as weighted undirected graphs. This module holds
the common representation:

* ``n_nodes`` vertices labelled ``0 .. n_nodes-1``;
* a float weight per vertex;
* an edge list ``(E, 2)`` with canonical ``u < v`` rows, no self-loops and
  no duplicates, plus a float weight per edge.

The array-of-edges layout (rather than adjacency dicts) is chosen so the
cost model can evaluate thousands of candidate mappings per CE iteration
with pure-numpy gathers — the central performance requirement of this
library (``N = 2 n²`` samples per iteration at ``n = 50`` means 5 000
mapping evaluations per iteration).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.exceptions import GraphError, ValidationError

__all__ = ["WeightedGraph", "canonicalize_edges"]


def canonicalize_edges(edges: Any, n_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """Validate and canonicalize an undirected edge list.

    Returns ``(canon, order)``: an ``(E, 2)`` ``int64`` array with each row
    sorted so ``u < v`` and rows lexicographically sorted, plus the
    permutation ``order`` mapping input edge positions to canonical rows
    (``canon[k]`` came from input row ``order[k]``). Raises
    :class:`GraphError` on self-loops, out-of-range endpoints or duplicate
    edges. An empty input yields ``(0, 2)`` / ``(0,)`` arrays.
    """
    arr = np.asarray(edges, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64), np.empty(0, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"edges must have shape (E, 2), got {arr.shape}")
    if arr.min() < 0 or arr.max() >= n_nodes:
        raise GraphError(
            f"edge endpoints must be in [0, {n_nodes - 1}], "
            f"got range [{arr.min()}, {arr.max()}]"
        )
    if np.any(arr[:, 0] == arr[:, 1]):
        bad = arr[arr[:, 0] == arr[:, 1]][0]
        raise GraphError(f"self-loop at node {bad[0]} is not allowed")
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    canon = np.stack([lo, hi], axis=1)
    order = np.lexsort((canon[:, 1], canon[:, 0]))
    canon = canon[order]
    dup = np.all(canon[1:] == canon[:-1], axis=1)
    if dup.any():
        first = canon[1:][dup][0]
        raise GraphError(f"duplicate edge ({first[0]}, {first[1]})")
    return canon, order


class WeightedGraph:
    """An immutable weighted undirected graph.

    Parameters
    ----------
    node_weights:
        Per-vertex weights, length defines ``n_nodes``. Must be finite and
        non-negative.
    edges:
        ``(E, 2)`` integer endpoints (any orientation; canonicalized).
    edge_weights:
        Per-edge weights aligned with ``edges``. Must be finite and
        non-negative.
    name:
        Optional label used in reports and serialized files.
    """

    __slots__ = ("_node_weights", "_edges", "_edge_weights", "name", "_adj_cache")

    def __init__(
        self,
        node_weights: Any,
        edges: Any = (),
        edge_weights: Any = (),
        *,
        name: str = "",
    ) -> None:
        nw = np.asarray(node_weights, dtype=np.float64)
        if nw.ndim != 1 or nw.size == 0:
            raise GraphError(f"node_weights must be a non-empty 1-D array, got shape {nw.shape}")
        if not np.all(np.isfinite(nw)) or np.any(nw < 0):
            raise GraphError("node weights must be finite and non-negative")
        n = nw.shape[0]

        raw_edges = np.asarray(edges, dtype=np.int64)
        ew = np.asarray(edge_weights, dtype=np.float64)
        if raw_edges.size == 0:
            canon = np.empty((0, 2), dtype=np.int64)
            ew = np.empty(0, dtype=np.float64)
        else:
            canon, order = canonicalize_edges(raw_edges, n)
            if ew.shape != (canon.shape[0],):
                raise GraphError(
                    f"edge_weights must have shape ({canon.shape[0]},), got {ew.shape}"
                )
            ew = ew[order]
        if ew.size and (not np.all(np.isfinite(ew)) or np.any(ew < 0)):
            raise GraphError("edge weights must be finite and non-negative")

        self._node_weights = nw
        self._node_weights.setflags(write=False)
        self._edges = canon
        self._edges.setflags(write=False)
        self._edge_weights = ew
        self._edge_weights.setflags(write=False)
        self.name = name
        self._adj_cache: np.ndarray | None = None

    # -- basic accessors -----------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of vertices."""
        return int(self._node_weights.shape[0])

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self._edges.shape[0])

    @property
    def node_weights(self) -> np.ndarray:
        """Read-only ``(n_nodes,)`` vertex weight array."""
        return self._node_weights

    @property
    def edges(self) -> np.ndarray:
        """Read-only ``(n_edges, 2)`` canonical edge array (``u < v`` rows)."""
        return self._edges

    @property
    def edge_weights(self) -> np.ndarray:
        """Read-only ``(n_edges,)`` edge weight array aligned with :attr:`edges`."""
        return self._edge_weights

    # -- derived structure -----------------------------------------------------
    def adjacency_matrix(self) -> np.ndarray:
        """Dense symmetric ``(n, n)`` weight matrix (0 where no edge). Cached."""
        if self._adj_cache is None:
            n = self.n_nodes
            adj = np.zeros((n, n), dtype=np.float64)
            if self.n_edges:
                u, v = self._edges[:, 0], self._edges[:, 1]
                adj[u, v] = self._edge_weights
                adj[v, u] = self._edge_weights
            adj.setflags(write=False)
            self._adj_cache = adj
        return self._adj_cache

    def degrees(self) -> np.ndarray:
        """Unweighted vertex degrees as an ``(n,)`` int array."""
        deg = np.zeros(self.n_nodes, dtype=np.int64)
        if self.n_edges:
            np.add.at(deg, self._edges[:, 0], 1)
            np.add.at(deg, self._edges[:, 1], 1)
        return deg

    def weighted_degrees(self) -> np.ndarray:
        """Sum of incident edge weights per vertex."""
        deg = np.zeros(self.n_nodes, dtype=np.float64)
        if self.n_edges:
            np.add.at(deg, self._edges[:, 0], self._edge_weights)
            np.add.at(deg, self._edges[:, 1], self._edge_weights)
        return deg

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbor indices of ``node``."""
        if not 0 <= node < self.n_nodes:
            raise ValidationError(f"node {node} out of range [0, {self.n_nodes - 1}]")
        u, v = self._edges[:, 0], self._edges[:, 1]
        out = np.concatenate([v[u == node], u[v == node]])
        out.sort()
        return out

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the undirected edge ``{u, v}`` is present."""
        if u == v:
            return False
        a, b = (u, v) if u < v else (v, u)
        return bool(np.any((self._edges[:, 0] == a) & (self._edges[:, 1] == b)))

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; raises :class:`GraphError` if absent."""
        a, b = (u, v) if u < v else (v, u)
        mask = (self._edges[:, 0] == a) & (self._edges[:, 1] == b)
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            raise GraphError(f"no edge ({u}, {v})")
        return float(self._edge_weights[idx[0]])

    def density(self) -> float:
        """Edge density ``E / C(n, 2)`` (0 for a single-vertex graph)."""
        n = self.n_nodes
        if n < 2:
            return 0.0
        return self.n_edges / (n * (n - 1) / 2)

    def is_connected(self) -> bool:
        """True iff the graph is connected (BFS over the edge arrays)."""
        n = self.n_nodes
        if n <= 1:
            return True
        adj_bool = self.adjacency_matrix() > 0
        visited = np.zeros(n, dtype=bool)
        visited[0] = True
        frontier = np.zeros(n, dtype=bool)
        frontier[0] = True
        while frontier.any():
            nxt = adj_bool[frontier].any(axis=0) & ~visited
            visited |= nxt
            frontier = nxt
        return bool(visited.all())

    def connected_components(self) -> list[np.ndarray]:
        """Vertex index arrays of each connected component (sorted)."""
        n = self.n_nodes
        labels = np.arange(n)
        # Min-label propagation along edges until a fixed point is reached.
        changed = self.n_edges > 0
        while changed:
            u, v = self._edges[:, 0], self._edges[:, 1]
            mins = np.minimum(labels[u], labels[v])
            before = labels.copy()
            np.minimum.at(labels, u, mins)
            np.minimum.at(labels, v, mins)
            changed = bool(np.any(labels != before))
        return [np.flatnonzero(labels == lab) for lab in np.unique(labels)]

    # -- dunder -----------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_nodes

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n_nodes))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return (
            self.n_nodes == other.n_nodes
            and np.array_equal(self._node_weights, other._node_weights)
            and np.array_equal(self._edges, other._edges)
            and np.array_equal(self._edge_weights, other._edge_weights)
        )

    def __hash__(self) -> int:  # graphs are immutable value objects
        return hash(
            (
                self.n_nodes,
                self._node_weights.tobytes(),
                self._edges.tobytes(),
                self._edge_weights.tobytes(),
            )
        )

    def __repr__(self) -> str:
        label = f"name={self.name!r}, " if self.name else ""
        return f"{type(self).__name__}({label}n_nodes={self.n_nodes}, n_edges={self.n_edges})"

    # -- construction helpers ----------------------------------------------------
    @classmethod
    def from_adjacency(
        cls,
        node_weights: Sequence[float],
        adjacency: Any,
        *,
        name: str = "",
    ) -> "WeightedGraph":
        """Build from a symmetric ``(n, n)`` weight matrix (0 = no edge)."""
        adj = np.asarray(adjacency, dtype=np.float64)
        n = len(node_weights)
        if adj.shape != (n, n):
            raise GraphError(f"adjacency must be ({n}, {n}), got {adj.shape}")
        if not np.allclose(adj, adj.T):
            raise GraphError("adjacency matrix must be symmetric")
        iu, iv = np.triu_indices(n, k=1)
        mask = adj[iu, iv] > 0
        edges = np.stack([iu[mask], iv[mask]], axis=1)
        return cls(node_weights, edges, adj[iu[mask], iv[mask]], name=name)
