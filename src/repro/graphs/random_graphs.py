"""Random undirected graph topologies used by the synthetic generators.

Three edge-set models, all returning canonical ``(E, 2)`` arrays:

* :func:`gnp_edges` — Erdős–Rényi G(n, p);
* :func:`two_block_edges` — a planted high-density / low-density two-block
  model. §5.2 notes the TIG edges were randomized "so as to represent
  regions of high density and regions of lower density"; this model is the
  direct realization of that sentence;
* :func:`random_geometric_edges` — unit-square geometric graph, a natural
  stand-in for overset-grid adjacency (nearby grids overlap).

Every model can be made connected by unioning a uniformly random spanning
tree (:func:`random_spanning_tree_edges`), which keeps the paper's implicit
assumption that the application is one coupled computation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.types import SeedLike
from repro.utils.rng import as_generator
from repro.utils.validation import check_in_range

__all__ = [
    "gnp_edges",
    "two_block_edges",
    "random_geometric_edges",
    "random_spanning_tree_edges",
    "ensure_connected_edges",
]


def _all_pairs(n: int) -> np.ndarray:
    """All C(n,2) canonical pairs as an ``(m, 2)`` array."""
    iu, iv = np.triu_indices(n, k=1)
    return np.stack([iu, iv], axis=1)


def _dedupe(edges: np.ndarray) -> np.ndarray:
    """Canonicalize rows (u<v), sort lexicographically, drop duplicates."""
    if edges.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    canon = np.stack([lo, hi], axis=1)
    return np.unique(canon, axis=0)


def gnp_edges(n: int, p: float, rng: SeedLike = None) -> np.ndarray:
    """Erdős–Rényi G(n, p) edge set (each pair kept independently w.p. ``p``)."""
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    check_in_range("p", p, 0.0, 1.0)
    gen = as_generator(rng)
    pairs = _all_pairs(n)
    keep = gen.random(pairs.shape[0]) < p
    return pairs[keep].astype(np.int64)


def two_block_edges(
    n: int,
    p_dense: float,
    p_sparse: float,
    rng: SeedLike = None,
    *,
    dense_fraction: float = 0.5,
) -> np.ndarray:
    """Two-block planted-density edge set.

    The first ``round(dense_fraction * n)`` vertices form a dense region
    with internal edge probability ``p_dense``; every other pair (sparse
    block internal and cross-block) appears with probability ``p_sparse``.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    check_in_range("p_dense", p_dense, 0.0, 1.0)
    check_in_range("p_sparse", p_sparse, 0.0, 1.0)
    check_in_range("dense_fraction", dense_fraction, 0.0, 1.0)
    gen = as_generator(rng)
    k = int(round(dense_fraction * n))
    pairs = _all_pairs(n)
    in_dense = (pairs[:, 0] < k) & (pairs[:, 1] < k)
    probs = np.where(in_dense, p_dense, p_sparse)
    keep = gen.random(pairs.shape[0]) < probs
    return pairs[keep].astype(np.int64)


def random_geometric_edges(
    n: int,
    radius: float,
    rng: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random geometric graph on the unit square.

    Vertices are i.i.d. uniform points; pairs within Euclidean ``radius``
    are connected. Returns ``(edges, positions)`` — the positions let
    callers derive distance-dependent edge weights.
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if radius <= 0:
        raise ValidationError(f"radius must be > 0, got {radius}")
    gen = as_generator(rng)
    pos = gen.random((n, 2))
    pairs = _all_pairs(n)
    d = np.linalg.norm(pos[pairs[:, 0]] - pos[pairs[:, 1]], axis=1)
    return pairs[d <= radius].astype(np.int64), pos


def random_spanning_tree_edges(n: int, rng: SeedLike = None) -> np.ndarray:
    """A uniformly-shuffled random spanning tree (random-attachment model).

    Vertices are visited in a random order; each new vertex attaches to a
    uniformly random already-visited vertex. Produces ``n - 1`` edges
    spanning all vertices (empty for ``n <= 1``).
    """
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if n == 1:
        return np.empty((0, 2), dtype=np.int64)
    gen = as_generator(rng)
    order = gen.permutation(n)
    # attach order[i] (i >= 1) to a random earlier vertex order[j], j < i
    attach_idx = np.array([gen.integers(0, i) for i in range(1, n)])
    u = order[1:]
    v = order[attach_idx]
    return _dedupe(np.stack([u, v], axis=1).astype(np.int64))


def ensure_connected_edges(n: int, edges: np.ndarray, rng: SeedLike = None) -> np.ndarray:
    """Union ``edges`` with a random spanning tree so the graph is connected.

    Idempotent in distribution: existing edges are kept, duplicates merged.
    """
    tree = random_spanning_tree_edges(n, rng)
    if edges.size == 0:
        return tree
    return _dedupe(np.concatenate([np.asarray(edges, dtype=np.int64), tree], axis=0))
