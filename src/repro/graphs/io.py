"""Graph persistence: JSON round-trips and Graphviz DOT export.

The JSON schema is intentionally simple and versioned::

    {
      "schema": "repro.graph/1",
      "kind": "tig" | "resource" | "generic",
      "name": "...",
      "node_weights": [...],
      "edges": [[u, v], ...],
      "edge_weights": [...]
    }
"""

from __future__ import annotations

from pathlib import Path
from typing import Type

from repro.exceptions import SerializationError
from repro.graphs.base import WeightedGraph
from repro.graphs.resource_graph import ResourceGraph
from repro.graphs.task_graph import TaskInteractionGraph
from repro.utils.serialization import dump_json, load_json

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph", "to_dot"]

_SCHEMA = "repro.graph/1"

_KIND_TO_CLS: dict[str, Type[WeightedGraph]] = {
    "tig": TaskInteractionGraph,
    "resource": ResourceGraph,
    "generic": WeightedGraph,
}


def _kind_of(graph: WeightedGraph) -> str:
    if isinstance(graph, TaskInteractionGraph):
        return "tig"
    if isinstance(graph, ResourceGraph):
        return "resource"
    return "generic"


def graph_to_dict(graph: WeightedGraph) -> dict:
    """Serialize a graph to the versioned JSON-ready dict."""
    return {
        "schema": _SCHEMA,
        "kind": _kind_of(graph),
        "name": graph.name,
        "node_weights": graph.node_weights.tolist(),
        "edges": graph.edges.tolist(),
        "edge_weights": graph.edge_weights.tolist(),
    }


def graph_from_dict(payload: dict) -> WeightedGraph:
    """Rebuild a graph from :func:`graph_to_dict` output (schema-checked)."""
    if not isinstance(payload, dict):
        raise SerializationError(f"graph payload must be a dict, got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema != _SCHEMA:
        raise SerializationError(f"unsupported graph schema {schema!r}, expected {_SCHEMA!r}")
    kind = payload.get("kind", "generic")
    cls = _KIND_TO_CLS.get(kind)
    if cls is None:
        raise SerializationError(f"unknown graph kind {kind!r}")
    try:
        return cls(
            payload["node_weights"],
            payload.get("edges", []),
            payload.get("edge_weights", []),
            name=payload.get("name", ""),
        )
    except KeyError as exc:
        raise SerializationError(f"graph payload missing field {exc}") from exc


def save_graph(graph: WeightedGraph, path: str | Path) -> Path:
    """Write a graph to ``path`` as JSON; returns the path."""
    return dump_json(graph_to_dict(graph), path)


def load_graph(path: str | Path) -> WeightedGraph:
    """Load a graph written by :func:`save_graph`."""
    return graph_from_dict(load_json(path))


def to_dot(graph: WeightedGraph, *, graph_name: str = "G") -> str:
    """Render the graph as Graphviz DOT text (for visual inspection)."""
    lines = [f"graph {graph_name} {{"]
    for i, w in enumerate(graph.node_weights):
        lines.append(f'  n{i} [label="{i} (w={w:g})"];')
    for (u, v), w in zip(graph.edges, graph.edge_weights):
        lines.append(f'  n{u} -- n{v} [label="{w:g}"];')
    lines.append("}")
    return "\n".join(lines)
