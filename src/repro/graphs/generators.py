"""Synthetic problem generators reproducing the paper's §5.2 setting.

The simulation suite in the paper:

* ``|V_t| = |V_r| = n`` with ``n ∈ {10, 20, 30, 40, 50}``;
* TIG node weights uniform in ``{1..10}``, TIG edge weights uniform in
  ``{50..100}``, edges randomized with high- and low-density regions;
* resource node weights uniform in ``{1..5}``, link weights uniform in
  ``{10..20}``;
* five TIG/resource pairs per size with varying computation-to-
  communication ratio (CCR).

:func:`generate_tig` and :func:`generate_resource_graph` build one graph
each; :func:`generate_paper_pair` builds a matched pair;
:func:`paper_suite` builds the whole §5.2 grid of instances. CCR is varied
by scaling the sampled TIG node weights (computation) relative to the edge
weights (communication) with the ``ccr_scale`` multiplier, keeping the
weight *ranges* the paper specifies at ``ccr_scale = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.graphs.random_graphs import ensure_connected_edges, gnp_edges, two_block_edges
from repro.graphs.resource_graph import ResourceGraph
from repro.graphs.task_graph import TaskInteractionGraph
from repro.types import SeedLike
from repro.utils.rng import as_generator, spawn_generators

__all__ = [
    "PAPER_SIZES",
    "PAPER_TIG_NODE_WEIGHTS",
    "PAPER_TIG_EDGE_WEIGHTS",
    "PAPER_RESOURCE_NODE_WEIGHTS",
    "PAPER_RESOURCE_EDGE_WEIGHTS",
    "generate_tig",
    "generate_resource_graph",
    "generate_paper_pair",
    "GraphPair",
]

#: Problem sizes used throughout the paper's evaluation (§5.2).
PAPER_SIZES: tuple[int, ...] = (10, 20, 30, 40, 50)

#: TIG computation weight range ``W_t ~ U{1..10}`` (§5.2).
PAPER_TIG_NODE_WEIGHTS: tuple[int, int] = (1, 10)

#: TIG communication weight range ``C ~ U{50..100}`` (§5.2).
PAPER_TIG_EDGE_WEIGHTS: tuple[int, int] = (50, 100)

#: Resource processing weight range ``w_s ~ U{1..5}`` (§5.2).
PAPER_RESOURCE_NODE_WEIGHTS: tuple[int, int] = (1, 5)

#: Resource link weight range ``c ~ U{10..20}`` (§5.2).
PAPER_RESOURCE_EDGE_WEIGHTS: tuple[int, int] = (10, 20)


def _uniform_int_weights(
    gen: np.random.Generator, size: int, rng_range: tuple[int, int]
) -> np.ndarray:
    lo, hi = rng_range
    if lo > hi or lo < 0:
        raise ValidationError(f"invalid weight range {rng_range}")
    return gen.integers(lo, hi + 1, size=size).astype(np.float64)


def generate_tig(
    n_tasks: int,
    rng: SeedLike = None,
    *,
    node_weight_range: tuple[int, int] = PAPER_TIG_NODE_WEIGHTS,
    edge_weight_range: tuple[int, int] = PAPER_TIG_EDGE_WEIGHTS,
    density_model: str = "two_block",
    p_dense: float = 0.6,
    p_sparse: float = 0.15,
    p_uniform: float = 0.3,
    ccr_scale: float = 1.0,
    connected: bool = True,
    name: str = "",
) -> TaskInteractionGraph:
    """Generate a §5.2-style synthetic Task Interaction Graph.

    Parameters
    ----------
    n_tasks:
        Number of tasks ``|V_t|``.
    rng:
        Seed or generator.
    node_weight_range, edge_weight_range:
        Inclusive integer sampling ranges for ``W_t`` and ``C^{t,a}``.
    density_model:
        ``"two_block"`` (paper's high/low-density regions) or ``"uniform"``
        (plain G(n, p) with ``p_uniform``).
    p_dense, p_sparse:
        Edge probabilities of the two-block model.
    p_uniform:
        Edge probability of the uniform model.
    ccr_scale:
        Multiplier applied to computation weights to sweep the suite's
        computation-to-communication ratio (>1 = more compute-bound).
    connected:
        Union a random spanning tree so the application is one coupled
        computation.
    name:
        Optional graph label.
    """
    if n_tasks < 1:
        raise ValidationError(f"n_tasks must be >= 1, got {n_tasks}")
    if ccr_scale <= 0:
        raise ValidationError(f"ccr_scale must be > 0, got {ccr_scale}")
    gen = as_generator(rng)
    if density_model == "two_block":
        edges = two_block_edges(n_tasks, p_dense, p_sparse, gen)
    elif density_model == "uniform":
        edges = gnp_edges(n_tasks, p_uniform, gen)
    else:
        raise ValidationError(f"unknown density_model {density_model!r}")
    if connected:
        edges = ensure_connected_edges(n_tasks, edges, gen)
    node_w = _uniform_int_weights(gen, n_tasks, node_weight_range) * ccr_scale
    edge_w = _uniform_int_weights(gen, edges.shape[0], edge_weight_range)
    return TaskInteractionGraph(node_w, edges, edge_w, name=name or f"tig-{n_tasks}")


def generate_resource_graph(
    n_resources: int,
    rng: SeedLike = None,
    *,
    node_weight_range: tuple[int, int] = PAPER_RESOURCE_NODE_WEIGHTS,
    edge_weight_range: tuple[int, int] = PAPER_RESOURCE_EDGE_WEIGHTS,
    topology: str = "complete",
    p_link: float = 0.5,
    name: str = "",
) -> ResourceGraph:
    """Generate a §5.2-style heterogeneous resource graph.

    ``topology="complete"`` (the default, matching the paper's implicit
    any-pair communication in Eq. (1)) links every resource pair directly;
    ``topology="sparse"`` keeps each link with probability ``p_link`` (plus
    a spanning tree for connectivity) and relies on the shortest-path
    closure in :meth:`ResourceGraph.comm_cost_matrix`.
    """
    if n_resources < 1:
        raise ValidationError(f"n_resources must be >= 1, got {n_resources}")
    gen = as_generator(rng)
    if topology == "complete":
        iu, iv = np.triu_indices(n_resources, k=1)
        edges = np.stack([iu, iv], axis=1).astype(np.int64)
    elif topology == "sparse":
        edges = gnp_edges(n_resources, p_link, gen)
        edges = ensure_connected_edges(n_resources, edges, gen)
    else:
        raise ValidationError(f"unknown topology {topology!r}")
    node_w = _uniform_int_weights(gen, n_resources, node_weight_range)
    edge_w = _uniform_int_weights(gen, edges.shape[0], edge_weight_range)
    return ResourceGraph(node_w, edges, edge_w, name=name or f"resources-{n_resources}")


@dataclass(frozen=True)
class GraphPair:
    """A matched TIG/resource-graph pair plus its generation metadata."""

    tig: TaskInteractionGraph
    resources: ResourceGraph
    size: int
    ccr_scale: float
    seed_label: str = ""

    def __post_init__(self) -> None:
        if self.tig.n_nodes != self.resources.n_nodes:
            raise ValidationError(
                f"paper setting requires |V_t| == |V_r|; got "
                f"{self.tig.n_nodes} tasks and {self.resources.n_nodes} resources"
            )


def generate_paper_pair(
    size: int,
    rng: SeedLike = None,
    *,
    ccr_scale: float = 1.0,
    topology: str = "complete",
    seed_label: str = "",
) -> GraphPair:
    """Generate one matched ``|V_t| = |V_r| = size`` problem pair per §5.2."""
    tig_gen, res_gen = spawn_generators(rng, 2)
    tig = generate_tig(size, tig_gen, ccr_scale=ccr_scale)
    resources = generate_resource_graph(size, res_gen, topology=topology)
    return GraphPair(
        tig=tig, resources=resources, size=size, ccr_scale=ccr_scale, seed_label=seed_label
    )
