"""Task Interaction Graph (TIG) — the application model of §2.

A TIG vertex is one overset grid (or, generally, one data-parallel task);
its weight ``W_t`` is the amount of computation (number of grid points).
An edge ``(v_t, v_a)`` with weight ``C^{t,a}`` models the data exchanged per
step between overlapping grids (number of overlapping grid points).

``TaskInteractionGraph`` is a thin, semantically-named subclass of
:class:`~repro.graphs.base.WeightedGraph` with TIG-specific conveniences:
the computation/communication decomposition used to report the suite's
CCR (computation-to-communication ratio), and an exact ``task`` vocabulary
in error messages.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.base import WeightedGraph

__all__ = ["TaskInteractionGraph"]


class TaskInteractionGraph(WeightedGraph):
    """Undirected weighted graph of interacting data-parallel tasks."""

    @property
    def n_tasks(self) -> int:
        """Number of tasks (alias of :attr:`n_nodes`)."""
        return self.n_nodes

    @property
    def computation_weights(self) -> np.ndarray:
        """Per-task computation weights ``W_t`` (alias of :attr:`node_weights`)."""
        return self.node_weights

    @property
    def communication_weights(self) -> np.ndarray:
        """Per-interaction communication volumes ``C^{t,a}`` (alias of edge weights)."""
        return self.edge_weights

    def total_computation(self) -> float:
        """Sum of all task computation weights."""
        return float(self.node_weights.sum())

    def total_communication(self) -> float:
        """Sum of all interaction volumes (each undirected edge counted once)."""
        return float(self.edge_weights.sum())

    def computation_to_communication_ratio(self) -> float:
        """Suite-level CCR ``ΣW / ΣC`` (``inf`` for an edgeless TIG).

        §5.2 generates five graph suites "with varying computation to
        communication ratio"; this is the knob being varied.
        """
        comm = self.total_communication()
        if comm == 0:
            return float("inf")
        return self.total_computation() / comm

    def interaction_volume(self, task: int) -> float:
        """Total data volume task ``task`` exchanges with all neighbors."""
        return float(self.weighted_degrees()[task])
