"""Structured TIG topologies: stencil meshes.

Overset-grid solvers and most PDE codes decompose into regular stencil
meshes: each subdomain talks to its 4 (or 8) mesh neighbors with volume
proportional to the shared boundary. These generators complement the
random §5.2 suites with *structured* instances whose good mappings are
intuitive (neighboring subdomains on well-connected resources), useful
for examples and for eyeballing optimizer output.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.graphs.task_graph import TaskInteractionGraph
from repro.types import SeedLike
from repro.utils.rng import as_generator

__all__ = ["grid_tig", "ring_tig"]


def grid_tig(
    rows: int,
    cols: int,
    *,
    compute_weight: float = 100.0,
    boundary_weight: float = 10.0,
    diagonal: bool = False,
    jitter: float = 0.0,
    rng: SeedLike = None,
    name: str = "",
) -> TaskInteractionGraph:
    """A ``rows × cols`` stencil mesh TIG.

    Vertices are subdomains in row-major order; edges join 4-neighbors
    (plus diagonals for a 9-point stencil with ``diagonal=True``).
    ``jitter`` adds relative lognormal noise to all weights (0 = perfectly
    regular mesh), modelling unevenly refined subdomains.
    """
    if rows < 1 or cols < 1:
        raise ValidationError(f"rows/cols must be >= 1, got {rows}x{cols}")
    if compute_weight <= 0 or boundary_weight <= 0:
        raise ValidationError("weights must be > 0")
    if jitter < 0:
        raise ValidationError(f"jitter must be >= 0, got {jitter}")
    n = rows * cols

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
            if diagonal:
                if r + 1 < rows and c + 1 < cols:
                    edges.append((vid(r, c), vid(r + 1, c + 1)))
                if r + 1 < rows and c - 1 >= 0:
                    edges.append((vid(r, c), vid(r + 1, c - 1)))

    node_w = np.full(n, compute_weight)
    edge_w = np.full(len(edges), boundary_weight)
    if jitter > 0:
        gen = as_generator(rng)
        node_w = node_w * gen.lognormal(0.0, jitter, size=n)
        if edge_w.size:
            edge_w = edge_w * gen.lognormal(0.0, jitter, size=edge_w.size)
    return TaskInteractionGraph(
        node_w,
        np.array(edges, dtype=np.int64) if edges else np.empty((0, 2), dtype=np.int64),
        edge_w,
        name=name or f"grid-{rows}x{cols}",
    )


def ring_tig(
    n: int,
    *,
    compute_weight: float = 100.0,
    boundary_weight: float = 10.0,
    name: str = "",
) -> TaskInteractionGraph:
    """A ring of ``n`` subdomains (1-D periodic stencil)."""
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    if n <= 2:
        edges = [(0, 1)] if n == 2 else []
    else:
        edges = [(i, (i + 1) % n) for i in range(n)]
    return TaskInteractionGraph(
        np.full(n, compute_weight),
        np.array(edges, dtype=np.int64) if edges else np.empty((0, 2), dtype=np.int64),
        np.full(len(edges), boundary_weight),
        name=name or f"ring-{n}",
    )
