"""Heterogeneous resource (system) graph — the platform model of §2.

A resource vertex ``r_s`` has processing weight ``w_s``: the cost *per unit
of computation* on that machine (bigger = slower). A link ``(r_s, r_b)``
has weight ``c_{s,b}``: the cost *per unit of communication* between the two
machines.

Eq. (1) charges ``c_{s,b}`` for *any* pair of distinct resources hosting
interacting tasks, so the cost model needs a full pairwise communication
cost matrix. For a complete resource graph that is simply the link weights;
for sparse platforms we close the metric with all-pairs shortest paths
(communication is routed over the cheapest multi-hop path). Co-located
tasks (``b == s``) communicate for free, exactly as Eq. (1) excludes the
``r_b = r_s`` terms.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.base import WeightedGraph

__all__ = ["ResourceGraph", "shortest_path_closure"]


def shortest_path_closure(cost: np.ndarray) -> np.ndarray:
    """All-pairs shortest path distances for a dense symmetric cost matrix.

    ``cost`` uses ``np.inf`` for missing links and zeros on the diagonal.
    Implemented as a vectorized Floyd–Warshall: ``n`` passes of an
    ``(n, n)`` broadcast minimum, O(n³) total work with numpy inner loops —
    ample for platform graphs (n ≤ a few hundred).
    """
    n = cost.shape[0]
    if cost.shape != (n, n):
        raise GraphError(f"cost matrix must be square, got {cost.shape}")
    dist = cost.astype(np.float64, copy=True)
    np.fill_diagonal(dist, 0.0)
    for k in range(n):
        # dist = min(dist, dist[:, k, None] + dist[None, k, :])
        via_k = dist[:, k, np.newaxis] + dist[np.newaxis, k, :]
        np.minimum(dist, via_k, out=dist)
    return dist


class ResourceGraph(WeightedGraph):
    """Weighted undirected graph of heterogeneous processing resources.

    Node weight ``w_s``: processing cost per unit computation; edge weight
    ``c_{s,b}``: communication cost per unit data between adjacent
    resources. :meth:`comm_cost_matrix` exposes the closed pairwise metric
    the cost model consumes.
    """

    @property
    def n_resources(self) -> int:
        """Number of resources (alias of :attr:`n_nodes`)."""
        return self.n_nodes

    @property
    def processing_weights(self) -> np.ndarray:
        """Per-resource processing costs ``w_s`` (alias of :attr:`node_weights`)."""
        return self.node_weights

    def is_complete(self) -> bool:
        """True iff every pair of distinct resources has a direct link."""
        n = self.n_nodes
        return self.n_edges == n * (n - 1) // 2

    def direct_cost_matrix(self) -> np.ndarray:
        """``(n, n)`` matrix of direct link costs; ``inf`` where no link, 0 diagonal."""
        n = self.n_nodes
        cost = np.full((n, n), np.inf, dtype=np.float64)
        np.fill_diagonal(cost, 0.0)
        if self.n_edges:
            u, v = self.edges[:, 0], self.edges[:, 1]
            cost[u, v] = self.edge_weights
            cost[v, u] = self.edge_weights
        return cost

    def comm_cost_matrix(self, *, closure: bool = True) -> np.ndarray:
        """Pairwise per-unit communication cost matrix ``c_{s,b}``.

        With ``closure=True`` (default) missing links are filled with
        cheapest multi-hop routes; a disconnected platform then still has
        ``inf`` entries between components and :class:`GraphError` is
        raised, because Eq. (1) would be undefined. With ``closure=False``
        the direct matrix is returned and may contain ``inf``.
        """
        cost = self.direct_cost_matrix()
        if not closure:
            return cost
        if self.is_complete():
            return cost
        closed = shortest_path_closure(cost)
        off_diag = ~np.eye(self.n_nodes, dtype=bool)
        if np.any(~np.isfinite(closed[off_diag])):
            raise GraphError(
                "resource graph is disconnected: some resource pairs cannot communicate"
            )
        return closed

    def heterogeneity(self) -> float:
        """Coefficient of variation of processing weights (0 = homogeneous)."""
        w = self.node_weights
        mean = w.mean()
        if mean == 0:
            return 0.0
        return float(w.std() / mean)
