"""Single source of the package version (mirrored in pyproject.toml)."""

__version__ = "1.0.0"
