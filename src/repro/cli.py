"""Command-line interface: regenerate any paper artifact from a terminal.

Usage::

    python -m repro list                 # available experiments
    python -m repro table1               # regenerate Table 1 (smoke scale)
    python -m repro table3 --scale paper # paper-scale ANOVA study
    python -m repro all --seed 7         # every artifact
    python -m repro solve --size 20      # run MaTCH on a fresh instance
    python -m repro solve --heuristic tabu --budget-evals 2000 \
        --checkpoint run.ckpt            # budgeted, resumable run
    python -m repro resume run.ckpt      # continue an interrupted run

The ``repro-match`` console script installs the same entry point.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro-match",
        description="MaTCH reproduction harness (Sanyal & Das, IPDPS 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    run = sub.add_parser("run", help="regenerate one experiment artifact by id")
    run.add_argument("experiment", help="experiment id (see 'list')")
    _add_common(run)

    everything = sub.add_parser("all", help="regenerate every artifact")
    _add_common(everything)

    report = sub.add_parser(
        "report", help="run all artifacts and render the markdown reproduction report"
    )
    report.add_argument(
        "--out", default=None, help="write the report to this file (default: stdout)"
    )
    _add_common(report)

    from repro.runtime import solver_names

    solve = sub.add_parser("solve", help="run a heuristic on a freshly generated instance")
    solve.add_argument("--size", type=int, default=20, help="|V_t| = |V_r| (default 20)")
    solve.add_argument(
        "--heuristic",
        choices=solver_names(),
        default="match",
        help="solver-registry name of the heuristic (default: match)",
    )
    solve.add_argument("--rho", type=float, default=0.05, help="focus parameter (match only)")
    solve.add_argument("--zeta", type=float, default=0.3, help="smoothing factor (match only)")
    solve.add_argument("--seed", type=int, default=2005, help="root seed")
    solve.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="write a resumable repro-checkpoint/1 file as the run progresses",
    )
    solve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint cadence in solver iterations (default 1)",
    )
    _add_kernel_arg(solve)
    _add_budget_args(solve)
    _add_runstore_args(solve)

    resume = sub.add_parser(
        "resume", help="continue an interrupted run from its checkpoint file"
    )
    resume.add_argument("checkpoint", help="path to a repro-checkpoint/1 JSON file")
    resume.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="do not keep updating the checkpoint while the resumed run progresses",
    )
    _add_kernel_arg(resume)
    _add_budget_args(resume)
    _add_runstore_args(resume)

    serve = sub.add_parser(
        "serve", help="run the mapping gateway daemon (HTTP, batch-coalescing, cached)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8753, help="bind port (default 8753)")
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the shared pool (default: REPRO_WORKERS or cpus-1)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=16,
        metavar="N",
        help="max requests coalesced into one dispatch batch (default 16)",
    )
    serve.add_argument(
        "--coalesce-ms",
        type=float,
        default=10.0,
        metavar="MS",
        help="coalesce window in milliseconds (default 10)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        metavar="N",
        help="in-memory result-cache entries (default 1024)",
    )
    serve.add_argument(
        "--no-cache-persist",
        action="store_true",
        help="disable the on-disk cache tier under <runs-dir>/service-cache",
    )
    serve.add_argument(
        "--quota",
        type=int,
        default=None,
        metavar="EVALS",
        help="per-client evaluation quota (default: unlimited admission)",
    )
    serve.add_argument(
        "--default-charge",
        type=int,
        default=25_000,
        metavar="EVALS",
        help="quota charge for requests without max_evaluations (default 25000)",
    )
    _add_kernel_arg(serve)
    _add_runstore_args(serve)

    submit = sub.add_parser(
        "submit", help="submit one mapping request to a running gateway"
    )
    submit.add_argument("--host", default="127.0.0.1", help="gateway host (default 127.0.0.1)")
    submit.add_argument("--port", type=int, default=8753, help="gateway port (default 8753)")
    submit.add_argument(
        "--size", type=int, default=20, help="|V_t| = |V_r| of the generated instance"
    )
    submit.add_argument(
        "--heuristic",
        choices=solver_names(),
        default="match",
        help="solver-registry name (default: match)",
    )
    submit.add_argument(
        "--seed", type=int, default=2005, help="instance + run seed (matches 'solve')"
    )
    submit.add_argument("--client", default="cli", help="client id for quota accounting")
    submit.add_argument(
        "--max-evaluations",
        type=int,
        default=None,
        metavar="N",
        help="evaluation cap for the solve (also the quota charge)",
    )

    island = sub.add_parser(
        "island", help="multi-node island MaTCH (coordinator and island nodes)"
    )
    island_sub = island.add_subparsers(dest="island_command", required=True)
    i_serve = island_sub.add_parser(
        "serve",
        help=(
            "run the coordinator: wait for islands to join, then drive one "
            "distributed solve (bit-identical to the sequential simulation)"
        ),
    )
    i_serve.add_argument("--size", type=int, default=20, help="|V_t| = |V_r| (default 20)")
    i_serve.add_argument("--seed", type=int, default=2005, help="root seed (default 2005)")
    i_serve.add_argument(
        "--islands",
        type=int,
        default=2,
        metavar="N",
        help="islands that must join before the run starts (default 2)",
    )
    i_serve.add_argument(
        "--agents",
        type=int,
        default=4,
        metavar="N",
        help="CE agents sharded across the islands (default 4)",
    )
    i_serve.add_argument(
        "--sync-every",
        type=int,
        default=5,
        metavar="R",
        help="gossip cadence in rounds (default 5)",
    )
    i_serve.add_argument(
        "--gossip-weight",
        type=float,
        default=0.5,
        metavar="W",
        help="blend weight towards the leader matrix at each sync (default 0.5)",
    )
    i_serve.add_argument("--rho", type=float, default=0.05, help="focus parameter (default 0.05)")
    i_serve.add_argument("--zeta", type=float, default=0.3, help="smoothing factor (default 0.3)")
    i_serve.add_argument(
        "--total-samples",
        type=int,
        default=None,
        metavar="N",
        help="per-round sample budget across all agents (default: paper's 2n^2)",
    )
    i_serve.add_argument(
        "--max-rounds", type=int, default=500, metavar="R", help="round cap (default 500)"
    )
    i_serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    i_serve.add_argument("--port", type=int, default=8754, help="bind port (default 8754)")
    i_serve.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="S",
        help=(
            "heartbeat + join deadline in seconds; a silent island is declared "
            "dead and its chains replay on survivors (default 60)"
        ),
    )
    _add_kernel_arg(i_serve)
    _add_runstore_args(i_serve)
    i_join = island_sub.add_parser(
        "join", help="run one island node against a listening coordinator"
    )
    i_join.add_argument(
        "--connect",
        default="127.0.0.1:8754",
        metavar="HOST:PORT",
        help="coordinator address (default 127.0.0.1:8754)",
    )
    i_join.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for this island's local pool (default 1)",
    )
    i_join.add_argument(
        "--name", default="", help="island name for the coordinator's logs"
    )
    _add_kernel_arg(i_join)

    runs = sub.add_parser("runs", help="inspect and replay recorded runs")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    r_list = runs_sub.add_parser("list", help="list recorded run ids")
    r_show = runs_sub.add_parser(
        "show", help="print one run's manifest, metrics and events"
    )
    r_show.add_argument("run_id")
    r_diff = runs_sub.add_parser(
        "diff", help="manifest keys that differ between two runs"
    )
    r_diff.add_argument("run_a")
    r_diff.add_argument("run_b")
    r_replay = runs_sub.add_parser(
        "replay",
        help=(
            "re-execute a recorded solve run from its manifest alone "
            "(env surface, solver, seed; verifies the problem checksum)"
        ),
    )
    r_replay.add_argument("run_id")
    r_replay.add_argument(
        "--max-evals",
        type=int,
        default=2000,
        metavar="N",
        help="evaluation cap for the replay smoke run (default 2000)",
    )
    for p in (r_list, r_show, r_diff, r_replay):
        p.add_argument(
            "--runs-dir",
            default=None,
            metavar="DIR",
            help="run-store root (default: REPRO_RUNS_DIR or ./runs)",
        )

    perf = sub.add_parser("perf", help="tracked perf history and the regression gate")
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    p_check = perf_sub.add_parser(
        "check",
        help=(
            "compare fresh benchmark reports against perf/history.jsonl; "
            "exits non-zero on any regression"
        ),
    )
    p_check.add_argument(
        "reports",
        nargs="*",
        help="bench report JSON files (default: ./BENCH_*.json)",
    )
    p_update = perf_sub.add_parser(
        "update", help="fold benchmark reports into the tracked perf history"
    )
    p_update.add_argument("reports", nargs="+", help="bench report JSON files")
    for p in (p_check, p_update):
        p.add_argument(
            "--history",
            default="perf/history.jsonl",
            metavar="FILE",
            help="perf history file (default: perf/history.jsonl)",
        )
        p.add_argument(
            "--host-class",
            default=None,
            metavar="CLASS",
            help="override the host-class key (default: from each report/host)",
        )

    # Sugar: every experiment id is also a first-class subcommand.
    from repro.experiments.registry import EXPERIMENTS

    for exp_id, (desc, _) in EXPERIMENTS.items():
        p = sub.add_parser(exp_id, help=desc)
        _add_common(p)
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2005, help="root seed (default 2005)")
    parser.add_argument(
        "--scale",
        choices=("smoke", "paper"),
        default=None,
        help="scale profile (default: REPRO_SCALE env or 'smoke')",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the execution fabric (default: experiment-"
            "specific; REPRO_WORKERS overrides the host default). Results "
            "are identical for every worker count."
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="K",
        help=(
            "re-dispatches per failed cell beyond its first attempt "
            "(default: 2, or REPRO_MAX_RETRIES). Retries replay the cell's "
            "own seed, so a salvaged run is bit-identical to a fault-free one."
        ),
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="S",
        help=(
            "per-attempt deadline in seconds for one dispatch cell "
            "(default: none, or REPRO_CELL_TIMEOUT); an overrunning cell's "
            "worker is killed and the cell retried instead of hanging the sweep"
        ),
    )
    _add_kernel_arg(parser)
    _add_runstore_args(parser)


def _add_runstore_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help=(
            "run-store root for this invocation's runs/{run_id}/ record "
            "(default: REPRO_RUNS_DIR env or ./runs)"
        ),
    )
    parser.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help=(
            "explicit run id (default: derived from the command and UTC "
            "stamp; collisions get a numeric suffix, never overwritten)"
        ),
    )


def _add_kernel_arg(parser: argparse.ArgumentParser) -> None:
    from repro.kernels import KERNEL_CHOICES

    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default=None,
        help=(
            "kernel backend for the hot loops (default: REPRO_KERNEL env or "
            "'auto'). All backends are bit-identical; naming an unavailable "
            "one is an error, 'auto' silently falls back to numpy."
        ),
    )


def _apply_kernel_choice(args: argparse.Namespace) -> None:
    """Pin the kernel backend process-wide before any solver runs.

    Exported through the environment (not just ``set_backend``) so pool
    workers spawned by the execution fabric inherit the same choice.
    """
    choice = getattr(args, "kernel", None)
    if choice is None:
        return
    import os

    from repro import kernels

    previous = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = choice
    try:
        kernels.get_backend()  # fail fast if an explicit backend cannot load
    except Exception:
        # Do not leave a broken choice in the environment of a process
        # that may go on to run more work (tests, interactive sessions).
        if previous is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = previous
        raise


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--budget-evals",
        type=int,
        default=None,
        metavar="N",
        help="stop after N cost evaluations",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        metavar="S",
        help="stop after S heuristic wall-clock seconds",
    )
    parser.add_argument(
        "--target-cost",
        type=float,
        default=None,
        metavar="C",
        help="stop once the incumbent execution time reaches C",
    )


def _budget_from_args(args: argparse.Namespace):
    """An EvaluationBudget from the CLI flags, or None when none were given."""
    if (
        args.budget_evals is None
        and args.budget_seconds is None
        and args.target_cost is None
    ):
        return None
    from repro.runtime import EvaluationBudget

    return EvaluationBudget(
        max_evaluations=args.budget_evals,
        max_seconds=args.budget_seconds,
        target_cost=args.target_cost,
    )


def _resolve_profile(scale: str | None):
    from repro.experiments.spec import PAPER_PROFILE, SMOKE_PROFILE, active_profile

    if scale == "paper":
        return PAPER_PROFILE
    if scale == "smoke":
        return SMOKE_PROFILE
    return active_profile()


def _print_solve_result(title: str, result) -> None:
    import numpy as np

    from repro.utils.tables import render_kv_block

    rows = {
        "execution time (ET)": result.execution_time,
        "mapping time (MT, s)": result.mapping_time,
        "evaluations": result.n_evaluations,
    }
    for key in ("iterations", "stop_reason"):
        if key in result.extras:
            rows[key.replace("_", " ")] = result.extras[key]
    print(render_kv_block(title, rows))
    print("\nassignment (task -> resource):")
    print(np.array2string(result.assignment, max_line_width=100))


def _start_cli_run(args: argparse.Namespace, kind: str, **manifest_kwargs):
    """Open a run for one CLI invocation (root from --runs-dir / env)."""
    from repro.runstore import RunStore, build_manifest

    store = RunStore(getattr(args, "runs_dir", None))
    return store.start_run(
        kind,
        run_id=getattr(args, "run_id", None),
        manifest=build_manifest(kind, **manifest_kwargs),
    )


def _record_solve_result(run, result) -> None:
    run.record_metrics(
        "result",
        {
            "execution_time": result.execution_time,
            "mapping_time": result.mapping_time,
            "n_evaluations": result.n_evaluations,
            "iterations": result.extras.get("iterations"),
            "stop_reason": result.extras.get("stop_reason"),
        },
    )
    run.add_artifact("assignment.json", payload={"assignment": result.assignment})


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.graphs import generate_paper_pair
    from repro.mapping import MappingProblem
    from repro.runstore import RunEventHook, problem_checksum
    from repro.runtime import CheckpointWriter, create_mapper

    pair = generate_paper_pair(args.size, args.seed)
    problem = MappingProblem(pair.tig, pair.resources, require_square=True)
    params = {"rho": args.rho, "zeta": args.zeta} if args.heuristic == "match" else {}
    mapper = create_mapper(args.heuristic, params)
    run = _start_cli_run(
        args,
        "solve",
        seed=args.seed,
        config={
            "size": args.size,
            "budget_evals": args.budget_evals,
            "budget_seconds": args.budget_seconds,
            "target_cost": args.target_cost,
        },
        solver={"name": args.heuristic, "params": params},
        problems={"instance": problem_checksum(problem)},
    )
    checkpointer = None
    if args.checkpoint:
        checkpointer = CheckpointWriter(
            args.checkpoint,
            solver_name=args.heuristic,
            params=mapper.checkpoint_params(),
            problem=problem,
            seed=args.seed,
            every=args.checkpoint_every,
        )
        run.update_manifest({"checkpoint": str(args.checkpoint)})
    try:
        result = mapper.map(
            problem,
            args.seed,
            budget=_budget_from_args(args),
            hooks=RunEventHook(run),
            checkpointer=checkpointer,
        )
    except KeyboardInterrupt:
        run.finalize(status="interrupted")
        if args.checkpoint:
            print(
                f"\ninterrupted; resume with: repro-match resume {args.checkpoint}",
                file=sys.stderr,
            )
        return 130
    except BaseException:
        run.finalize(status="failed")
        raise
    _record_solve_result(run, result)
    run.finalize(status="complete")
    _print_solve_result(
        f"{mapper.name} on a fresh n={args.size} instance (seed {args.seed})",
        result,
    )
    print(f"run recorded: {run.path}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.runstore import default_runs_dir
    from repro.service import MappingService, ServiceConfig, start_http_server

    cache_dir = None
    if not args.no_cache_persist:
        root = Path(args.runs_dir) if args.runs_dir else default_runs_dir()
        cache_dir = root / "service-cache"
    config = ServiceConfig(
        n_workers=args.workers,
        max_batch=args.max_batch,
        coalesce_window=args.coalesce_ms / 1000.0,
        cache_capacity=args.cache_size,
        cache_dir=cache_dir,
        client_quota=args.quota,
        default_charge=args.default_charge,
    )
    run = _start_cli_run(
        args,
        "service",
        config={
            "host": args.host,
            "port": args.port,
            "n_workers": args.workers,
            "max_batch": args.max_batch,
            "coalesce_ms": args.coalesce_ms,
            "cache_size": args.cache_size,
            "cache_persistent": cache_dir is not None,
            "quota": args.quota,
            "default_charge": args.default_charge,
        },
    )

    async def _serve() -> None:
        async with MappingService(config, run=run) as service:
            server = await start_http_server(service, args.host, args.port)
            host, port = server.sockets[0].getsockname()[:2]
            print(f"serving on http://{host}:{port}", file=sys.stderr)
            print(f"run recorded: {run.path}", file=sys.stderr)
            try:
                await server.serve_forever()
            finally:
                server.close()
                await server.wait_closed()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    run.finalize(status="complete")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service import submit_over_http

    url = f"http://{args.host}:{args.port}"
    payload = {
        "problem": {"size": args.size, "seed": args.seed},
        "solver": {"name": args.heuristic, "params": {}},
        "seed": args.seed,
        "client": args.client,
        "max_evaluations": args.max_evaluations,
    }
    try:
        status, response = submit_over_http(url, payload)
    except OSError as exc:
        print(f"error: cannot reach gateway at {url}: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if status == 200 else 1


def _cmd_island(args: argparse.Namespace) -> int:
    if args.island_command == "join":
        from repro.islands import run_island

        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            print(
                f"error: --connect wants HOST:PORT, got {args.connect!r}",
                file=sys.stderr,
            )
            return 1
        print(f"joining coordinator at {host}:{port}", file=sys.stderr)
        run_island(host, int(port), n_workers=args.workers, name=args.name)
        return 0

    import numpy as np

    from repro.core.distributed import DistributedMatchConfig
    from repro.graphs import generate_paper_pair
    from repro.islands import IslandCoordinator
    from repro.mapping import MappingProblem
    from repro.runstore import problem_checksum
    from repro.utils.tables import render_kv_block

    pair = generate_paper_pair(args.size, args.seed)
    problem = MappingProblem(pair.tig, pair.resources, require_square=True)
    params = {
        "n_agents": args.agents,
        "sync_every": args.sync_every,
        "gossip_weight": args.gossip_weight,
        "rho": args.rho,
        "zeta": args.zeta,
        "total_samples": args.total_samples,
        "max_rounds": args.max_rounds,
    }
    config = DistributedMatchConfig(**params)
    run = _start_cli_run(
        args,
        "islands",
        seed=args.seed,
        config={"size": args.size, "n_islands": args.islands, "timeout": args.timeout},
        solver={"name": "match-islands", "params": params},
        problems={"instance": problem_checksum(problem)},
    )
    coordinator = IslandCoordinator(
        problem,
        config,
        seed=args.seed,
        n_islands=args.islands,
        host=args.host,
        port=args.port,
        heartbeat_timeout=args.timeout,
        accept_timeout=args.timeout,
        run=run,
    )
    host, port = coordinator.address
    print(
        f"coordinator on {host}:{port}; waiting for {args.islands} island(s) "
        f"(repro-match island join --connect {host}:{port})",
        file=sys.stderr,
    )
    try:
        result = coordinator.run()
    except KeyboardInterrupt:
        run.finalize(status="interrupted")
        return 130
    except BaseException:
        run.finalize(status="failed")
        raise
    extras = result["extras"]
    run.record_metrics(
        "result",
        {
            "execution_time": result["best_cost"],
            "n_evaluations": result["n_evaluations"],
            "rounds": extras["rounds"],
            "n_syncs": extras["n_syncs"],
            "node_failures": extras["node_failures"],
            "finished_locally": extras["finished_locally"],
        },
    )
    run.add_artifact("assignment.json", payload={"assignment": result["assignment"]})
    run.finalize(status="complete")
    rows = {
        "execution time (ET)": result["best_cost"],
        "evaluations": result["n_evaluations"],
        "rounds": extras["rounds"],
        "islands": extras["n_islands"],
        "node failures": extras["node_failures"],
        "replayed agent-rounds": extras["replayed_agent_rounds"],
    }
    print(
        render_kv_block(
            f"island MaTCH on a fresh n={args.size} instance (seed {args.seed})", rows
        )
    )
    print("\nassignment (task -> resource):")
    print(np.array2string(np.asarray(result["assignment"]), max_line_width=100))
    print(f"run recorded: {run.path}", file=sys.stderr)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.runstore import RunEventHook
    from repro.runtime import resume_run

    run = _start_cli_run(
        args, "resume", config={"checkpoint": str(args.checkpoint)}
    )
    try:
        mapper, result = resume_run(
            args.checkpoint,
            budget=_budget_from_args(args),
            hooks=RunEventHook(run),
            keep_checkpointing=not args.no_checkpoint,
        )
    except BaseException:
        run.finalize(status="failed")
        raise
    _record_solve_result(run, result)
    run.finalize(status="complete")
    _print_solve_result(f"{mapper.name} resumed from {args.checkpoint}", result)
    print(f"run recorded: {run.path}", file=sys.stderr)
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    import json

    from repro.runstore import RunStore

    store = RunStore(args.runs_dir)
    if args.runs_command == "list":
        ids = store.list_runs()
        if not ids:
            print(f"no runs under {store.root}")
            return 0
        for run_id in ids:
            manifest = store.load_manifest(run_id)
            print(
                f"{run_id:44s} {manifest.get('kind', '?'):24s} "
                f"{manifest.get('status', '?'):11s} {manifest.get('generated', '')}"
            )
        return 0
    if args.runs_command == "show":
        manifest = store.load_manifest(args.run_id)
        metrics = store.load_metrics(args.run_id)
        events = store.read_events(args.run_id)
        print(json.dumps({"manifest": manifest, "metrics": metrics}, indent=2, sort_keys=True))
        print(f"\nevents ({len(events)}):")
        for event in events:
            rest = {k: v for k, v in event.items() if k not in ("t", "event")}
            print(f"  {event.get('t', '')} {event.get('event', '?')} {rest or ''}")
        return 0
    if args.runs_command == "diff":
        delta = store.diff(args.run_a, args.run_b)
        if not delta:
            print("runs are identical (excluding run id and timestamps)")
            return 0
        width = max(len(k) for k in delta)
        for key, (a, b) in delta.items():
            print(f"{key:{width}s}  {a!r}  ->  {b!r}")
        return 0
    if args.runs_command == "replay":
        return _cmd_runs_replay(args, store)
    raise AssertionError(f"unhandled runs subcommand {args.runs_command!r}")


def _cmd_runs_replay(args: argparse.Namespace, store) -> int:
    """Re-execute a solve run from its manifest alone (the replayability
    contract behind capturing the full ``REPRO_*`` surface)."""
    from repro.exceptions import ReproError
    from repro.graphs import generate_paper_pair
    from repro.mapping import MappingProblem
    from repro.runstore import (
        RunEventHook,
        build_manifest,
        pinned_env,
        problem_checksum,
    )
    from repro.runtime import EvaluationBudget, create_mapper

    manifest = store.load_manifest(args.run_id)
    if manifest.get("kind") not in ("solve", "replay"):
        raise ReproError(
            f"run {args.run_id!r} has kind {manifest.get('kind')!r}; "
            "only solve runs can be replayed"
        )
    config = manifest.get("config") or {}
    solver = manifest.get("solver") or {}
    seed = (manifest.get("rng") or {}).get("root_seed")
    if seed is None or "size" not in config or "name" not in solver:
        raise ReproError(
            f"run {args.run_id!r} has an incomplete manifest "
            "(needs rng.root_seed, config.size, solver.name)"
        )

    with pinned_env(manifest.get("env") or {}):
        pair = generate_paper_pair(int(config["size"]), int(seed))
        problem = MappingProblem(pair.tig, pair.resources, require_square=True)
        checksum = problem_checksum(problem)
        recorded = (manifest.get("problems") or {}).get("instance")
        if recorded is not None and checksum != recorded:
            print(
                f"error: rebuilt instance checksum {checksum[:12]} does not "
                f"match the recorded {str(recorded)[:12]} — the generator or "
                "its inputs changed since the run",
                file=sys.stderr,
            )
            return 1
        mapper = create_mapper(solver["name"], dict(solver.get("params") or {}))
        run = store.start_run(
            "replay",
            manifest=build_manifest(
                "replay",
                seed=int(seed),
                config=dict(config),
                solver=dict(solver),
                problems={"instance": checksum},
                extra={"replay_of": args.run_id},
            ),
        )
        try:
            result = mapper.map(
                problem,
                int(seed),
                budget=EvaluationBudget(max_evaluations=args.max_evals),
                hooks=RunEventHook(run),
            )
        except BaseException:
            run.finalize(status="failed")
            raise
        _record_solve_result(run, result)
        run.finalize(status="complete")
    print(
        f"replayed {args.run_id} as {run.run_id}: problem checksum verified, "
        f"{solver['name']} reached ET {result.execution_time:.6g} within "
        f"{args.max_evals} evaluations"
    )
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.exceptions import ReproError
    from repro.runstore import (
        append_history,
        check_report,
        git_revision,
        load_history,
        samples_from_bench,
    )

    report_paths = [Path(p) for p in (args.reports or sorted(Path(".").glob("BENCH_*.json")))]
    if not report_paths:
        raise ReproError(
            "no benchmark reports given and no ./BENCH_*.json found; "
            "run a bench first or pass report paths explicitly"
        )
    fresh = []
    for path in report_paths:
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(f"cannot read bench report {path}: {exc}") from exc
        fresh.extend(samples_from_bench(report, host_class=args.host_class))

    if args.perf_command == "update":
        sha = git_revision().get("sha")
        stamped = [
            type(s)(**{**s.__dict__, "git_sha": s.git_sha or sha}) for s in fresh
        ]
        count = append_history(args.history, stamped)
        print(f"appended {count} sample(s) from {len(report_paths)} report(s) to {args.history}")
        return 0

    history = load_history(args.history)
    if not history:
        raise ReproError(
            f"perf history {args.history} is missing or empty; "
            "seed it with 'repro-match perf update <reports...>'"
        )
    result = check_report(fresh, history)
    print(result.summary())
    return 0 if result.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment

    try:
        _apply_kernel_choice(args)
        if args.command == "list":
            for exp_id in experiment_ids():
                print(f"{exp_id:18s} {EXPERIMENTS[exp_id][0]}")
            return 0
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "resume":
            return _cmd_resume(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "island":
            return _cmd_island(args)
        if args.command == "runs":
            return _cmd_runs(args)
        if args.command == "perf":
            return _cmd_perf(args)
        if args.command == "report":
            from pathlib import Path

            from repro.experiments.reporting import build_report, render_report_markdown
            from repro.runstore import activate_run

            profile = _resolve_profile(args.scale)
            run = _start_cli_run(
                args,
                "report",
                seed=args.seed,
                config={"profile": profile.name, "n_workers": args.workers},
            )
            with activate_run(run):
                text = render_report_markdown(
                    build_report(profile, seed=args.seed, n_workers=args.workers)
                )
                run.add_artifact("report.md", text=text)
            if args.out:
                Path(args.out).write_text(text, encoding="utf-8")
                print(f"wrote {args.out}")
            else:
                print(text)
            return 0
        if args.command == "all":
            profile = _resolve_profile(args.scale)
            for exp_id in experiment_ids():
                print(
                    run_experiment(
                        exp_id, profile=profile, seed=args.seed,
                        n_workers=args.workers,
                        max_retries=args.max_retries,
                        cell_timeout=args.cell_timeout,
                        runs_dir=args.runs_dir, run_id=args.run_id,
                    )
                )
                print("\n" + "#" * 72 + "\n")
            return 0
        exp_id = args.experiment if args.command == "run" else args.command
        profile = _resolve_profile(args.scale)
        print(
            run_experiment(
                exp_id, profile=profile, seed=args.seed, n_workers=args.workers,
                max_retries=args.max_retries, cell_timeout=args.cell_timeout,
                runs_dir=args.runs_dir, run_id=args.run_id,
            )
        )
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
