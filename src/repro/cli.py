"""Command-line interface: regenerate any paper artifact from a terminal.

Usage::

    python -m repro list                 # available experiments
    python -m repro table1               # regenerate Table 1 (smoke scale)
    python -m repro table3 --scale paper # paper-scale ANOVA study
    python -m repro all --seed 7         # every artifact
    python -m repro solve --size 20      # run MaTCH on a fresh instance
    python -m repro solve --heuristic tabu --budget-evals 2000 \
        --checkpoint run.ckpt            # budgeted, resumable run
    python -m repro resume run.ckpt      # continue an interrupted run

The ``repro-match`` console script installs the same entry point.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro-match",
        description="MaTCH reproduction harness (Sanyal & Das, IPDPS 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    run = sub.add_parser("run", help="regenerate one experiment artifact by id")
    run.add_argument("experiment", help="experiment id (see 'list')")
    _add_common(run)

    everything = sub.add_parser("all", help="regenerate every artifact")
    _add_common(everything)

    report = sub.add_parser(
        "report", help="run all artifacts and render the markdown reproduction report"
    )
    report.add_argument(
        "--out", default=None, help="write the report to this file (default: stdout)"
    )
    _add_common(report)

    from repro.runtime import solver_names

    solve = sub.add_parser("solve", help="run a heuristic on a freshly generated instance")
    solve.add_argument("--size", type=int, default=20, help="|V_t| = |V_r| (default 20)")
    solve.add_argument(
        "--heuristic",
        choices=solver_names(),
        default="match",
        help="solver-registry name of the heuristic (default: match)",
    )
    solve.add_argument("--rho", type=float, default=0.05, help="focus parameter (match only)")
    solve.add_argument("--zeta", type=float, default=0.3, help="smoothing factor (match only)")
    solve.add_argument("--seed", type=int, default=2005, help="root seed")
    solve.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="write a resumable repro-checkpoint/1 file as the run progresses",
    )
    solve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint cadence in solver iterations (default 1)",
    )
    _add_kernel_arg(solve)
    _add_budget_args(solve)

    resume = sub.add_parser(
        "resume", help="continue an interrupted run from its checkpoint file"
    )
    resume.add_argument("checkpoint", help="path to a repro-checkpoint/1 JSON file")
    resume.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="do not keep updating the checkpoint while the resumed run progresses",
    )
    _add_kernel_arg(resume)
    _add_budget_args(resume)

    # Sugar: every experiment id is also a first-class subcommand.
    from repro.experiments.registry import EXPERIMENTS

    for exp_id, (desc, _) in EXPERIMENTS.items():
        p = sub.add_parser(exp_id, help=desc)
        _add_common(p)
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2005, help="root seed (default 2005)")
    parser.add_argument(
        "--scale",
        choices=("smoke", "paper"),
        default=None,
        help="scale profile (default: REPRO_SCALE env or 'smoke')",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the execution fabric (default: experiment-"
            "specific; REPRO_WORKERS overrides the host default). Results "
            "are identical for every worker count."
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="K",
        help=(
            "re-dispatches per failed cell beyond its first attempt "
            "(default: 2, or REPRO_MAX_RETRIES). Retries replay the cell's "
            "own seed, so a salvaged run is bit-identical to a fault-free one."
        ),
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="S",
        help=(
            "per-attempt deadline in seconds for one dispatch cell "
            "(default: none, or REPRO_CELL_TIMEOUT); an overrunning cell's "
            "worker is killed and the cell retried instead of hanging the sweep"
        ),
    )
    _add_kernel_arg(parser)


def _add_kernel_arg(parser: argparse.ArgumentParser) -> None:
    from repro.kernels import KERNEL_CHOICES

    parser.add_argument(
        "--kernel",
        choices=KERNEL_CHOICES,
        default=None,
        help=(
            "kernel backend for the hot loops (default: REPRO_KERNEL env or "
            "'auto'). All backends are bit-identical; naming an unavailable "
            "one is an error, 'auto' silently falls back to numpy."
        ),
    )


def _apply_kernel_choice(args: argparse.Namespace) -> None:
    """Pin the kernel backend process-wide before any solver runs.

    Exported through the environment (not just ``set_backend``) so pool
    workers spawned by the execution fabric inherit the same choice.
    """
    choice = getattr(args, "kernel", None)
    if choice is None:
        return
    import os

    from repro import kernels

    previous = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = choice
    try:
        kernels.get_backend()  # fail fast if an explicit backend cannot load
    except Exception:
        # Do not leave a broken choice in the environment of a process
        # that may go on to run more work (tests, interactive sessions).
        if previous is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = previous
        raise


def _add_budget_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--budget-evals",
        type=int,
        default=None,
        metavar="N",
        help="stop after N cost evaluations",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        metavar="S",
        help="stop after S heuristic wall-clock seconds",
    )
    parser.add_argument(
        "--target-cost",
        type=float,
        default=None,
        metavar="C",
        help="stop once the incumbent execution time reaches C",
    )


def _budget_from_args(args: argparse.Namespace):
    """An EvaluationBudget from the CLI flags, or None when none were given."""
    if (
        args.budget_evals is None
        and args.budget_seconds is None
        and args.target_cost is None
    ):
        return None
    from repro.runtime import EvaluationBudget

    return EvaluationBudget(
        max_evaluations=args.budget_evals,
        max_seconds=args.budget_seconds,
        target_cost=args.target_cost,
    )


def _resolve_profile(scale: str | None):
    from repro.experiments.spec import PAPER_PROFILE, SMOKE_PROFILE, active_profile

    if scale == "paper":
        return PAPER_PROFILE
    if scale == "smoke":
        return SMOKE_PROFILE
    return active_profile()


def _print_solve_result(title: str, result) -> None:
    import numpy as np

    from repro.utils.tables import render_kv_block

    rows = {
        "execution time (ET)": result.execution_time,
        "mapping time (MT, s)": result.mapping_time,
        "evaluations": result.n_evaluations,
    }
    for key in ("iterations", "stop_reason"):
        if key in result.extras:
            rows[key.replace("_", " ")] = result.extras[key]
    print(render_kv_block(title, rows))
    print("\nassignment (task -> resource):")
    print(np.array2string(result.assignment, max_line_width=100))


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.graphs import generate_paper_pair
    from repro.mapping import MappingProblem
    from repro.runtime import CheckpointWriter, create_mapper

    pair = generate_paper_pair(args.size, args.seed)
    problem = MappingProblem(pair.tig, pair.resources, require_square=True)
    params = {"rho": args.rho, "zeta": args.zeta} if args.heuristic == "match" else {}
    mapper = create_mapper(args.heuristic, params)
    checkpointer = None
    if args.checkpoint:
        checkpointer = CheckpointWriter(
            args.checkpoint,
            solver_name=args.heuristic,
            params=mapper.checkpoint_params(),
            problem=problem,
            seed=args.seed,
            every=args.checkpoint_every,
        )
    try:
        result = mapper.map(
            problem,
            args.seed,
            budget=_budget_from_args(args),
            checkpointer=checkpointer,
        )
    except KeyboardInterrupt:
        if args.checkpoint:
            print(
                f"\ninterrupted; resume with: repro-match resume {args.checkpoint}",
                file=sys.stderr,
            )
        return 130
    _print_solve_result(
        f"{mapper.name} on a fresh n={args.size} instance (seed {args.seed})",
        result,
    )
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.runtime import resume_run

    mapper, result = resume_run(
        args.checkpoint,
        budget=_budget_from_args(args),
        keep_checkpointing=not args.no_checkpoint,
    )
    _print_solve_result(f"{mapper.name} resumed from {args.checkpoint}", result)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment

    try:
        _apply_kernel_choice(args)
        if args.command == "list":
            for exp_id in experiment_ids():
                print(f"{exp_id:18s} {EXPERIMENTS[exp_id][0]}")
            return 0
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "resume":
            return _cmd_resume(args)
        if args.command == "report":
            from pathlib import Path

            from repro.experiments.reporting import build_report, render_report_markdown

            profile = _resolve_profile(args.scale)
            text = render_report_markdown(
                build_report(profile, seed=args.seed, n_workers=args.workers)
            )
            if args.out:
                Path(args.out).write_text(text, encoding="utf-8")
                print(f"wrote {args.out}")
            else:
                print(text)
            return 0
        if args.command == "all":
            profile = _resolve_profile(args.scale)
            for exp_id in experiment_ids():
                print(
                    run_experiment(
                        exp_id, profile=profile, seed=args.seed,
                        n_workers=args.workers,
                        max_retries=args.max_retries,
                        cell_timeout=args.cell_timeout,
                    )
                )
                print("\n" + "#" * 72 + "\n")
            return 0
        exp_id = args.experiment if args.command == "run" else args.command
        profile = _resolve_profile(args.scale)
        print(
            run_experiment(
                exp_id, profile=profile, seed=args.seed, n_workers=args.workers,
                max_retries=args.max_retries, cell_timeout=args.cell_timeout,
            )
        )
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
