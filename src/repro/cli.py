"""Command-line interface: regenerate any paper artifact from a terminal.

Usage::

    python -m repro list                 # available experiments
    python -m repro table1               # regenerate Table 1 (smoke scale)
    python -m repro table3 --scale paper # paper-scale ANOVA study
    python -m repro all --seed 7         # every artifact
    python -m repro solve --size 20      # run MaTCH on a fresh instance

The ``repro-match`` console script installs the same entry point.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.exceptions import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro-match",
        description="MaTCH reproduction harness (Sanyal & Das, IPDPS 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    run = sub.add_parser("run", help="regenerate one experiment artifact by id")
    run.add_argument("experiment", help="experiment id (see 'list')")
    _add_common(run)

    everything = sub.add_parser("all", help="regenerate every artifact")
    _add_common(everything)

    report = sub.add_parser(
        "report", help="run all artifacts and render the markdown reproduction report"
    )
    report.add_argument(
        "--out", default=None, help="write the report to this file (default: stdout)"
    )
    _add_common(report)

    solve = sub.add_parser("solve", help="run MaTCH on a freshly generated instance")
    solve.add_argument("--size", type=int, default=20, help="|V_t| = |V_r| (default 20)")
    solve.add_argument("--rho", type=float, default=0.05, help="focus parameter")
    solve.add_argument("--zeta", type=float, default=0.3, help="smoothing factor")
    solve.add_argument("--seed", type=int, default=2005, help="root seed")

    # Sugar: every experiment id is also a first-class subcommand.
    from repro.experiments.registry import EXPERIMENTS

    for exp_id, (desc, _) in EXPERIMENTS.items():
        p = sub.add_parser(exp_id, help=desc)
        _add_common(p)
    return parser


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=2005, help="root seed (default 2005)")
    parser.add_argument(
        "--scale",
        choices=("smoke", "paper"),
        default=None,
        help="scale profile (default: REPRO_SCALE env or 'smoke')",
    )


def _resolve_profile(scale: str | None):
    from repro.experiments.spec import PAPER_PROFILE, SMOKE_PROFILE, active_profile

    if scale == "paper":
        return PAPER_PROFILE
    if scale == "smoke":
        return SMOKE_PROFILE
    return active_profile()


def _cmd_solve(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core import MatchConfig, MatchMapper
    from repro.graphs import generate_paper_pair
    from repro.mapping import MappingProblem
    from repro.utils.tables import render_kv_block

    pair = generate_paper_pair(args.size, args.seed)
    problem = MappingProblem(pair.tig, pair.resources, require_square=True)
    mapper = MatchMapper(MatchConfig(rho=args.rho, zeta=args.zeta))
    result = mapper.map(problem, args.seed)
    print(
        render_kv_block(
            f"MaTCH on a fresh n={args.size} instance (seed {args.seed})",
            {
                "execution time (ET)": result.execution_time,
                "mapping time (MT, s)": result.mapping_time,
                "iterations": result.extras["iterations"],
                "evaluations": result.n_evaluations,
                "stop reason": result.extras["stop_reason"],
            },
        )
    )
    print("\nassignment (task -> resource):")
    print(np.array2string(result.assignment, max_line_width=100))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment

    try:
        if args.command == "list":
            for exp_id in experiment_ids():
                print(f"{exp_id:18s} {EXPERIMENTS[exp_id][0]}")
            return 0
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "report":
            from pathlib import Path

            from repro.experiments.reporting import build_report, render_report_markdown

            profile = _resolve_profile(args.scale)
            text = render_report_markdown(build_report(profile, seed=args.seed))
            if args.out:
                Path(args.out).write_text(text, encoding="utf-8")
                print(f"wrote {args.out}")
            else:
                print(text)
            return 0
        if args.command == "all":
            profile = _resolve_profile(args.scale)
            for exp_id in experiment_ids():
                print(run_experiment(exp_id, profile=profile, seed=args.seed))
                print("\n" + "#" * 72 + "\n")
            return 0
        exp_id = args.experiment if args.command == "run" else args.command
        profile = _resolve_profile(args.scale)
        print(run_experiment(exp_id, profile=profile, seed=args.seed))
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
