"""Multi-node island MaTCH: CE chains sharded across processes/hosts.

The paper's §6 future work — distributed agent-based MaTCH — as a real
runtime rather than a simulation. A coordinator (:mod:`.coordinator`)
shards the per-round sample budget across agents, islands (:mod:`.island`)
run their agents' CE chains through local
:class:`~repro.utils.parallel.WorkerPool`\\ s, and every ``sync_every``
rounds the islands gossip: each blends its stochastic matrices towards the
global leader's (elite attraction), exactly as the sequential
:class:`~repro.core.distributed.DistributedMatchMapper` simulates.

Three properties define the design, all pinned by tests:

* **bit-reproducibility** — a distributed run returns the same bytes as
  the sequential simulation for the same seeds, whatever the placement
  (``tests/islands`` parity pin against the golden fixture);
* **node-loss healing** — a dead island degrades like a dead worker:
  heartbeat deadline, structured failure manifest into the run store,
  deterministic replay of its chains on survivors (down to the
  coordinator itself when no island survives);
* **wire hygiene** — length-prefixed JSON frames with bit-exact matrix
  encoding and structured rejection of truncated/oversized traffic
  (:mod:`.wire`).
"""

from repro.islands.chains import (
    ChainRoundCell,
    ChainState,
    SyncRecord,
    agent_streams,
    blend_towards,
    chain_round,
    replay_chain,
    run_chain_round,
)
from repro.islands.coordinator import IslandCoordinator, run_loopback, shard_agents
from repro.islands.island import IslandWorker, run_island
from repro.islands.wire import (
    MAX_FRAME_BYTES,
    decode_matrix,
    encode_matrix,
    recv_frame,
    send_frame,
)

__all__ = [
    "IslandCoordinator",
    "IslandWorker",
    "run_loopback",
    "run_island",
    "shard_agents",
    "agent_streams",
    "chain_round",
    "blend_towards",
    "replay_chain",
    "run_chain_round",
    "ChainRoundCell",
    "ChainState",
    "SyncRecord",
    "MAX_FRAME_BYTES",
    "encode_matrix",
    "decode_matrix",
    "send_frame",
    "recv_frame",
]
